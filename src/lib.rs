//! # darkside — reproduction of *The Dark Side of DNN Pruning* (ISCA 2018)
//!
//! Umbrella crate: re-exports every workspace member under a short module
//! name so downstream users and the examples write `darkside::nn::Mlp`
//! instead of spelling out nine crate dependencies. See DESIGN.md for the
//! architecture and crate inventory, EXPERIMENTS.md for the reproduction
//! targets.

pub use darkside_acoustic as acoustic;
pub use darkside_core as core;
pub use darkside_decoder as decoder;
pub use darkside_dnn_accel as dnn_accel;
pub use darkside_hwmodel as hwmodel;
pub use darkside_nn as nn;
pub use darkside_pruning as pruning;
pub use darkside_quant as quant;
pub use darkside_serve as serve;
pub use darkside_trace as trace;
pub use darkside_viterbi_accel as viterbi_accel;
pub use darkside_wfst as wfst;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_every_crate() {
        // One symbol per re-export, so a broken path fails to compile here
        // rather than in a downstream example.
        let _ = crate::acoustic::PhonemeInventory::default_scaled();
        let _ = crate::core::GridConfig::full_grid();
        let _ = crate::decoder::BeamConfig::default();
        let _ = crate::dnn_accel::DnnAccelConfig::paper();
        let _ = crate::hwmodel::EnergyAccount::default();
        let _ = crate::nn::Matrix::zeros(1, 1);
        let _ = crate::pruning::Csr::from_dense(&crate::nn::Matrix::zeros(1, 1)).unwrap();
        let _ = crate::quant::quantize_value(0.0, 1.0);
        let _ = crate::serve::ServeConfig::default();
        let _ = crate::trace::MemoryRecorder::new();
        let _ = crate::viterbi_accel::NBestTableConfig::paper();
        let _ = crate::wfst::TropicalWeight::ONE;
    }
}
