//! [`LazyComposeFst`] — on-the-fly composition behind a bounded LRU memo
//! (ISSUE 8 tentpole).
//!
//! The eager decoding graph materializes every arc of `H ∘ (L ∘ G)` up
//! front; at 10k-word scale that is millions of arcs, nearly all of which
//! a confident decode never touches. `LazyComposeFst` keeps the operands
//! and recomputes a state's outgoing arcs only when the search first asks
//! for them, holding recent expansions in an LRU memo whose capacity (in
//! states) bounds resident graph memory no matter how large the
//! composition is.
//!
//! ## Why the state table is still precomputed
//!
//! State *identity* cannot be lazy here. The hash policies key on state
//! ids, serving checkpoints serialize token state ids, and the PR 3
//! determinism guarantee promises lazy == eager **bit for bit** — so a
//! state's id must not depend on the order a particular decode happened to
//! discover it. Construction therefore replays exactly the eager pipeline
//! ([`crate::compose`]'s BFS pair discovery, then [`Fst::trim`]'s
//! ascending-id renumbering of coaccessible states) to fix the same
//! numbering the eager graph would have, while storing only O(states):
//! the pair table, the final weights, and a pair → id map. Arcs — the
//! O(states × out-degree) bulk — are never stored; they are recomputed in
//! the same order the eager composer emits them (A-alone moves, then
//! matched moves in `b`-arc order, then B-alone moves, with trim's
//! dead-target filter applied inline), so an expansion is byte-identical
//! to the eager graph's adjacency list.
//!
//! This is the OpenFst/Kaldi lazy-decoding design point (a shared state
//! table + a garbage-collected arc cache), specialized to the tropical
//! semiring and this crate's filterless composition.
//!
//! Construction walks every arc twice (discovery + an exact-metadata pass
//! that counts surviving arcs and pins `max_ilabel`/eps-freeness to the
//! trimmed graph's exact values), so building lazy costs about as much
//! *time* as building eager — what it saves is steady-state *memory*,
//! which is the quantity the 10k-word acceptance gate measures.

use crate::graph::{Arc as FstArc, Fst, EPSILON};
use crate::source::{GraphSource, MemoStats};
use crate::TropicalWeight;
use darkside_error::Error;
use std::collections::HashMap;
use std::sync::Mutex;

const NONE: usize = usize::MAX;

/// One resident memo entry: a state's expanded arcs plus its position in
/// the intrusive LRU list (`prev` toward the front / more recent).
struct MemoEntry {
    state: u32,
    arcs: Vec<FstArc>,
    prev: usize,
    next: usize,
}

/// Slab-backed LRU of expanded states, plus the cumulative counters
/// [`MemoStats`] snapshots. Everything lives behind one mutex in
/// [`LazyComposeFst`]; the lock is held only to look up or insert — never
/// across the caller's arc iteration.
struct Memo {
    /// state → slot in `slots`.
    map: HashMap<u32, usize>,
    slots: Vec<MemoEntry>,
    free: Vec<usize>,
    /// Most-recently-used slot (`NONE` when empty).
    head: usize,
    /// Least-recently-used slot — the eviction victim.
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    peak_resident: usize,
}

impl Memo {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            peak_resident: 0,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NONE => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NONE => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NONE;
        self.slots[slot].next = self.head;
        match self.head {
            NONE => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    /// Copy `state`'s cached arcs into `out` if resident (refreshing its
    /// LRU position and counting the hit).
    fn lookup_into(&mut self, state: u32, out: &mut Vec<FstArc>) -> bool {
        let Some(&slot) = self.map.get(&state) else {
            return false;
        };
        self.hits += 1;
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
        out.extend_from_slice(&self.slots[slot].arcs);
        true
    }

    /// Admit a freshly-expanded state, evicting the LRU entry when full.
    fn insert(&mut self, state: u32, arcs: Vec<FstArc>) {
        self.misses += 1;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].state);
            self.slots[victim].arcs = Vec::new();
            self.free.push(victim);
            self.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = MemoEntry {
                    state,
                    arcs,
                    prev: NONE,
                    next: NONE,
                };
                slot
            }
            None => {
                self.slots.push(MemoEntry {
                    state,
                    arcs,
                    prev: NONE,
                    next: NONE,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(state, slot);
        self.push_front(slot);
        self.peak_resident = self.peak_resident.max(self.map.len());
    }

    fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident: self.map.len(),
            peak_resident: self.peak_resident,
            capacity: self.capacity,
        }
    }
}

/// `a ∘ b` composed on demand, state ids identical to
/// `compose(&a, &b)?.trim()` by construction (see module docs). In the
/// decoding pipeline `a` is H and `b` is L∘G.
pub struct LazyComposeFst {
    a: Fst,
    b: Fst,
    /// id → operand state pair, for the surviving (trimmed) states only.
    pairs: Vec<(u32, u32)>,
    /// Surviving pair → id: the inverse of `pairs`, consulted per produced
    /// arc during expansion (trim's dead-target filter).
    pair_id: HashMap<(u32, u32), u32>,
    finals: Vec<TropicalWeight>,
    start: u32,
    /// Exact over the trimmed graph's arcs (pinned in the metadata pass).
    max_ilabel: u32,
    input_eps_free: bool,
    num_arcs: usize,
    memo: Mutex<Memo>,
}

impl std::fmt::Debug for LazyComposeFst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyComposeFst")
            .field("num_states", &self.pairs.len())
            .field("num_arcs", &self.num_arcs)
            .field("start", &self.start)
            .field("memo", &self.memo.lock().unwrap().stats())
            .finish()
    }
}

impl LazyComposeFst {
    /// Build the state table for `a ∘ b` (trimmed) and an empty memo
    /// bounded at `memo_states` resident expansions. Errors if either
    /// operand lacks a start state, if the trimmed composition is empty,
    /// or if `memo_states` is zero.
    pub fn new(a: Fst, b: Fst, memo_states: usize) -> Result<Self, Error> {
        if memo_states == 0 {
            return Err(Error::config(
                "LazyComposeFst",
                "memo capacity of zero states".to_string(),
            ));
        }
        let (Some(a_start), Some(b_start)) = (a.start(), b.start()) else {
            return Err(Error::graph(
                "compose",
                "operand has no start state".to_string(),
            ));
        };

        // Pass 1 — replay the eager composer's BFS: discovery ids match
        // `compose`'s output state ids exactly. Arcs are not kept; only
        // the reverse edges coaccessibility needs (freed after this fn).
        let mut disc_id: HashMap<(u32, u32), u32> = HashMap::new();
        let mut queue: Vec<(u32, u32)> = Vec::new();
        let mut finals_disc: Vec<TropicalWeight> = Vec::new();
        let mut rev: Vec<Vec<u32>> = Vec::new();
        disc_id.insert((a_start, b_start), 0);
        queue.push((a_start, b_start));
        finals_disc.push(TropicalWeight::ZERO);
        rev.push(Vec::new());
        let mut head = 0usize;
        while head < queue.len() {
            let (sa, sb) = queue[head];
            let from = head as u32;
            head += 1;
            let fw = a.final_weight(sa).times(b.final_weight(sb));
            if fw != TropicalWeight::ZERO {
                finals_disc[from as usize] = fw;
            }
            let push = |disc_id: &mut HashMap<(u32, u32), u32>,
                        queue: &mut Vec<(u32, u32)>,
                        finals_disc: &mut Vec<TropicalWeight>,
                        rev: &mut Vec<Vec<u32>>,
                        pair: (u32, u32)|
             -> u32 {
                let next = *disc_id.entry(pair).or_insert_with(|| {
                    queue.push(pair);
                    finals_disc.push(TropicalWeight::ZERO);
                    rev.push(Vec::new());
                    (queue.len() - 1) as u32
                });
                rev[next as usize].push(from);
                next
            };
            for arc_a in a.arcs(sa) {
                if arc_a.olabel == EPSILON {
                    push(
                        &mut disc_id,
                        &mut queue,
                        &mut finals_disc,
                        &mut rev,
                        (arc_a.next, sb),
                    );
                    continue;
                }
                for arc_b in b.arcs(sb) {
                    if arc_b.ilabel == arc_a.olabel {
                        push(
                            &mut disc_id,
                            &mut queue,
                            &mut finals_disc,
                            &mut rev,
                            (arc_a.next, arc_b.next),
                        );
                    }
                }
            }
            for arc_b in b.arcs(sb) {
                if arc_b.ilabel == EPSILON {
                    push(
                        &mut disc_id,
                        &mut queue,
                        &mut finals_disc,
                        &mut rev,
                        (sa, arc_b.next),
                    );
                }
            }
        }
        drop(disc_id);

        // Pass 2 — trim. Every discovered state is accessible (the BFS
        // only ever reaches pairs from the start pair), so trim's filter
        // reduces to coaccessibility; the ascending-discovery-id renumber
        // below is exactly `Fst::trim`'s survivor numbering.
        let n = queue.len();
        let mut coaccessible = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&s| finals_disc[s as usize] != TropicalWeight::ZERO)
            .collect();
        for &s in &stack {
            coaccessible[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !coaccessible[p as usize] {
                    coaccessible[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        drop(rev);
        if !coaccessible[0] {
            return Err(Error::graph(
                "LazyComposeFst",
                "composition is empty after trimming (no start-to-final path)".to_string(),
            ));
        }
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut finals: Vec<TropicalWeight> = Vec::new();
        let mut pair_id: HashMap<(u32, u32), u32> = HashMap::new();
        for s in 0..n {
            if coaccessible[s] {
                pair_id.insert(queue[s], pairs.len() as u32);
                pairs.push(queue[s]);
                finals.push(finals_disc[s]);
            }
        }
        let start = pair_id[&queue[0]];

        let mut lazy = Self {
            a,
            b,
            pairs,
            pair_id,
            finals,
            start,
            max_ilabel: EPSILON,
            input_eps_free: true,
            num_arcs: 0,
            memo: Mutex::new(Memo::new(memo_states)),
        };

        // Pass 3 — exact metadata over the *surviving* arcs, so
        // `max_ilabel`/eps-freeness/`num_arcs` agree with the eager
        // trimmed graph (trim recomputes them from the kept arcs too).
        let mut scratch = Vec::new();
        for id in 0..lazy.pairs.len() as u32 {
            scratch.clear();
            lazy.fill_arcs(id, &mut scratch);
            lazy.num_arcs += scratch.len();
            for arc in &scratch {
                lazy.max_ilabel = lazy.max_ilabel.max(arc.ilabel);
                lazy.input_eps_free &= arc.ilabel != EPSILON;
            }
        }
        Ok(lazy)
    }

    /// Total arcs of the (trimmed) composition — counted at construction,
    /// never materialized at once.
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Configured memo capacity, in states.
    pub fn memo_capacity(&self) -> usize {
        self.memo.lock().unwrap().capacity
    }

    /// Recompute `state`'s outgoing arcs in the eager graph's order:
    /// A-alone, then matched (in `b`-arc order), then B-alone — each
    /// filtered to surviving targets, exactly as trim rebuilds adjacency.
    fn fill_arcs(&self, state: u32, out: &mut Vec<FstArc>) {
        let (sa, sb) = self.pairs[state as usize];
        for arc_a in self.a.arcs(sa) {
            if arc_a.olabel == EPSILON {
                if let Some(&next) = self.pair_id.get(&(arc_a.next, sb)) {
                    out.push(FstArc {
                        ilabel: arc_a.ilabel,
                        olabel: EPSILON,
                        weight: arc_a.weight,
                        next,
                    });
                }
                continue;
            }
            for arc_b in self.b.arcs(sb) {
                if arc_b.ilabel == arc_a.olabel {
                    if let Some(&next) = self.pair_id.get(&(arc_a.next, arc_b.next)) {
                        out.push(FstArc {
                            ilabel: arc_a.ilabel,
                            olabel: arc_b.olabel,
                            weight: arc_a.weight.times(arc_b.weight),
                            next,
                        });
                    }
                }
            }
        }
        for arc_b in self.b.arcs(sb) {
            if arc_b.ilabel == EPSILON {
                if let Some(&next) = self.pair_id.get(&(sa, arc_b.next)) {
                    out.push(FstArc {
                        ilabel: EPSILON,
                        olabel: arc_b.olabel,
                        weight: arc_b.weight,
                        next,
                    });
                }
            }
        }
    }
}

impl GraphSource for LazyComposeFst {
    fn start(&self) -> Option<u32> {
        Some(self.start)
    }

    fn num_states(&self) -> usize {
        self.pairs.len()
    }

    fn max_ilabel(&self) -> u32 {
        self.max_ilabel
    }

    fn is_input_eps_free(&self) -> bool {
        self.input_eps_free
    }

    fn final_weight(&self, state: u32) -> TropicalWeight {
        self.finals[state as usize]
    }

    fn expand<'a>(&'a self, state: u32, scratch: &'a mut Vec<FstArc>) -> &'a [FstArc] {
        scratch.clear();
        {
            let mut memo = self.memo.lock().unwrap();
            if memo.lookup_into(state, scratch) {
                return scratch;
            }
        }
        // Miss: expand outside the lock (pure function of the immutable
        // operands), then admit. Two threads may race to expand the same
        // state; both produce identical arcs, so the double insert is just
        // a double-counted miss, never a correctness issue.
        self.fill_arcs(state, scratch);
        self.memo.lock().unwrap().insert(state, scratch.clone());
        scratch
    }

    fn memo_stats(&self) -> Option<MemoStats> {
        Some(self.memo.lock().unwrap().stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build_g, build_h, build_l};
    use crate::compose::compose;
    use crate::source::SharedGraph;
    use darkside_acoustic::{Corpus, CorpusConfig, PhonemeInventory};

    fn tiny_operands() -> (Fst, Fst) {
        let config = CorpusConfig {
            num_words: 12,
            successors_per_word: 4,
            inventory: PhonemeInventory {
                num_phonemes: 6,
                states_per_phoneme: 3,
            },
            ..CorpusConfig::default_scaled()
        };
        let corpus = Corpus::generate(config).unwrap();
        let g = build_g(&corpus.grammar).unwrap();
        let l = build_l(&corpus.lexicon).unwrap();
        let lg = compose(&l, &g).unwrap();
        let h = build_h(&corpus.config.inventory);
        (h, lg)
    }

    /// The tentpole invariant: state numbering, finals, metadata, and
    /// every state's arc list (order included) match the eager
    /// compose-then-trim graph exactly.
    #[test]
    fn lazy_is_byte_identical_to_eager_compose_trim() {
        let (h, lg) = tiny_operands();
        let eager = compose(&h, &lg).unwrap().trim();
        let lazy = LazyComposeFst::new(h, lg, 16).unwrap();

        assert_eq!(lazy.num_states(), eager.num_states());
        assert_eq!(lazy.num_arcs(), eager.num_arcs());
        assert_eq!(GraphSource::start(&lazy), eager.start());
        assert_eq!(lazy.max_ilabel(), eager.max_ilabel());
        assert_eq!(lazy.is_input_eps_free(), eager.is_input_eps_free());
        let mut scratch = Vec::new();
        for s in 0..eager.num_states() as u32 {
            assert_eq!(
                lazy.final_weight(s).0.to_bits(),
                eager.final_weight(s).0.to_bits(),
                "final weight of state {s}"
            );
            let lazy_arcs = lazy.expand(s, &mut scratch).to_vec();
            assert_eq!(lazy_arcs.as_slice(), eager.arcs(s), "arcs of state {s}");
        }
    }

    #[test]
    fn memo_counts_hits_misses_and_evictions_and_stays_bounded() {
        let (h, lg) = tiny_operands();
        let eager = compose(&h, &lg).unwrap().trim();
        let lazy = LazyComposeFst::new(h, lg, 2).unwrap();
        let mut scratch = Vec::new();

        // Two distinct states fit; a third evicts the least recent.
        let a0 = lazy.expand(0, &mut scratch).to_vec();
        let _ = lazy.expand(1, &mut scratch);
        let _ = lazy.expand(0, &mut scratch); // hit, refreshes 0
        let _ = lazy.expand(2, &mut scratch); // evicts 1 (LRU)
        let _ = lazy.expand(0, &mut scratch); // still resident
        let stats = lazy.memo_stats().unwrap();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.peak_resident, 2);
        assert_eq!(stats.capacity, 2);

        // Evicted states re-expand identically.
        let again = lazy.expand(1, &mut scratch).to_vec();
        assert_eq!(again.as_slice(), eager.arcs(1));
        assert_eq!(a0.as_slice(), eager.arcs(0));
        assert_eq!(lazy.memo_stats().unwrap().evictions, 2);
    }

    #[test]
    fn lazy_graphs_are_shareable_across_threads() {
        let (h, lg) = tiny_operands();
        let eager = compose(&h, &lg).unwrap().trim();
        let lazy: SharedGraph = std::sync::Arc::new(LazyComposeFst::new(h, lg, 4).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lazy = &lazy;
                let eager = &eager;
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    for s in (0..eager.num_states() as u32).rev() {
                        assert_eq!(lazy.expand(s, &mut scratch), eager.arcs(s));
                    }
                });
            }
        });
    }

    #[test]
    fn degenerate_inputs_fail_cleanly() {
        let (h, lg) = tiny_operands();
        assert!(matches!(
            LazyComposeFst::new(h.clone(), lg.clone(), 0).unwrap_err(),
            Error::Config { .. }
        ));
        assert!(matches!(
            LazyComposeFst::new(Fst::new(), lg, 8).unwrap_err(),
            Error::Graph { .. }
        ));
        // A composition with no start-to-final path trims to empty.
        let mut a = Fst::new();
        let s = a.add_state();
        a.set_start(s);
        a.add_arc(
            s,
            FstArc {
                ilabel: 1,
                olabel: 1,
                weight: TropicalWeight::ONE,
                next: s,
            },
        );
        let mut b = Fst::new();
        let t = b.add_state();
        b.set_start(t);
        b.add_arc(
            t,
            FstArc {
                ilabel: 1,
                olabel: 1,
                weight: TropicalWeight::ONE,
                next: t,
            },
        );
        assert!(matches!(
            LazyComposeFst::new(a, b, 8).unwrap_err(),
            Error::Graph { .. }
        ));
    }
}
