//! # darkside-wfst — weighted finite-state transducer substrate
//!
//! Implements the decoding-graph formalism of DESIGN.md §2: tropical-
//! semiring WFSTs (weights are costs in −log space; ⊕ = min, ⊗ = +),
//! builders for G (bigram grammar), L (lexicon), H (HMM state expansion),
//! and composition into the epsilon-free decoding graph the Viterbi search
//! walks.
//!
//! The semiring below is the algebra every component agrees on. [`graph`]
//! holds the transducer representation, [`compose`] the (filterless, exact
//! under idempotence) composition, and [`builders`] the G/L/H constructions
//! whose composition `H ∘ (L ∘ G)` is input-epsilon-free by construction —
//! see [`builders::build_decoding_graph`].

pub mod builders;
pub mod compose;
pub mod grammar;
pub mod graph;
pub mod lazy;
pub mod source;

pub use builders::{
    build_decoding_graph, build_g, build_h, build_l, build_lazy_decoding_graph, class_label,
    label_class,
};
pub use compose::compose;
pub use darkside_error::Error;
pub use grammar::{prune_grammar, GrammarPruneReport};
pub use graph::{Arc, Fst, EPSILON};
pub use lazy::LazyComposeFst;
pub use source::{GraphKind, GraphSource, MemoStats, SharedGraph};

/// A weight in the tropical semiring: a cost in −log space.
///
/// ⊕ = min (Viterbi takes the better path), ⊗ = + (costs accumulate),
/// 0̄ = +∞ (no path), 1̄ = 0.0 (free path).
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct TropicalWeight(pub f32);

impl TropicalWeight {
    /// The semiring zero: no path.
    pub const ZERO: Self = Self(f32::INFINITY);
    /// The semiring one: the free path.
    pub const ONE: Self = Self(0.0);

    /// ⊕: keep the cheaper path.
    pub fn plus(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// ⊗: extend a path.
    pub fn times(self, other: Self) -> Self {
        Self(self.0 + other.0)
    }

    /// A weight is a member iff it is not NaN (OpenFst convention).
    pub fn is_member(self) -> bool {
        !self.0.is_nan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semiring_axioms_on_samples() {
        let samples = [
            TropicalWeight::ZERO,
            TropicalWeight::ONE,
            TropicalWeight(1.5),
            TropicalWeight(-2.0),
            TropicalWeight(7.25),
        ];
        for &a in &samples {
            // identities
            assert_eq!(a.plus(TropicalWeight::ZERO), a);
            assert_eq!(a.times(TropicalWeight::ONE), a);
            // annihilation
            assert_eq!(a.times(TropicalWeight::ZERO), TropicalWeight::ZERO);
            for &b in &samples {
                // commutativity of ⊕
                assert_eq!(a.plus(b), b.plus(a));
                for &c in &samples {
                    // distributivity: a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)
                    assert_eq!(a.times(b.plus(c)), a.times(b).plus(a.times(c)));
                }
            }
        }
    }
}
