//! The transducer representation every builder and the decoder share.
//!
//! Label conventions (fixed here, relied on everywhere):
//! * label `0` is epsilon ([`EPSILON`]);
//! * in H (and in the composed decoding graph) input labels are
//!   `sub-phoneme class id + 1`;
//! * in L/G (and on the output side everywhere) word labels are
//!   `word id + 1`, and the phoneme labels L consumes / H emits are
//!   `phoneme id + 1`.

use crate::TropicalWeight;

/// The reserved epsilon label: consumes/emits nothing.
pub const EPSILON: u32 = 0;

/// One transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arc {
    pub ilabel: u32,
    pub olabel: u32,
    pub weight: TropicalWeight,
    pub next: u32,
}

/// A weighted finite-state transducer over the tropical semiring, stored as
/// per-state adjacency lists. State `final_weight` of [`TropicalWeight::ZERO`]
/// means "not final".
#[derive(Clone, Debug, Default)]
pub struct Fst {
    arcs: Vec<Vec<Arc>>,
    finals: Vec<TropicalWeight>,
    start: Option<u32>,
    /// Largest input label on any arc, maintained incrementally by
    /// [`Fst::add_arc`] (arcs are never removed; [`Fst::trim`] rebuilds
    /// through `add_arc`, which may only shrink it toward the true max).
    /// [`EPSILON`] when the graph has no arcs.
    max_ilabel: u32,
}

impl Fst {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_state(&mut self) -> u32 {
        self.arcs.push(Vec::new());
        self.finals.push(TropicalWeight::ZERO);
        (self.arcs.len() - 1) as u32
    }

    pub fn set_start(&mut self, state: u32) {
        debug_assert!((state as usize) < self.arcs.len());
        self.start = Some(state);
    }

    pub fn set_final(&mut self, state: u32, weight: TropicalWeight) {
        self.finals[state as usize] = weight;
    }

    pub fn add_arc(&mut self, from: u32, arc: Arc) {
        debug_assert!((arc.next as usize) < self.arcs.len());
        self.max_ilabel = self.max_ilabel.max(arc.ilabel);
        self.arcs[from as usize].push(arc);
    }

    pub fn start(&self) -> Option<u32> {
        self.start
    }

    pub fn num_states(&self) -> usize {
        self.arcs.len()
    }

    pub fn num_arcs(&self) -> usize {
        self.arcs.iter().map(Vec::len).sum()
    }

    pub fn arcs(&self, state: u32) -> &[Arc] {
        &self.arcs[state as usize]
    }

    /// Largest input label on any arc ([`EPSILON`] for an arc-free graph).
    /// O(1): cached at construction so per-utterance decoding does not
    /// re-walk every arc to size-check its score matrix.
    pub fn max_ilabel(&self) -> u32 {
        self.max_ilabel
    }

    pub fn final_weight(&self, state: u32) -> TropicalWeight {
        self.finals[state as usize]
    }

    pub fn is_final(&self, state: u32) -> bool {
        self.finals[state as usize] != TropicalWeight::ZERO
    }

    /// True iff no arc consumes epsilon — the property the frame-synchronous
    /// decoder requires (every transition eats exactly one frame).
    pub fn is_input_eps_free(&self) -> bool {
        self.arcs
            .iter()
            .all(|arcs| arcs.iter().all(|a| a.ilabel != EPSILON))
    }

    /// Drop states that are not both accessible (reachable from the start)
    /// and coaccessible (can reach a final state). Composition leaves
    /// dead-end pairs behind; trimming keeps the decoder from expanding
    /// hypotheses that can never finish.
    pub fn trim(&self) -> Fst {
        let n = self.num_states();
        let Some(start) = self.start else {
            return Fst::new();
        };
        // Forward reachability.
        let mut accessible = vec![false; n];
        let mut stack = vec![start];
        accessible[start as usize] = true;
        while let Some(s) = stack.pop() {
            for arc in self.arcs(s) {
                if !accessible[arc.next as usize] {
                    accessible[arc.next as usize] = true;
                    stack.push(arc.next);
                }
            }
        }
        // Backward reachability from final states over reversed arcs.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for s in 0..n {
            for arc in &self.arcs[s] {
                rev[arc.next as usize].push(s as u32);
            }
        }
        let mut coaccessible = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32).filter(|&s| self.is_final(s)).collect();
        for &s in &stack {
            coaccessible[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !coaccessible[p as usize] {
                    coaccessible[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        // Renumber survivors.
        let mut remap = vec![u32::MAX; n];
        let mut out = Fst::new();
        for s in 0..n {
            if accessible[s] && coaccessible[s] {
                remap[s] = out.add_state();
                out.finals[remap[s] as usize] = self.finals[s];
            }
        }
        if remap[start as usize] == u32::MAX {
            return Fst::new(); // no start-to-final path at all
        }
        out.set_start(remap[start as usize]);
        for s in 0..n {
            if remap[s] == u32::MAX {
                continue;
            }
            for arc in &self.arcs[s] {
                if remap[arc.next as usize] != u32::MAX {
                    out.add_arc(
                        remap[s],
                        Arc {
                            next: remap[arc.next as usize],
                            ..*arc
                        },
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(c: f32) -> TropicalWeight {
        TropicalWeight(c)
    }

    #[test]
    fn build_and_query() {
        let mut fst = Fst::new();
        let s0 = fst.add_state();
        let s1 = fst.add_state();
        fst.set_start(s0);
        fst.set_final(s1, w(0.5));
        fst.add_arc(
            s0,
            Arc {
                ilabel: 1,
                olabel: 2,
                weight: w(1.0),
                next: s1,
            },
        );
        assert_eq!(fst.start(), Some(s0));
        assert_eq!(fst.num_states(), 2);
        assert_eq!(fst.num_arcs(), 1);
        assert!(fst.is_final(s1) && !fst.is_final(s0));
        assert!(fst.is_input_eps_free());
        fst.add_arc(
            s1,
            Arc {
                ilabel: EPSILON,
                olabel: EPSILON,
                weight: w(0.0),
                next: s0,
            },
        );
        assert!(!fst.is_input_eps_free());
    }

    #[test]
    fn max_ilabel_tracks_additions_and_survives_trim() {
        let mut fst = Fst::new();
        assert_eq!(fst.max_ilabel(), EPSILON);
        let s0 = fst.add_state();
        let s1 = fst.add_state();
        fst.set_start(s0);
        fst.set_final(s1, w(0.0));
        fst.add_arc(
            s0,
            Arc {
                ilabel: 7,
                olabel: EPSILON,
                weight: w(0.0),
                next: s1,
            },
        );
        assert_eq!(fst.max_ilabel(), 7);
        fst.add_arc(
            s0,
            Arc {
                ilabel: 3,
                olabel: EPSILON,
                weight: w(0.0),
                next: s1,
            },
        );
        assert_eq!(fst.max_ilabel(), 7);
        // Trim rebuilds through add_arc, so the cache matches the kept arcs.
        assert_eq!(fst.trim().max_ilabel(), 7);
    }

    #[test]
    fn trim_drops_dead_ends_and_unreachable_states() {
        let mut fst = Fst::new();
        let s0 = fst.add_state();
        let s1 = fst.add_state();
        let dead_end = fst.add_state(); // no path to a final state
        let unreachable = fst.add_state();
        fst.set_start(s0);
        fst.set_final(s1, TropicalWeight::ONE);
        fst.set_final(unreachable, TropicalWeight::ONE);
        let arc = |ilabel, next| Arc {
            ilabel,
            olabel: EPSILON,
            weight: w(1.0),
            next,
        };
        fst.add_arc(s0, arc(1, s1));
        fst.add_arc(s0, arc(2, dead_end));
        let trimmed = fst.trim();
        assert_eq!(trimmed.num_states(), 2);
        assert_eq!(trimmed.num_arcs(), 1);
        assert!(trimmed.is_final(1));
    }
}
