//! Builders for the three classic ASR transducers and their composition
//! into the decoding graph (DESIGN.md §2):
//!
//! * **G** — the bigram grammar as a weighted acceptor over words;
//! * **L** — the lexicon star-closure mapping phoneme strings to words;
//! * **H** — the HMM topology mapping sub-phoneme class strings to phonemes.
//!
//! Epsilon discipline: G is an acceptor (no epsilons at all); every L arc
//! consumes a phoneme (the word olabel rides the *first* phoneme arc, the
//! rest emit ε); every H arc consumes a sub-phoneme class (chain re-entry is
//! by direct exit→entry arcs, not ε back-arcs). Therefore
//! `H ∘ (L ∘ G)` consumes one class per arc — input-epsilon-free by
//! construction, no epsilon-removal pass — which is exactly what the
//! frame-synchronous Viterbi decoder requires.

use crate::compose::compose;
use crate::graph::{Arc, Fst, EPSILON};
use crate::lazy::LazyComposeFst;
use crate::source::GraphSource;
use crate::TropicalWeight;
use darkside_acoustic::{Bigram, Lexicon, PhonemeInventory};
use darkside_error::Error;

/// Word id → output label (0 is reserved for ε).
pub fn word_label(word: u32) -> u32 {
    word + 1
}

/// Phoneme id → intermediate label in L/H.
pub fn phoneme_label(phoneme: usize) -> u32 {
    phoneme as u32 + 1
}

/// Sub-phoneme class id → input label in H and the decoding graph.
pub fn class_label(class: usize) -> u32 {
    class as u32 + 1
}

/// Recover the class id from a decoding-graph input label.
pub fn label_class(ilabel: u32) -> usize {
    debug_assert!(ilabel != EPSILON);
    (ilabel - 1) as usize
}

/// Build G: one state per bigram context (plus a start state), arcs
/// weighted with the grammar costs, every word state final with the end
/// cost. Ilabel = olabel = word label (acceptor).
pub fn build_g(grammar: &Bigram) -> Result<Fst, Error> {
    if grammar.initial.is_empty() {
        return Err(Error::graph(
            "build_g",
            "empty initial distribution".to_string(),
        ));
    }
    let num_words = grammar.successors.len();
    let mut g = Fst::new();
    let start = g.add_state();
    g.set_start(start);
    let word_states: Vec<u32> = (0..num_words).map(|_| g.add_state()).collect();
    for &(w, cost) in &grammar.initial {
        let w = w as usize;
        if w >= num_words {
            return Err(Error::graph(
                "build_g",
                format!("initial word {w} out of range"),
            ));
        }
        g.add_arc(
            start,
            Arc {
                ilabel: word_label(w as u32),
                olabel: word_label(w as u32),
                weight: TropicalWeight(cost),
                next: word_states[w],
            },
        );
    }
    for (w, succ) in grammar.successors.iter().enumerate() {
        g.set_final(word_states[w], TropicalWeight(grammar.end_cost));
        for &(v, cost) in succ {
            let v = v as usize;
            if v >= num_words {
                return Err(Error::graph(
                    "build_g",
                    format!("successor {v} of word {w} out of range"),
                ));
            }
            g.add_arc(
                word_states[w],
                Arc {
                    ilabel: word_label(v as u32),
                    olabel: word_label(v as u32),
                    weight: TropicalWeight(cost),
                    next: word_states[v],
                },
            );
        }
    }
    Ok(g)
}

/// Build L as a star-closure: from the root, each word is a chain of
/// phoneme-consuming arcs returning to the root. The word olabel rides the
/// first arc; no arc consumes ε, so `L ∘ G` stays input-epsilon-free.
pub fn build_l(lexicon: &Lexicon) -> Result<Fst, Error> {
    let mut l = Fst::new();
    let root = l.add_state();
    l.set_start(root);
    l.set_final(root, TropicalWeight::ONE);
    for (w, pron) in lexicon.prons.iter().enumerate() {
        if pron.is_empty() {
            return Err(Error::graph(
                "build_l",
                format!("word {w} has an empty pronunciation"),
            ));
        }
        let mut from = root;
        for (i, &phoneme) in pron.iter().enumerate() {
            let next = if i + 1 == pron.len() {
                root
            } else {
                l.add_state()
            };
            l.add_arc(
                from,
                Arc {
                    ilabel: phoneme_label(phoneme),
                    olabel: if i == 0 {
                        word_label(w as u32)
                    } else {
                        EPSILON
                    },
                    weight: TropicalWeight::ONE,
                    next,
                },
            );
            from = next;
        }
    }
    Ok(l)
}

/// Build H: per phoneme, a left-to-right chain of `states_per_phoneme`
/// states with self-loops (durations); entering phoneme `p`'s chain
/// consumes class `(p, 0)` and *emits phoneme `p`*. Chains are re-entered
/// by direct arcs from every chain exit (and from the start state), never
/// by ε back-arcs, so every arc carries a class ilabel.
///
/// Transition weights are free (`ONE`): duration/transition modeling lives
/// in the acoustic costs, as in the paper's hybrid system.
pub fn build_h(inventory: &PhonemeInventory) -> Fst {
    let mut h = Fst::new();
    let start = h.add_state();
    h.set_start(start);
    let nps = inventory.states_per_phoneme;
    // chain_states[p][s] = graph state for phoneme p, HMM state s.
    let chain_states: Vec<Vec<u32>> = (0..inventory.num_phonemes)
        .map(|_| (0..nps).map(|_| h.add_state()).collect())
        .collect();
    let entry_arc = |p: usize| Arc {
        ilabel: class_label(inventory.class_id(p, 0)),
        olabel: phoneme_label(p),
        weight: TropicalWeight::ONE,
        next: chain_states[p][0],
    };
    for (p, chain) in chain_states.iter().enumerate() {
        h.add_arc(start, entry_arc(p));
        for s in 0..nps {
            let state = chain[s];
            let class = class_label(inventory.class_id(p, s));
            // Self-loop: additional frames of the same sub-phoneme state.
            h.add_arc(
                state,
                Arc {
                    ilabel: class,
                    olabel: EPSILON,
                    weight: TropicalWeight::ONE,
                    next: state,
                },
            );
            if s + 1 < nps {
                h.add_arc(
                    state,
                    Arc {
                        ilabel: class_label(inventory.class_id(p, s + 1)),
                        olabel: EPSILON,
                        weight: TropicalWeight::ONE,
                        next: chain[s + 1],
                    },
                );
            }
        }
        // Chain exit: final (utterance may end here) and direct entry into
        // every phoneme's chain (no ε back-arc).
        let exit = chain[nps - 1];
        h.set_final(exit, TropicalWeight::ONE);
        for q in 0..inventory.num_phonemes {
            h.add_arc(exit, entry_arc(q));
        }
    }
    h
}

/// Compose `H ∘ (L ∘ G)`, trim, and check the construction invariant.
///
/// The result is the decoding graph: input labels are sub-phoneme classes
/// (one frame per arc), output labels are words, weights are grammar costs.
pub fn build_decoding_graph(
    inventory: &PhonemeInventory,
    lexicon: &Lexicon,
    grammar: &Bigram,
) -> Result<Fst, Error> {
    let g = build_g(grammar)?;
    let l = build_l(lexicon)?;
    let lg = compose(&l, &g)?;
    let h = build_h(inventory);
    let hlg = compose(&h, &lg)?.trim();
    if hlg.start().is_none() {
        return Err(Error::graph(
            "build_decoding_graph",
            "composition is empty (lexicon/grammar mismatch)".to_string(),
        ));
    }
    if !hlg.is_input_eps_free() {
        return Err(Error::graph(
            "build_decoding_graph",
            "composed graph has input epsilons".to_string(),
        ));
    }
    Ok(hlg)
}

/// Lazy counterpart of [`build_decoding_graph`]: L ∘ G is materialized
/// eagerly (it is small — states scale with words, not with
/// `words × phonemes × states`), but the outer H ∘ (L ∘ G) composition is
/// deferred behind a [`LazyComposeFst`] whose memo holds at most
/// `memo_states` expanded states. State numbering, arcs, and weights are
/// bit-identical to the eager graph (see [`crate::lazy`]).
pub fn build_lazy_decoding_graph(
    inventory: &PhonemeInventory,
    lexicon: &Lexicon,
    grammar: &Bigram,
    memo_states: usize,
) -> Result<LazyComposeFst, Error> {
    let g = build_g(grammar)?;
    let l = build_l(lexicon)?;
    let lg = compose(&l, &g)?;
    let h = build_h(inventory);
    let hlg = LazyComposeFst::new(h, lg, memo_states).map_err(|e| match e {
        Error::Graph { detail, .. } if detail.contains("empty") => Error::graph(
            "build_lazy_decoding_graph",
            "composition is empty (lexicon/grammar mismatch)".to_string(),
        ),
        other => other,
    })?;
    if !hlg.is_input_eps_free() {
        return Err(Error::graph(
            "build_lazy_decoding_graph",
            "composed graph has input epsilons".to_string(),
        ));
    }
    Ok(hlg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_acoustic::{Corpus, CorpusConfig};

    fn tiny_corpus() -> Corpus {
        let config = CorpusConfig {
            num_words: 12,
            successors_per_word: 4,
            inventory: PhonemeInventory {
                num_phonemes: 6,
                states_per_phoneme: 3,
            },
            ..CorpusConfig::default_scaled()
        };
        Corpus::generate(config).unwrap()
    }

    #[test]
    fn g_and_l_have_no_input_epsilons() {
        let corpus = tiny_corpus();
        let g = build_g(&corpus.grammar).unwrap();
        let l = build_l(&corpus.lexicon).unwrap();
        assert!(g.is_input_eps_free());
        assert!(l.is_input_eps_free());
        assert_eq!(g.num_states(), 1 + corpus.lexicon.num_words());
    }

    #[test]
    fn h_covers_every_class_and_is_eps_free() {
        let inv = PhonemeInventory {
            num_phonemes: 4,
            states_per_phoneme: 3,
        };
        let h = build_h(&inv);
        assert!(h.is_input_eps_free());
        let mut seen = vec![false; inv.num_classes()];
        for s in 0..h.num_states() as u32 {
            for arc in h.arcs(s) {
                seen[label_class(arc.ilabel)] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some class unreachable in H");
    }

    #[test]
    fn decoding_graph_is_eps_free_and_accepts_a_sampled_alignment() {
        let corpus = tiny_corpus();
        let hlg = build_decoding_graph(&corpus.config.inventory, &corpus.lexicon, &corpus.grammar)
            .unwrap();
        assert!(hlg.is_input_eps_free());
        assert!(hlg.num_states() > 0);

        // Any sampled utterance's frame alignment must be an accepting path
        // whose output is (a homophone of) the word sequence. Follow the
        // labels with a breadth-first token set (cheap: tiny graph).
        let utt = corpus.sample_utterance(&mut darkside_nn::Rng::new(3));
        let mut states: Vec<(u32, Vec<u32>)> = vec![(hlg.start().unwrap(), Vec::new())];
        for &class in &utt.labels {
            let want = class_label(class as usize);
            let mut next: Vec<(u32, Vec<u32>)> = Vec::new();
            for (s, words) in &states {
                for arc in hlg.arcs(*s) {
                    if arc.ilabel == want {
                        let mut w = words.clone();
                        if arc.olabel != EPSILON {
                            w.push(arc.olabel - 1);
                        }
                        next.push((arc.next, w));
                    }
                }
            }
            // Dedup by (state, words) to keep the frontier small.
            next.sort();
            next.dedup();
            states = next;
            assert!(!states.is_empty(), "alignment fell off the graph");
        }
        let accepted: Vec<&(u32, Vec<u32>)> =
            states.iter().filter(|(s, _)| hlg.is_final(*s)).collect();
        assert!(
            !accepted.is_empty(),
            "alignment does not reach a final state"
        );
        // The true word sequence (as labels) must be among the accepted
        // outputs — up to homophones, the exact sequence itself is there.
        assert!(
            accepted.iter().any(|(_, words)| *words == utt.words),
            "true word sequence not among accepted outputs"
        );
    }
}
