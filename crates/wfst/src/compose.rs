//! WFST composition over the tropical semiring.
//!
//! BFS over reachable state pairs with three move types: matched
//! (`a.olabel == b.ilabel`, both non-eps), A-alone (`a.olabel == ε`), and
//! B-alone (`b.ilabel == ε`). Without an epsilon filter this can duplicate
//! epsilon interleavings — harmless here, because the tropical semiring is
//! idempotent (`x ⊕ x = min(x, x) = x`), so shortest-path quantities are
//! exact; only path *multiplicity* is affected.
//!
//! The H/L/G builders in [`crate::builders`] are arranged so the result of
//! `H ∘ (L ∘ G)` is input-epsilon-free *by construction* (every H arc
//! carries a class ilabel, and L/G carry no input epsilons), so no epsilon
//! removal pass is needed before decoding.

use crate::graph::{Arc, Fst, EPSILON};
use darkside_error::Error;
use std::collections::HashMap;

/// Compose two transducers: `(a ∘ b)` maps `x → z` with weight
/// `⊕ over y of a(x, y) ⊗ b(y, z)`.
///
/// Returns an error if either operand has no start state (an empty machine
/// composes to nothing, which is always a config bug upstream here).
pub fn compose(a: &Fst, b: &Fst) -> Result<Fst, Error> {
    let (Some(a_start), Some(b_start)) = (a.start(), b.start()) else {
        return Err(Error::graph(
            "compose",
            "operand has no start state".to_string(),
        ));
    };
    let mut out = Fst::new();
    let mut pair_id: HashMap<(u32, u32), u32> = HashMap::new();
    let mut queue: Vec<(u32, u32)> = Vec::new();

    let start = out.add_state();
    pair_id.insert((a_start, b_start), start);
    out.set_start(start);
    queue.push((a_start, b_start));

    let mut head = 0;
    while head < queue.len() {
        let (sa, sb) = queue[head];
        head += 1;
        let from = pair_id[&(sa, sb)];
        let fw = a.final_weight(sa).times(b.final_weight(sb));
        if fw != crate::TropicalWeight::ZERO {
            out.set_final(from, fw);
        }
        let push = |out: &mut Fst,
                    pair_id: &mut HashMap<(u32, u32), u32>,
                    queue: &mut Vec<(u32, u32)>,
                    pair: (u32, u32)| {
            *pair_id.entry(pair).or_insert_with(|| {
                queue.push(pair);
                out.add_state()
            })
        };
        for arc_a in a.arcs(sa) {
            if arc_a.olabel == EPSILON {
                // A moves alone.
                let next = push(&mut out, &mut pair_id, &mut queue, (arc_a.next, sb));
                out.add_arc(
                    from,
                    Arc {
                        ilabel: arc_a.ilabel,
                        olabel: EPSILON,
                        weight: arc_a.weight,
                        next,
                    },
                );
                continue;
            }
            for arc_b in b.arcs(sb) {
                if arc_b.ilabel == arc_a.olabel {
                    let next = push(&mut out, &mut pair_id, &mut queue, (arc_a.next, arc_b.next));
                    out.add_arc(
                        from,
                        Arc {
                            ilabel: arc_a.ilabel,
                            olabel: arc_b.olabel,
                            weight: arc_a.weight.times(arc_b.weight),
                            next,
                        },
                    );
                }
            }
        }
        for arc_b in b.arcs(sb) {
            if arc_b.ilabel == EPSILON {
                // B moves alone.
                let next = push(&mut out, &mut pair_id, &mut queue, (sa, arc_b.next));
                out.add_arc(
                    from,
                    Arc {
                        ilabel: EPSILON,
                        olabel: arc_b.olabel,
                        weight: arc_b.weight,
                        next,
                    },
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TropicalWeight;

    fn w(c: f32) -> TropicalWeight {
        TropicalWeight(c)
    }

    /// A linear transducer over `(ilabel, olabel, weight)` triples.
    fn chain(arcs: &[(u32, u32, f32)]) -> Fst {
        let mut fst = Fst::new();
        let mut prev = fst.add_state();
        fst.set_start(prev);
        for &(i, o, c) in arcs {
            let next = fst.add_state();
            fst.add_arc(
                prev,
                Arc {
                    ilabel: i,
                    olabel: o,
                    weight: w(c),
                    next,
                },
            );
            prev = next;
        }
        fst.set_final(prev, TropicalWeight::ONE);
        fst
    }

    /// Cost of the single accepting path of a linear FST, if any.
    fn linear_cost(fst: &Fst) -> Option<(f32, Vec<u32>)> {
        let mut s = fst.start()?;
        let mut cost = 0.0;
        let mut olabels = Vec::new();
        loop {
            if fst.is_final(s) && fst.arcs(s).is_empty() {
                cost += fst.final_weight(s).0;
                return Some((cost, olabels));
            }
            if fst.arcs(s).len() != 1 {
                return None;
            }
            let arc = fst.arcs(s)[0];
            cost += arc.weight.0;
            if arc.olabel != EPSILON {
                olabels.push(arc.olabel);
            }
            s = arc.next;
        }
    }

    #[test]
    fn matched_composition_multiplies_weights() {
        let a = chain(&[(1, 10, 0.5), (2, 11, 1.0)]);
        let b = chain(&[(10, 20, 0.25), (11, 21, 2.0)]);
        let c = compose(&a, &b).unwrap();
        let (cost, olabels) = linear_cost(&c).unwrap();
        assert!((cost - 3.75).abs() < 1e-6);
        assert_eq!(olabels, vec![20, 21]);
    }

    #[test]
    fn one_sided_epsilons_advance_alone() {
        // A emits ε in the middle; B consumes ε at its start.
        let a = chain(&[(1, 10, 0.5), (2, EPSILON, 0.5), (3, 11, 0.5)]);
        let b = chain(&[(EPSILON, 30, 0.25), (10, 20, 0.25), (11, 21, 0.25)]);
        let c = compose(&a, &b).unwrap();
        // The composed machine still accepts exactly input 1·2·3 with total
        // cost 1.5 + 0.75 and outputs 30·20·21.
        let trimmed = c.trim();
        assert!(trimmed.num_states() > 0, "composition lost the path");
        // Walk the cheapest path by brute force (tiny machine).
        let mut best = f32::INFINITY;
        fn dfs(fst: &Fst, s: u32, cost: f32, depth: usize, best: &mut f32) {
            if depth > 10 {
                return;
            }
            if fst.is_final(s) {
                *best = best.min(cost + fst.final_weight(s).0);
            }
            for arc in fst.arcs(s) {
                dfs(fst, arc.next, cost + arc.weight.0, depth + 1, best);
            }
        }
        dfs(&trimmed, trimmed.start().unwrap(), 0.0, 0, &mut best);
        assert!((best - 2.25).abs() < 1e-6, "best {best}");
    }

    #[test]
    fn mismatched_labels_compose_to_nothing() {
        let a = chain(&[(1, 10, 0.0)]);
        let b = chain(&[(99, 20, 0.0)]);
        let c = compose(&a, &b).unwrap().trim();
        assert_eq!(c.num_states(), 0);
    }

    #[test]
    fn empty_operand_is_an_error() {
        let a = Fst::new();
        let b = chain(&[(1, 1, 0.0)]);
        assert!(matches!(compose(&a, &b).unwrap_err(), Error::Graph { .. }));
    }
}
