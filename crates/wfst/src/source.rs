//! [`GraphSource`] — the expansion interface the decoder walks (ISSUE 8
//! tentpole).
//!
//! The frame-synchronous search never needs a whole [`Fst`]; per frame it
//! needs exactly four questions answered: where does the graph start, what
//! arcs leave this state, is this state final (and at what cost), and how
//! many input classes can an arc consume. `GraphSource` is that contract,
//! so the *same* search recursion runs over
//!
//! * the eager, fully-materialized [`Fst`] (the pre-ISSUE-8 behavior,
//!   bit for bit — [`GraphSource::expand`] returns the adjacency slice
//!   untouched), and
//! * [`crate::LazyComposeFst`], which recomputes a state's arcs on demand
//!   from its H and L∘G operands behind a bounded LRU memo.
//!
//! The one non-obvious shape choice: arcs are fetched through
//! `expand(state, &mut scratch) -> &[Arc]` rather than a callback or an
//! iterator. A callback would put a virtual call *per arc* in the hot loop
//! (the eager path is regression-gated at ≤ 5 % overhead vs. an
//! uninstrumented loop); an iterator cannot be object-safe. With the
//! scratch-buffer form the eager impl ignores the buffer and returns its
//! slice (zero copies, fully inlined once `SearchCore<&Fst>`
//! monomorphizes), while the lazy impl copies out of its memo under the
//! lock and returns the scratch — the caller iterates a plain slice either
//! way, and never holds the lazy graph's lock while decoding.

use crate::graph::{Arc as FstArc, Fst};
use crate::TropicalWeight;
use darkside_error::Error;

/// Memo-cache counters of a lazily-expanded graph
/// ([`GraphSource::memo_stats`]; `None` for eager graphs, which have no
/// cache). Counters are cumulative over the graph's lifetime — callers
/// that want per-run deltas snapshot before and after.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Expansions served from the memo.
    pub hits: u64,
    /// Expansions that had to recompute the state's arcs.
    pub misses: u64,
    /// Memo entries displaced by the LRU bound.
    pub evictions: u64,
    /// States resident in the memo right now.
    pub resident: usize,
    /// High-water mark of `resident` — the decode's working set, and the
    /// quantity the ISSUE 8 acceptance gate compares against the eager
    /// graph's state count.
    pub peak_resident: usize,
    /// Configured memo capacity, in states.
    pub capacity: usize,
}

/// Which concrete graph representation a [`GraphSource`] is — carried
/// through serving checkpoints (`darkside-serve` wire format v2) so a blob
/// saved against a lazy graph is never restored into an engine serving an
/// eager one (state ids agree by construction, but memory behavior and
/// memo accounting do not).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Fully-composed, fully-materialized [`Fst`].
    Eager,
    /// [`crate::LazyComposeFst`]: arcs recomputed on demand.
    Lazy,
}

impl GraphKind {
    /// Stable wire tag (checkpoint blobs).
    pub fn tag(self) -> u32 {
        match self {
            GraphKind::Eager => 0,
            GraphKind::Lazy => 1,
        }
    }

    /// Decode a wire tag; unknown tags fail (a newer blob, or garbage).
    pub fn from_tag(tag: u32) -> Result<Self, Error> {
        match tag {
            0 => Ok(GraphKind::Eager),
            1 => Ok(GraphKind::Lazy),
            other => Err(Error::shape(
                "GraphKind",
                format!("unknown graph-kind tag {other}"),
            )),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            GraphKind::Eager => "eager",
            GraphKind::Lazy => "lazy",
        }
    }
}

/// A decoding graph the search can expand state by state. See the module
/// docs for the contract and the `expand` shape rationale.
///
/// Implementations must be deterministic: `expand` returns the same arcs
/// in the same order on every call for a given state (the decoder's
/// same-seed-twice and lazy==eager guarantees both rest on this).
pub trait GraphSource {
    /// The start state, if the graph is non-empty.
    fn start(&self) -> Option<u32>;

    /// Total states (lazy graphs know this exactly: the state table is
    /// computed at construction; only arcs are deferred).
    fn num_states(&self) -> usize;

    /// Largest input label on any arc ([`crate::EPSILON`] if arc-free) —
    /// sizes the score-matrix shape check once per utterance.
    fn max_ilabel(&self) -> u32;

    /// True iff no arc consumes epsilon (required by the frame-synchronous
    /// decoder: one consumed frame per arc).
    fn is_input_eps_free(&self) -> bool;

    /// Final weight of `state` ([`TropicalWeight::ZERO`] = not final).
    fn final_weight(&self, state: u32) -> TropicalWeight;

    /// The outgoing arcs of `state`, in the graph's canonical order.
    /// `scratch` is caller-provided storage an implementation *may* fill
    /// and return a borrow of (the lazy path); the eager path returns its
    /// own adjacency slice and leaves `scratch` untouched.
    fn expand<'a>(&'a self, state: u32, scratch: &'a mut Vec<FstArc>) -> &'a [FstArc];

    fn is_final(&self, state: u32) -> bool {
        self.final_weight(state) != TropicalWeight::ZERO
    }

    /// Memo-cache counters, for graphs that have one (`None` otherwise).
    fn memo_stats(&self) -> Option<MemoStats> {
        None
    }
}

/// A shareable, thread-safe graph handle — what a serving bundle and its
/// sessions own (`darkside-serve`).
pub type SharedGraph = std::sync::Arc<dyn GraphSource + Send + Sync>;

impl GraphSource for Fst {
    #[inline]
    fn start(&self) -> Option<u32> {
        Fst::start(self)
    }

    #[inline]
    fn num_states(&self) -> usize {
        Fst::num_states(self)
    }

    #[inline]
    fn max_ilabel(&self) -> u32 {
        Fst::max_ilabel(self)
    }

    fn is_input_eps_free(&self) -> bool {
        Fst::is_input_eps_free(self)
    }

    #[inline]
    fn final_weight(&self, state: u32) -> TropicalWeight {
        Fst::final_weight(self, state)
    }

    #[inline]
    fn expand<'a>(&'a self, state: u32, _scratch: &'a mut Vec<FstArc>) -> &'a [FstArc] {
        self.arcs(state)
    }
}

macro_rules! forward_graph_source {
    ($ty:ty) => {
        impl<G: GraphSource + ?Sized> GraphSource for $ty {
            #[inline]
            fn start(&self) -> Option<u32> {
                (**self).start()
            }
            #[inline]
            fn num_states(&self) -> usize {
                (**self).num_states()
            }
            #[inline]
            fn max_ilabel(&self) -> u32 {
                (**self).max_ilabel()
            }
            #[inline]
            fn is_input_eps_free(&self) -> bool {
                (**self).is_input_eps_free()
            }
            #[inline]
            fn final_weight(&self, state: u32) -> TropicalWeight {
                (**self).final_weight(state)
            }
            #[inline]
            fn expand<'a>(&'a self, state: u32, scratch: &'a mut Vec<FstArc>) -> &'a [FstArc] {
                (**self).expand(state, scratch)
            }
            #[inline]
            fn is_final(&self, state: u32) -> bool {
                (**self).is_final(state)
            }
            #[inline]
            fn memo_stats(&self) -> Option<MemoStats> {
                (**self).memo_stats()
            }
        }
    };
}

// A search core can hold its graph borrowed (`SearchCore<&Fst>`, the
// one-shot decode entry points), owned behind an `Arc` (a streaming
// session), or fully type-erased (`SearchCore<SharedGraph>`).
forward_graph_source!(&G);
forward_graph_source!(std::sync::Arc<G>);
forward_graph_source!(Box<G>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EPSILON;

    fn two_state() -> Fst {
        let mut f = Fst::new();
        let s0 = f.add_state();
        let s1 = f.add_state();
        f.set_start(s0);
        f.set_final(s1, TropicalWeight(0.5));
        f.add_arc(
            s0,
            FstArc {
                ilabel: 3,
                olabel: EPSILON,
                weight: TropicalWeight(1.0),
                next: s1,
            },
        );
        f
    }

    #[test]
    fn eager_fst_expands_to_its_own_slices() {
        let f = two_state();
        let mut scratch = Vec::new();
        assert_eq!(GraphSource::start(&f), Some(0));
        assert_eq!(GraphSource::num_states(&f), 2);
        assert_eq!(GraphSource::max_ilabel(&f), 3);
        assert!(GraphSource::is_input_eps_free(&f));
        assert!(!GraphSource::is_final(&f, 0) && GraphSource::is_final(&f, 1));
        let arcs = f.expand(0, &mut scratch);
        assert_eq!(arcs, f.arcs(0));
        assert!(scratch.is_empty(), "eager expand must not touch scratch");
        assert_eq!(f.memo_stats(), None);
    }

    #[test]
    fn references_arcs_and_dyn_objects_all_forward() {
        let f = two_state();
        let mut scratch = Vec::new();

        fn probe<G: GraphSource>(g: G, scratch: &mut Vec<FstArc>) -> (usize, usize) {
            (g.num_states(), g.expand(0, scratch).len())
        }
        assert_eq!(probe(&f, &mut scratch), (2, 1));
        assert_eq!(probe(std::sync::Arc::new(f.clone()), &mut scratch), (2, 1));
        let shared: SharedGraph = std::sync::Arc::new(f);
        assert_eq!(probe(&shared, &mut scratch), (2, 1));
        assert_eq!(probe(shared, &mut scratch), (2, 1));
    }

    #[test]
    fn graph_kind_tags_round_trip_and_unknown_tags_fail() {
        for kind in [GraphKind::Eager, GraphKind::Lazy] {
            assert_eq!(GraphKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(GraphKind::from_tag(99).is_err());
        assert_eq!(GraphKind::Eager.label(), "eager");
        assert_eq!(GraphKind::Lazy.label(), "lazy");
    }
}
