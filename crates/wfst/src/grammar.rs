//! Entropy-based bigram pruning (ISSUE 8 tentpole, following the
//! Seymore–Rosenfeld / Stolcke line of LM pruning that *Neural Language
//! Model Pruning for ASR* builds on).
//!
//! At 10k words the bigram G contributes `num_words ×
//! successors_per_word` arcs to L∘G, and through composition each
//! grammar arc fans out across every homophone pronunciation — the
//! grammar is the lever that sets decoding-graph size. [`prune_grammar`]
//! drops the successor arcs whose removal costs the least modeling power,
//! measured per arc by its weighted relative-entropy contribution
//!
//! ```text
//! score(w → v) = p(w) · p(v | w) · ( ln p(v | w) − ln p_u(v) )
//! ```
//!
//! where `p(w)` / `p_u(v)` come from the grammar's initial (unigram)
//! distribution and `p(v | w)` is the successor probability renormalized
//! by the continue mass `1 − end_prob` (so it is a proper conditional).
//! An arc scoring below the threshold is deleted; a context always keeps
//! at least its best-scoring successor so no word becomes a dead end.
//! Kept arcs keep their original costs bit for bit — like Stolcke
//! pruning, explicit estimates are preserved and only the *pruned* events
//! fall back to a unigram-shaped backoff:
//!
//! ```text
//! q(v | w) = p(v | w)                     v kept
//!          = α(w) · p_u(v)                v pruned,
//! ```
//!
//! with `α(w)` scaled so `q(· | w)` still sums to the continue mass. The
//! report prices the damage as model perplexity before and after — the
//! cross-entropy of the true bigram against `q`, exponentiated — which by
//! Gibbs' inequality can only rise; the caller trades that rise against
//! the arc count. WER impact is measured end-to-end by `exp_scale`.

use darkside_acoustic::Bigram;
use darkside_error::Error;

/// Size/perplexity accounting for one [`prune_grammar`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GrammarPruneReport {
    /// The threshold the arcs were scored against.
    pub threshold: f64,
    /// Successor arcs in the input grammar.
    pub arcs_before: usize,
    /// Successor arcs kept.
    pub arcs_after: usize,
    /// Perplexity of the unpruned bigram (per successor event,
    /// conditioned on the utterance continuing).
    pub ppl_before: f64,
    /// Perplexity of the pruned-with-backoff model against the unpruned
    /// bigram; `≥ ppl_before` whenever anything was pruned.
    pub ppl_after: f64,
}

/// Entropy-prune `g`'s successor arcs at `threshold` (see module docs).
/// A threshold `≤ 0` keeps everything (the no-op knob default); the
/// initial distribution and end cost are never touched, so sampling
/// remains exact and only the decoding graph shrinks.
pub fn prune_grammar(g: &Bigram, threshold: f64) -> Result<(Bigram, GrammarPruneReport), Error> {
    if !threshold.is_finite() {
        return Err(Error::config(
            "prune_grammar",
            format!("threshold must be finite, got {threshold}"),
        ));
    }
    let num_words = g.successors.len();
    // Unigram probabilities from the initial distribution (mass 1 over
    // every word, so p_u is defined for any successor).
    let mut p_u = vec![0.0f64; num_words];
    for &(w, cost) in &g.initial {
        p_u[w as usize] = (-f64::from(cost)).exp();
    }
    // Continue mass: successor probs per context sum to 1 − end_prob.
    let continue_mass: f64 = g
        .successors
        .iter()
        .find(|succ| !succ.is_empty())
        .map(|succ| succ.iter().map(|&(_, c)| (-f64::from(c)).exp()).sum())
        .unwrap_or(1.0);

    let arcs_before: usize = g.successors.iter().map(Vec::len).sum();
    let mut pruned = Bigram {
        initial: g.initial.clone(),
        successors: Vec::with_capacity(num_words),
        end_cost: g.end_cost,
    };
    let mut arcs_after = 0usize;
    // Cross-entropies of the true conditional against itself (before) and
    // against the pruned-with-backoff model (after), weighted by p(w).
    let mut h_before = 0.0f64;
    let mut h_after = 0.0f64;

    for (w, succ) in g.successors.iter().enumerate() {
        if succ.is_empty() {
            pruned.successors.push(Vec::new());
            continue;
        }
        // score and the conditional-given-continue probability per arc.
        let scored: Vec<(f64, f64)> = succ
            .iter()
            .map(|&(v, cost)| {
                let p_joint = (-f64::from(cost)).exp();
                let p_cond = p_joint / continue_mass;
                let score = p_u[w] * p_cond * (p_cond.ln() - p_u[v as usize].ln());
                (score, p_cond)
            })
            .collect();
        // Always keep the best-scoring successor: a context must not
        // become a dead end in G (and hence in the decoding graph).
        let best = scored
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
            .unwrap();
        let keep: Vec<bool> = scored
            .iter()
            .enumerate()
            .map(|(i, &(score, _))| threshold <= 0.0 || score >= threshold || i == best)
            .collect();

        // Backoff scale over the pruned successors: q(v|w) = α · p_u(v)
        // with α chosen so the pruned slots absorb exactly the pruned
        // conditional mass (q stays a proper distribution).
        let pruned_mass: f64 = scored
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| !k)
            .map(|(&(_, p_cond), _)| p_cond)
            .sum();
        let pruned_unigram: f64 = succ
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| !k)
            .map(|(&(v, _), _)| p_u[v as usize])
            .sum();
        let alpha = if pruned_unigram > 0.0 {
            pruned_mass / pruned_unigram
        } else {
            0.0
        };

        let mut kept_arcs = Vec::new();
        for ((&(v, cost), &(_, p_cond)), &k) in succ.iter().zip(&scored).zip(&keep) {
            h_before -= p_u[w] * p_cond * p_cond.ln();
            let q = if k { p_cond } else { alpha * p_u[v as usize] };
            h_after -= p_u[w] * p_cond * q.ln();
            if k {
                kept_arcs.push((v, cost));
            }
        }
        arcs_after += kept_arcs.len();
        pruned.successors.push(kept_arcs);
    }

    let report = GrammarPruneReport {
        threshold,
        arcs_before,
        arcs_after,
        ppl_before: h_before.exp(),
        ppl_after: h_after.exp(),
    };
    Ok((pruned, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_acoustic::{Corpus, CorpusConfig};

    fn grammar() -> Bigram {
        Corpus::generate(CorpusConfig::default_scaled())
            .unwrap()
            .grammar
    }

    #[test]
    fn zero_threshold_is_a_no_op() {
        let g = grammar();
        let (pruned, report) = prune_grammar(&g, 0.0).unwrap();
        assert_eq!(report.arcs_before, report.arcs_after);
        assert_eq!(pruned.successors, g.successors);
        assert_eq!(pruned.initial, g.initial);
        assert!((report.ppl_before - report.ppl_after).abs() < 1e-9);
        assert!(report.ppl_before > 1.0);
    }

    #[test]
    fn pruning_shrinks_arcs_and_raises_perplexity() {
        let g = grammar();
        let (pruned, report) = prune_grammar(&g, 5e-4).unwrap();
        assert!(report.arcs_after < report.arcs_before, "{report:?}");
        assert!(
            report.ppl_after > report.ppl_before,
            "Gibbs: cross-entropy must exceed entropy once arcs drop ({report:?})"
        );
        // Harder pruning ⇒ fewer arcs, worse perplexity (monotone knob).
        let (_, harder) = prune_grammar(&g, 7.5e-4).unwrap();
        assert!(harder.arcs_after <= report.arcs_after);
        assert!(harder.ppl_after >= report.ppl_after);
        // Kept arcs are bit-identical to the originals; sampling surfaces
        // (initial, end cost) are untouched.
        assert_eq!(pruned.end_cost.to_bits(), g.end_cost.to_bits());
        assert_eq!(pruned.initial, g.initial);
        for (kept, orig) in pruned.successors.iter().zip(&g.successors) {
            for arc in kept {
                assert!(orig.iter().any(|o| o == arc));
            }
        }
    }

    #[test]
    fn every_context_keeps_at_least_one_successor() {
        let g = grammar();
        // Absurd threshold: everything scores below it.
        let (pruned, report) = prune_grammar(&g, 1e9).unwrap();
        assert_eq!(report.arcs_after, g.successors.len());
        for succ in &pruned.successors {
            assert_eq!(succ.len(), 1);
        }
    }

    #[test]
    fn non_finite_thresholds_are_rejected() {
        let g = grammar();
        assert!(prune_grammar(&g, f64::NAN).is_err());
        assert!(prune_grammar(&g, f64::INFINITY).is_err());
        // Negative is the documented "off" setting, not an error.
        let (_, report) = prune_grammar(&g, -1.0).unwrap();
        assert_eq!(report.arcs_before, report.arcs_after);
    }
}
