//! Randomized properties of composition over the tropical semiring
//! (ISSUE 2 satellite: `darkside_nn::check` as the proptest stand-in).
//!
//! Weights are quarter-integers so every ⊗ chain is exact in f32 and the
//! brute-force path enumeration compares with `==`-grade tolerance.

use darkside_nn::check::run_cases;
use darkside_nn::Rng;
use darkside_wfst::{compose, Arc, Fst, TropicalWeight};

const MAX_LABEL: u32 = 3;
const PATH_DEPTH: usize = 4;

/// A random epsilon-free transducer: 2–6 states, 1–3 arcs per state,
/// labels in `1..=MAX_LABEL`, quarter-integer weights, ≥1 final state.
fn random_fst(rng: &mut Rng) -> Fst {
    let n = 2 + rng.below(5);
    let mut fst = Fst::new();
    for _ in 0..n {
        fst.add_state();
    }
    fst.set_start(0);
    for s in 0..n as u32 {
        for _ in 0..1 + rng.below(3) {
            fst.add_arc(
                s,
                Arc {
                    ilabel: 1 + rng.below(MAX_LABEL as usize) as u32,
                    olabel: 1 + rng.below(MAX_LABEL as usize) as u32,
                    weight: TropicalWeight(rng.below(8) as f32 * 0.25),
                    next: rng.below(n) as u32,
                },
            );
        }
    }
    for s in 0..n as u32 {
        if rng.next_f32() < 0.4 {
            fst.set_final(s, TropicalWeight(rng.below(4) as f32 * 0.25));
        }
    }
    if (0..n as u32).all(|s| !fst.is_final(s)) {
        fst.set_final((n - 1) as u32, TropicalWeight::ONE);
    }
    fst
}

/// All accepting paths up to `PATH_DEPTH` arcs: `(ilabels, olabels, cost)`.
fn accepting_paths(fst: &Fst) -> Vec<(Vec<u32>, Vec<u32>, f32)> {
    let mut out = Vec::new();
    let mut stack = vec![(fst.start().unwrap(), Vec::new(), Vec::new(), 0.0f32)];
    while let Some((s, ilabels, olabels, cost)) = stack.pop() {
        if fst.is_final(s) {
            out.push((
                ilabels.clone(),
                olabels.clone(),
                cost + fst.final_weight(s).0,
            ));
        }
        if ilabels.len() == PATH_DEPTH {
            continue;
        }
        for arc in fst.arcs(s) {
            let mut i = ilabels.clone();
            let mut o = olabels.clone();
            i.push(arc.ilabel);
            o.push(arc.olabel);
            stack.push((arc.next, i, o, cost + arc.weight.0));
        }
    }
    out
}

/// ⊕ over a set of path costs (min; ZERO when empty).
fn path_sum(costs: impl Iterator<Item = f32>) -> f32 {
    costs.fold(f32::INFINITY, f32::min)
}

#[test]
fn composition_matches_brute_force_path_pairing() {
    run_cases(0xC0_5E, 60, |rng, _case| {
        let a = random_fst(rng);
        let b = random_fst(rng);
        let c = compose(&a, &b).expect("both operands have start states");

        let paths_a = accepting_paths(&a);
        let paths_b = accepting_paths(&b);
        // ⊕ over every (x→y, y→z) pairing: the definition of composition.
        let want = path_sum(paths_a.iter().flat_map(|(_, oa, ca)| {
            paths_b
                .iter()
                .filter(move |(ib, _, _)| ib == oa)
                .map(move |(_, _, cb)| ca + cb)
        }));
        // Both operands are eps-free, so composed paths advance both sides
        // each arc and the same depth cap enumerates the same path set.
        let got = path_sum(accepting_paths(&c).into_iter().map(|(_, _, c)| c));
        assert!(
            (want.is_infinite() && got.is_infinite()) || (want - got).abs() < 1e-4,
            "shortest composed cost: brute force {want}, compose() {got}"
        );
    });
}

#[test]
fn composing_with_identity_preserves_shortest_costs() {
    run_cases(0x1D, 40, |rng, _case| {
        let a = random_fst(rng);
        // The identity transducer on the label alphabet.
        let mut id = Fst::new();
        let s = id.add_state();
        id.set_start(s);
        id.set_final(s, TropicalWeight::ONE);
        for l in 1..=MAX_LABEL {
            id.add_arc(
                s,
                Arc {
                    ilabel: l,
                    olabel: l,
                    weight: TropicalWeight::ONE,
                    next: s,
                },
            );
        }
        let c = compose(&a, &id).expect("compose with identity");
        let want = path_sum(accepting_paths(&a).into_iter().map(|(_, _, c)| c));
        let got = path_sum(accepting_paths(&c).into_iter().map(|(_, _, c)| c));
        assert!(
            (want.is_infinite() && got.is_infinite()) || (want - got).abs() < 1e-4,
            "identity composition changed shortest cost: {want} vs {got}"
        );
    });
}

#[test]
fn semiring_axioms_hold_on_random_weights() {
    run_cases(0xA1, 200, |rng, _case| {
        let w = |rng: &mut Rng| TropicalWeight(rng.below(64) as f32 * 0.25 - 4.0);
        let (a, b, c) = (w(rng), w(rng), w(rng));
        // ⊕ commutative + associative, ⊗ associative.
        assert_eq!(a.plus(b), b.plus(a));
        assert_eq!(a.plus(b.plus(c)), a.plus(b).plus(c));
        assert_eq!(a.times(b.times(c)), a.times(b).times(c));
        // Identities and annihilator.
        assert_eq!(a.plus(TropicalWeight::ZERO), a);
        assert_eq!(a.times(TropicalWeight::ONE), a);
        assert_eq!(a.times(TropicalWeight::ZERO), TropicalWeight::ZERO);
        // Distributivity (exact: quarter-integer costs).
        assert_eq!(a.times(b.plus(c)), a.times(b).plus(a.times(c)));
        // Idempotence of ⊕ — the property that makes filterless
        // composition exact for shortest paths.
        assert_eq!(a.plus(a), a);
    });
}
