//! # darkside-core — the ASR system façade
//!
//! DESIGN.md §3: glues the substrate crates into the paper's evaluation —
//! the {Baseline, Beam, NBest} × {NP, 70, 80, 90} configuration grid of
//! Figs. 11/12, the artifact cache, and the experiment runner.
//!
//! The grid enumeration below is the coordinate system EXPERIMENTS.md
//! reports in; the end-to-end system behind it lives in [`pipeline`]:
//! build a [`pipeline::Pipeline`] from a [`pipeline::PipelineConfig`]
//! (builder-style `with_*` methods, `default_scaled()` = DESIGN.md §4b)
//! and call [`pipeline::Pipeline::run`] for the full corpus → train →
//! prune → decode study.

pub mod bundle;
pub mod pipeline;
pub mod policy;

pub use bundle::{ModelBundle, ServableSpec};
pub use darkside_error::Error;
pub use darkside_nn::Precision;
pub use darkside_pruning::PruneStructure;
pub use pipeline::{
    DecodingGraph, GraphConfig, LevelReport, Pipeline, PipelineConfig, PipelineReport,
    PolicyGridLevel, PolicyGridReport,
};
pub use policy::PolicyKind;

pub use darkside_acoustic as acoustic;
pub use darkside_decoder as decoder;
pub use darkside_dnn_accel as dnn_accel;
pub use darkside_hwmodel as hwmodel;
pub use darkside_nn as nn;
pub use darkside_pruning as pruning;
pub use darkside_quant as quant;
pub use darkside_trace as trace;
pub use darkside_viterbi_accel as viterbi_accel;
pub use darkside_wfst as wfst;

/// Hypothesis-selection strategy axis of the paper's grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Selection {
    /// Fixed beam, no workload bound (the paper's "Baseline").
    Baseline,
    /// Reduced beams per pruning level (the paper's software mitigation).
    Beam,
    /// The paper's contribution: loose N-best hash selection.
    NBest,
}

/// Pruning-level axis of the paper's grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PruneLevel {
    None,
    P70,
    P80,
    P90,
}

impl PruneLevel {
    /// Target global sparsity for `darkside-pruning`.
    pub fn sparsity(self) -> f64 {
        match self {
            PruneLevel::None => 0.0,
            PruneLevel::P70 => 0.70,
            PruneLevel::P80 => 0.80,
            PruneLevel::P90 => 0.90,
        }
    }
}

/// One cell of the 12-configuration grid (Figs. 11/12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridConfig {
    pub selection: Selection,
    pub prune: PruneLevel,
}

impl GridConfig {
    /// All 12 cells, in the paper's plotting order.
    pub fn full_grid() -> Vec<GridConfig> {
        let mut grid = Vec::with_capacity(12);
        for selection in [Selection::Baseline, Selection::Beam, Selection::NBest] {
            for prune in [
                PruneLevel::None,
                PruneLevel::P70,
                PruneLevel::P80,
                PruneLevel::P90,
            ] {
                grid.push(GridConfig { selection, prune });
            }
        }
        grid
    }

    /// EXPERIMENTS.md label, e.g. `NBest-90` / `Baseline-NP`.
    pub fn label(&self) -> String {
        let sel = match self.selection {
            Selection::Baseline => "Baseline",
            Selection::Beam => "Beam",
            Selection::NBest => "NBest",
        };
        let lvl = match self.prune {
            PruneLevel::None => "NP",
            PruneLevel::P70 => "70",
            PruneLevel::P80 => "80",
            PruneLevel::P90 => "90",
        };
        format!("{sel}-{lvl}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_twelve_unique_labels() {
        let grid = GridConfig::full_grid();
        assert_eq!(grid.len(), 12);
        let labels: std::collections::HashSet<String> = grid.iter().map(|g| g.label()).collect();
        assert_eq!(labels.len(), 12);
        assert!(labels.contains("NBest-90"));
        assert!(labels.contains("Baseline-NP"));
    }
}
