//! Pipeline-level pruning-policy selection (ISSUE 3): one value that names
//! which [`darkside_decoder::PruningPolicy`] every decode in a run uses,
//! carried by [`crate::PipelineConfig`] and fanned out per-level by
//! [`crate::Pipeline::run_policy_grid`].

use darkside_decoder::{BeamConfig, BeamPolicy, PruningPolicy};
use darkside_error::Error;
use darkside_viterbi_accel::{
    LooseNBestPolicy, NBestTableConfig, UnfoldHashConfig, UnfoldHashPolicy,
};

/// Which hypothesis-admission scheme the search runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Classic software beam (the paper's "Baseline" search).
    Beam,
    /// UNFOLD's storage: large hash + backup buffer + overflow-to-memory.
    /// Decodes identically to `Beam`; only the storage accounting differs.
    UnfoldHash(UnfoldHashConfig),
    /// The paper's loose N-best: K-way set-associative table with Max-Heap
    /// replacement, bounding survivors per frame.
    LooseNBest(NBestTableConfig),
}

impl PolicyKind {
    /// Stable report label ("beam" / "unfold" / "nbest").
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Beam => "beam",
            PolicyKind::UnfoldHash(_) => "unfold",
            PolicyKind::LooseNBest(_) => "nbest",
        }
    }

    /// Instantiate a fresh policy value (one per utterance; policies carry
    /// per-utterance traffic accounting). The box is `Send` so a serving
    /// session can carry its policy across scheduler worker threads
    /// (ISSUE 5).
    pub fn build(&self, beam: &BeamConfig) -> Result<Box<dyn PruningPolicy + Send>, Error> {
        Ok(match self {
            PolicyKind::Beam => Box::new(BeamPolicy::new(beam.beam)),
            PolicyKind::UnfoldHash(cfg) => Box::new(UnfoldHashPolicy::new(*cfg, beam.beam)?),
            PolicyKind::LooseNBest(cfg) => Box::new(LooseNBestPolicy::new(*cfg, beam.beam)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_buildability() {
        let beam = BeamConfig::default();
        for kind in [
            PolicyKind::Beam,
            PolicyKind::UnfoldHash(UnfoldHashConfig::scaled()),
            PolicyKind::LooseNBest(NBestTableConfig::paper()),
        ] {
            let policy = kind.build(&beam).unwrap();
            assert_eq!(policy.name(), kind.label());
        }
        // Invalid geometry surfaces at build time.
        assert!(PolicyKind::LooseNBest(NBestTableConfig {
            entries: 24,
            ways: 8
        })
        .build(&beam)
        .is_err());
    }
}
