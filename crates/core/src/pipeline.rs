//! The redesigned pipeline façade (ISSUE 2 tentpole): corpus → train →
//! prune → decode behind one builder-configured entry point.
//!
//! `PipelineConfig::default_scaled()` is the DESIGN.md §4b operating point;
//! `with_*` methods shrink or reshape it (the CI smoke test and the
//! experiment bins share this one type). [`Pipeline::run`] executes the
//! whole study — train the dense model, evaluate it, then for each pruning
//! level: prune (global-quality bisection), masked-retrain, re-evaluate
//! through the *same* [`FrameScorer`]-driven decode path — and returns the
//! per-level [`LevelReport`]s that EXPERIMENTS.md tables are printed from.

use crate::{acoustic, decoder, nn, pruning, quant, wfst, PolicyKind};
use acoustic::{training_set, Corpus, CorpusConfig, Utterance};
use darkside_error::Error;
use darkside_trace::{self as trace, Json};
use decoder::{acoustic_costs, decode_with_policy, BeamConfig, WerStats};
use nn::{evaluate, FrameScorer, Matrix, Mlp, Precision, Rng, SgdConfig, Trainer};
use pruning::{prune_mlp_to_sparsity_structured, ModelPruneResult, PruneStructure, PrunedMlp};
use quant::{calibrate_mlp, QuantizedMlp};
use std::rc::Rc;
use std::sync::Arc;
use wfst::{
    build_decoding_graph, build_lazy_decoding_graph, prune_grammar, Fst, GrammarPruneReport,
    GraphKind, GraphSource, LazyComposeFst, MemoStats, SharedGraph,
};

/// How the pipeline builds and holds its decoding graph (ISSUE 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphConfig {
    /// Eager fully-composed `Fst`, or lazy on-the-fly H ∘ (L ∘ G)
    /// composition ([`wfst::LazyComposeFst`]) — bit-identical decodes by
    /// construction, different memory behavior at scale.
    pub mode: GraphKind,
    /// LRU memo capacity of the lazy graph, in expanded states (ignored in
    /// eager mode). Bounds resident arc memory during decode.
    pub memo_states: usize,
    /// Entropy-pruning threshold applied to the bigram G before the
    /// *decoding* graph is built (`wfst::prune_grammar`); `≤ 0` disables.
    /// Sampling always uses the unpruned grammar, so pruning changes the
    /// search space, never the task.
    pub grammar_prune: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            mode: GraphKind::Eager,
            memo_states: 4096,
            grammar_prune: 0.0,
        }
    }
}

/// Everything `Pipeline::run` needs, with DESIGN.md §4b defaults.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    pub corpus: CorpusConfig,
    /// Hidden affine width (paper shape: 512).
    pub hidden_dim: usize,
    /// P-norm pooling group (paper shape: 4 → 128 pooled).
    pub pnorm_group: usize,
    /// Hidden `affine → pnorm → renorm` blocks (paper shape: 4).
    pub hidden_blocks: usize,
    pub sgd: SgdConfig,
    /// Dense training epochs.
    pub epochs: usize,
    /// Masked-retraining epochs after each prune.
    pub retrain_epochs: usize,
    pub train_utterances: usize,
    pub test_utterances: usize,
    pub beam: BeamConfig,
    /// Which pruning policy every decode in [`Pipeline::run`] uses
    /// (ISSUE 3; [`Pipeline::run_policy_grid`] sweeps several at once).
    pub policy: PolicyKind,
    /// Global sparsity targets to sweep (the paper's 70/80/90 %).
    pub prune_levels: Vec<f64>,
    /// Sparsity structure for the *structured* comparison rows (ISSUE 6).
    /// [`PruneStructure::Unstructured`] (the default) reproduces the
    /// original study; any block structure makes [`Pipeline::run`] /
    /// [`Pipeline::run_policy_grid`] emit an extra BSR-served row per
    /// pruning level so structured-vs-unstructured WER is read off at equal
    /// sparsity.
    pub structure: PruneStructure,
    /// Decoding-graph mode, lazy-memo budget, and grammar pruning (ISSUE 8).
    pub graph: GraphConfig,
    /// Scoring precision for the *quantized* comparison rows (ISSUE 10).
    /// [`Precision::F32`] (the default) reproduces the original study;
    /// [`Precision::Int8`] makes [`Pipeline::run`] /
    /// [`Pipeline::run_policy_grid`] emit an extra int8-served row per
    /// level (and for dense) so quantized-vs-f32 WER is read off at equal
    /// sparsity — the same ride-along pattern as `structure`.
    pub precision: Precision,
    /// Seed for model init, training shuffles, and train/test sampling.
    pub seed: u64,
}

impl PipelineConfig {
    /// The DESIGN.md §4b scaled operating point.
    pub fn default_scaled() -> Self {
        Self {
            corpus: CorpusConfig::default_scaled(),
            hidden_dim: 512,
            pnorm_group: 4,
            hidden_blocks: 4,
            sgd: SgdConfig {
                learning_rate: 0.06,
                momentum: 0.9,
                batch_size: 128,
                lr_decay: 0.96,
            },
            epochs: 14,
            retrain_epochs: 3,
            train_utterances: 300,
            test_utterances: 60,
            beam: BeamConfig::default(),
            policy: PolicyKind::Beam,
            prune_levels: vec![0.70, 0.80, 0.90],
            structure: PruneStructure::Unstructured,
            graph: GraphConfig::default(),
            precision: Precision::F32,
            seed: 0xDA_2C,
        }
    }

    /// A deliberately tiny configuration for CI smoke tests: small corpus
    /// (easier class space, so the dense model actually reaches the paper's
    /// confident regime), small model, few epochs — seconds, not minutes.
    pub fn smoke() -> Self {
        Self {
            corpus: CorpusConfig {
                num_words: 30,
                successors_per_word: 8,
                inventory: acoustic::PhonemeInventory {
                    num_phonemes: 12,
                    states_per_phoneme: 3,
                },
                seed: 0x5310,
                ..CorpusConfig::default_scaled()
            },
            hidden_dim: 64,
            pnorm_group: 4,
            hidden_blocks: 2,
            sgd: SgdConfig {
                learning_rate: 0.08,
                momentum: 0.9,
                batch_size: 64,
                lr_decay: 0.97,
            },
            epochs: 20,
            retrain_epochs: 0,
            train_utterances: 40,
            test_utterances: 8,
            beam: BeamConfig::default(),
            policy: PolicyKind::Beam,
            prune_levels: vec![0.90],
            structure: PruneStructure::Unstructured,
            graph: GraphConfig::default(),
            precision: Precision::F32,
            seed: 0x5310,
        }
    }

    pub fn with_corpus(mut self, corpus: CorpusConfig) -> Self {
        self.corpus = corpus;
        self
    }

    pub fn with_model_shape(
        mut self,
        hidden_dim: usize,
        pnorm_group: usize,
        hidden_blocks: usize,
    ) -> Self {
        self.hidden_dim = hidden_dim;
        self.pnorm_group = pnorm_group;
        self.hidden_blocks = hidden_blocks;
        self
    }

    pub fn with_training(mut self, epochs: usize, retrain_epochs: usize) -> Self {
        self.epochs = epochs;
        self.retrain_epochs = retrain_epochs;
        self
    }

    pub fn with_corpus_sizes(mut self, train: usize, test: usize) -> Self {
        self.train_utterances = train;
        self.test_utterances = test;
        self
    }

    pub fn with_beam(mut self, beam: BeamConfig) -> Self {
        self.beam = beam;
        self
    }

    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_prune_levels(mut self, levels: Vec<f64>) -> Self {
        self.prune_levels = levels;
        self
    }

    pub fn with_structure(mut self, structure: PruneStructure) -> Self {
        self.structure = structure;
        self
    }

    /// Add int8-quantized comparison rows to every run (ISSUE 10).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    pub fn with_graph(mut self, graph: GraphConfig) -> Self {
        self.graph = graph;
        self
    }

    /// Switch to a lazily-composed decoding graph with the given memo
    /// budget (states).
    pub fn with_lazy_graph(mut self, memo_states: usize) -> Self {
        self.graph.mode = GraphKind::Lazy;
        self.graph.memo_states = memo_states;
        self
    }

    /// Entropy-prune the bigram grammar at `threshold` before building the
    /// decoding graph (`≤ 0` keeps every arc).
    pub fn with_grammar_prune(mut self, threshold: f64) -> Self {
        self.graph.grammar_prune = threshold;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The run-identifying knobs, for the `RunReport` `config` section
    /// (ISSUE 4). Not exhaustive — corpus internals stay behind the corpus
    /// seed — but enough to identify and re-launch the run.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("num_words", self.corpus.num_words.into()),
            ("num_classes", self.corpus.inventory.num_classes().into()),
            ("corpus_seed", self.corpus.seed.into()),
            ("hidden_dim", self.hidden_dim.into()),
            ("pnorm_group", self.pnorm_group.into()),
            ("hidden_blocks", self.hidden_blocks.into()),
            ("epochs", self.epochs.into()),
            ("retrain_epochs", self.retrain_epochs.into()),
            ("train_utterances", self.train_utterances.into()),
            ("test_utterances", self.test_utterances.into()),
            ("beam", (self.beam.beam as f64).into()),
            ("acoustic_scale", (self.beam.acoustic_scale as f64).into()),
            ("policy", Json::str(self.policy.label())),
            ("structure", Json::str(self.structure.label())),
            ("precision", Json::str(self.precision.label())),
            ("graph_mode", Json::str(self.graph.mode.label())),
            ("memo_states", self.graph.memo_states.into()),
            ("grammar_prune", self.graph.grammar_prune.into()),
            (
                "prune_levels",
                Json::Arr(self.prune_levels.iter().map(|&s| s.into()).collect()),
            ),
            ("seed", self.seed.into()),
        ])
    }

    fn validate(&self) -> Result<(), Error> {
        let fail = |detail: String| Err(Error::config("PipelineConfig", detail));
        if self.hidden_dim == 0 || !self.hidden_dim.is_multiple_of(self.pnorm_group) {
            return fail(format!(
                "hidden dim {} not a multiple of p-norm group {}",
                self.hidden_dim, self.pnorm_group
            ));
        }
        if self.hidden_blocks == 0 {
            return fail("zero hidden blocks".into());
        }
        if self.train_utterances == 0 || self.test_utterances == 0 {
            return fail("empty train or test set".into());
        }
        if self.prune_levels.iter().any(|&s| !(0.0..1.0).contains(&s)) {
            return fail(format!("prune levels {:?}", self.prune_levels));
        }
        if self.graph.mode == GraphKind::Lazy && self.graph.memo_states == 0 {
            return fail("lazy graph with a zero-state memo budget".into());
        }
        if !self.graph.grammar_prune.is_finite() {
            return fail(format!(
                "grammar prune threshold {}",
                self.graph.grammar_prune
            ));
        }
        // Policy geometry problems (non-power-of-two sets, …) surface here
        // rather than mid-run.
        self.policy.build(&self.beam)?;
        self.structure.validate("PipelineConfig.structure")?;
        Ok(())
    }
}

/// Metrics for one model variant (dense or one pruning level) over the
/// held-out test set — one row of the EXPERIMENTS.md tables.
#[derive(Clone, Debug)]
pub struct LevelReport {
    /// `"dense"` or the sparsity percentage, e.g. `"90%"`.
    pub label: String,
    /// Pruning-policy label this row was decoded under ("beam" / "unfold"
    /// / "nbest").
    pub policy: String,
    /// Sparsity-structure label of the scorer ("unstructured", "b8x8", …;
    /// dense rows report "unstructured" — no structure constraint applies).
    pub structure: String,
    /// Scoring-precision label of the scorer ("f32" / "int8"; ISSUE 10).
    pub precision: String,
    /// Achieved global sparsity of the scorer (0 for dense).
    pub sparsity: f64,
    /// Mean top-1 softmax probability over test frames (Fig. 3's y-axis).
    pub mean_confidence: f64,
    /// Frame-level classification accuracy against the true alignment.
    pub frame_accuracy: f64,
    /// Corpus-level word error rate, percent.
    pub wer_percent: f64,
    /// Mean hypotheses (arcs) explored per frame (Fig. 4's y-axis).
    pub mean_hypotheses: f64,
    /// Nearest-rank percentiles of hypotheses per frame over every decoded
    /// test frame — the tail view the mean hides (ISSUE 4; the paper's
    /// Fig. 7 argues from exactly this distribution).
    pub hyps_p50: f64,
    pub hyps_p95: f64,
    pub hyps_p99: f64,
    /// Per-frame decode latency percentiles, nanoseconds. Nonzero only when
    /// the level was decoded under an active `darkside_trace` recorder (the
    /// untraced hot loop never reads the clock).
    pub frame_ns_p50: f64,
    pub frame_ns_p95: f64,
    pub frame_ns_p99: f64,
    /// Mean best-path cost per utterance.
    pub mean_best_cost: f64,
    /// Total hypothesis-storage evictions across the test set (Fig. 7's
    /// companion count; 0 for storage-free policies).
    pub evictions: u64,
    /// Total overflow/discard events across the test set.
    pub overflows: u64,
    /// Mean policy-storage occupancy per decoded frame.
    pub mean_table_occupancy: f64,
    /// Total hypothesis-storage reads across the test set.
    pub table_reads: u64,
    /// Total hypothesis-storage writes across the test set.
    pub table_writes: u64,
    /// Lazy-graph memo traffic while decoding this level (all zero for
    /// eager graphs, which have no memo — ISSUE 8 observability).
    pub memo_hits: u64,
    pub memo_misses: u64,
    pub memo_evictions: u64,
    /// High-water mark of memo-resident states over the graph's lifetime
    /// so far (0 for eager graphs).
    pub memo_peak_resident: usize,
}

/// The full study: dense row first, then one row per pruning level.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    pub levels: Vec<LevelReport>,
    pub train_frames: usize,
    pub test_frames: usize,
    /// "eager" or "lazy" — which graph representation every level was
    /// decoded against.
    pub graph_kind: String,
    pub graph_states: usize,
    pub graph_arcs: usize,
    pub model_params: usize,
    /// Dense training trace: final-epoch mean loss and frame accuracy.
    pub final_train_loss: f64,
    pub final_train_accuracy: f64,
}

impl PipelineReport {
    pub fn dense(&self) -> &LevelReport {
        &self.levels[0]
    }

    pub fn pruned(&self) -> &[LevelReport] {
        &self.levels[1..]
    }
}

/// One pruning level decoded under every policy in the sweep — a row of
/// the Fig. 7 table with one [`LevelReport`] per column.
#[derive(Clone, Debug)]
pub struct PolicyGridLevel {
    /// `"dense"` or the sparsity percentage, e.g. `"90%"`.
    pub label: String,
    /// Sparsity-structure label of the row's scorer (see
    /// [`LevelReport::structure`]).
    pub structure: String,
    /// Scoring-precision label of the row's scorer ("f32" / "int8").
    pub precision: String,
    /// Achieved global sparsity of the scorer (0 for dense).
    pub sparsity: f64,
    /// One report per swept policy, in [`PolicyGridReport::policies`]
    /// order. All share the same scorer, so confidence/accuracy columns
    /// agree; the search columns are what differ.
    pub per_policy: Vec<LevelReport>,
}

/// Per-level × per-policy study (ISSUE 3): the Fig. 7 reproduction —
/// hypotheses/frame under a bounded N-best table stays roughly flat as
/// pruning inflates the beam search.
#[derive(Clone, Debug)]
pub struct PolicyGridReport {
    /// Column labels, in sweep order ("beam" / "unfold" / "nbest").
    pub policies: Vec<String>,
    /// Dense row first, then one row per configured pruning level.
    pub levels: Vec<PolicyGridLevel>,
}

/// The decoding graph a pipeline built — eager or lazy behind one value
/// that itself implements [`GraphSource`], so every decode call site
/// (`decode_with_policy(&pipeline.graph, …)`) is mode-agnostic. Cloning is
/// cheap (shared `Arc`s); a lazy clone shares its memo and counters.
#[derive(Clone, Debug)]
pub enum DecodingGraph {
    Eager(Arc<Fst>),
    Lazy(Arc<LazyComposeFst>),
}

impl DecodingGraph {
    pub fn kind(&self) -> GraphKind {
        match self {
            DecodingGraph::Eager(_) => GraphKind::Eager,
            DecodingGraph::Lazy(_) => GraphKind::Lazy,
        }
    }

    /// The type-erased, shareable handle a [`crate::ModelBundle`] (and its
    /// serving sessions) holds.
    pub fn source(&self) -> SharedGraph {
        match self {
            DecodingGraph::Eager(g) => g.clone(),
            DecodingGraph::Lazy(g) => g.clone(),
        }
    }

    /// Total arcs (materialized for eager graphs; counted at construction,
    /// never all resident, for lazy ones).
    pub fn num_arcs(&self) -> usize {
        match self {
            DecodingGraph::Eager(g) => g.num_arcs(),
            DecodingGraph::Lazy(g) => g.num_arcs(),
        }
    }

    /// The materialized graph, when this pipeline built one (benches that
    /// walk adjacency slices directly — e.g. a hand-rolled reference
    /// decoder — need the concrete representation).
    pub fn as_eager(&self) -> Option<&Fst> {
        match self {
            DecodingGraph::Eager(g) => Some(g),
            DecodingGraph::Lazy(_) => None,
        }
    }
}

impl GraphSource for DecodingGraph {
    fn start(&self) -> Option<u32> {
        match self {
            DecodingGraph::Eager(g) => g.start(),
            DecodingGraph::Lazy(g) => GraphSource::start(&**g),
        }
    }

    fn num_states(&self) -> usize {
        match self {
            DecodingGraph::Eager(g) => g.num_states(),
            DecodingGraph::Lazy(g) => g.num_states(),
        }
    }

    fn max_ilabel(&self) -> u32 {
        match self {
            DecodingGraph::Eager(g) => g.max_ilabel(),
            DecodingGraph::Lazy(g) => g.max_ilabel(),
        }
    }

    fn is_input_eps_free(&self) -> bool {
        match self {
            DecodingGraph::Eager(g) => g.is_input_eps_free(),
            DecodingGraph::Lazy(g) => g.is_input_eps_free(),
        }
    }

    fn final_weight(&self, state: u32) -> wfst::TropicalWeight {
        match self {
            DecodingGraph::Eager(g) => g.final_weight(state),
            DecodingGraph::Lazy(g) => g.final_weight(state),
        }
    }

    fn expand<'a>(&'a self, state: u32, scratch: &'a mut Vec<wfst::Arc>) -> &'a [wfst::Arc] {
        match self {
            DecodingGraph::Eager(g) => g.arcs(state),
            DecodingGraph::Lazy(g) => g.expand(state, scratch),
        }
    }

    fn memo_stats(&self) -> Option<MemoStats> {
        match self {
            DecodingGraph::Eager(_) => None,
            DecodingGraph::Lazy(g) => g.memo_stats(),
        }
    }
}

/// The end-to-end system. Construction ([`Pipeline::build`]) does the
/// expensive one-time work — corpus generation, decoding-graph composition,
/// dense training — so callers can re-decode or re-prune without repeating
/// it; [`Pipeline::run`] is the one-call entry point the experiment bins
/// use.
#[derive(Debug)]
pub struct Pipeline {
    pub config: PipelineConfig,
    pub corpus: Corpus,
    pub graph: DecodingGraph,
    pub model: Mlp,
    /// Size/perplexity accounting of the grammar prune, when one ran.
    grammar_prune: Option<GrammarPruneReport>,
    test_set: Vec<Utterance>,
    train_frames: usize,
    final_train_loss: f64,
    final_train_accuracy: f64,
    /// Memo of [`Pipeline::dense_hyps_baseline`] probes, keyed by beam
    /// geometry bits (one probe per distinct serving beam).
    dense_hyps_probes: std::sync::Mutex<Vec<((u32, u32), f64)>>,
}

impl Pipeline {
    /// Generate the corpus, compose the decoding graph, and train the dense
    /// acoustic model.
    pub fn build(config: PipelineConfig) -> Result<Self, Error> {
        config.validate()?;
        let corpus = {
            let _s = trace::span!("corpus");
            Corpus::generate(config.corpus.clone())?
        };
        let (graph, grammar_prune) = {
            let _s = trace::span!("graph");
            // The decode graph may see a pruned grammar; sampling keeps the
            // true one, so the task distribution never changes.
            let mut grammar_prune = None;
            let decode_grammar = if config.graph.grammar_prune > 0.0 {
                let (pruned, report) = prune_grammar(&corpus.grammar, config.graph.grammar_prune)?;
                grammar_prune = Some(report);
                pruned
            } else {
                corpus.grammar.clone()
            };
            let graph = match config.graph.mode {
                GraphKind::Eager => DecodingGraph::Eager(Arc::new(build_decoding_graph(
                    &corpus.config.inventory,
                    &corpus.lexicon,
                    &decode_grammar,
                )?)),
                GraphKind::Lazy => DecodingGraph::Lazy(Arc::new(build_lazy_decoding_graph(
                    &corpus.config.inventory,
                    &corpus.lexicon,
                    &decode_grammar,
                    config.graph.memo_states,
                )?)),
            };
            (graph, grammar_prune)
        };

        let mut rng = Rng::new(config.seed);
        let train = corpus.sample_set(config.train_utterances, &mut rng);
        let test_set = corpus.sample_set(config.test_utterances, &mut rng);
        let (features, labels) = training_set(&train);

        let mut model = Mlp::kaldi_style(
            corpus.config.spliced_dim(),
            config.hidden_dim,
            config.pnorm_group,
            config.hidden_blocks,
            corpus.config.inventory.num_classes(),
            &mut rng,
        );
        let mut trainer = Trainer::new(config.sgd, &model);
        let mut last = evaluate(&model, &features, &labels);
        {
            let _train_span = trace::span!("train");
            for _ in 0..config.epochs {
                let _epoch = trace::span!("train.epoch");
                last = trainer.train_epoch(&mut model, &features, &labels, &mut rng, |_| {});
                trainer.end_epoch();
            }
        }
        Ok(Self {
            config,
            corpus,
            graph,
            model,
            grammar_prune,
            test_set,
            train_frames: features.rows(),
            final_train_loss: last.mean_loss as f64,
            final_train_accuracy: last.accuracy as f64,
            dense_hyps_probes: std::sync::Mutex::new(Vec::new()),
        })
    }

    /// Mean hypotheses/frame of the **dense** model decoding under `beam`
    /// with the classic beam policy — the workload baseline the ISSUE 9
    /// per-session dark-side detector compares live sessions against (the
    /// paper's hypothesis blowup is *relative to dense*). Probed over a
    /// small fixed slice of the held-out set, frame-weighted, and memoized
    /// per beam geometry so repeated [`Pipeline::servable`] exports pay
    /// once. Returns 0 when the pipeline has no test utterances (the
    /// detector treats a non-positive baseline as "no workload check").
    pub fn dense_hyps_baseline(&self, beam: &BeamConfig) -> Result<f64, Error> {
        const PROBE_UTTERANCES: usize = 4;
        let key = (beam.beam.to_bits(), beam.acoustic_scale.to_bits());
        {
            let probes = self
                .dense_hyps_probes
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some((_, v)) = probes.iter().find(|(k, _)| *k == key) {
                return Ok(*v);
            }
        }
        let mut frames = 0usize;
        let mut hyps = 0f64;
        for utt in self.test_set.iter().take(PROBE_UTTERANCES) {
            let scores = FrameScorer::score_frames(&self.model, &utt.frames);
            let costs = acoustic_costs(&scores, beam);
            let mut policy = PolicyKind::Beam.build(beam)?;
            let result = decode_with_policy(&self.graph, &costs, policy.as_mut())?;
            for n in &result.stats.active_tokens {
                hyps += *n as f64;
            }
            frames += result.stats.active_tokens.len();
        }
        let baseline = if frames == 0 {
            0.0
        } else {
            hyps / frames as f64
        };
        let mut probes = self
            .dense_hyps_probes
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if !probes.iter().any(|(k, _)| *k == key) {
            probes.push((key, baseline));
        }
        Ok(baseline)
    }

    /// The held-out test set every [`Pipeline::evaluate_scorer`] call
    /// decodes (fixed at build time, so eager and lazy pipelines built from
    /// the same config score identical utterances).
    pub fn test_set(&self) -> &[Utterance] {
        &self.test_set
    }

    /// Size/perplexity accounting of the grammar prune, when
    /// [`GraphConfig::grammar_prune`] was enabled.
    pub fn grammar_prune_report(&self) -> Option<&GrammarPruneReport> {
        self.grammar_prune.as_ref()
    }

    /// Decode the held-out set through `scorer` under the run's configured
    /// policy. Every score — dense or pruned — flows through this one
    /// path, so level comparisons differ only in the [`FrameScorer`]
    /// behind them.
    pub fn evaluate_scorer(
        &self,
        label: &str,
        sparsity: f64,
        scorer: &dyn FrameScorer,
    ) -> Result<LevelReport, Error> {
        self.evaluate_scorer_with_policy(label, sparsity, scorer, &self.config.policy)
    }

    /// [`Pipeline::evaluate_scorer`] under an explicit [`PolicyKind`] —
    /// the per-cell worker of [`Pipeline::run_policy_grid`]. A fresh
    /// policy value is built per utterance (policies carry per-utterance
    /// storage state and traffic counters).
    pub fn evaluate_scorer_with_policy(
        &self,
        label: &str,
        sparsity: f64,
        scorer: &dyn FrameScorer,
        kind: &PolicyKind,
    ) -> Result<LevelReport, Error> {
        // Stage span + per-level metric names (ISSUE 4). When tracing is
        // off the span is inert and the names are never formatted.
        let traced = trace::active();
        let _decode_span = trace::span(format!("decode.{label}"));
        let (hyps_metric, ns_metric) = if traced {
            (
                format!("decode.{label}.{}.hyps", kind.label()),
                format!("decode.{label}.{}.frame_ns", kind.label()),
            )
        } else {
            (String::new(), String::new())
        };
        let mut confidence = 0.0f64;
        let mut correct = 0usize;
        let mut frames = 0usize;
        let mut wer = WerStats::default();
        let mut hypotheses = 0.0f64;
        let mut best_cost = 0.0f64;
        let mut evictions = 0u64;
        let mut overflows = 0u64;
        let mut occupancy = 0usize;
        let mut table_reads = 0u64;
        let mut table_writes = 0u64;
        let mut arcs_per_frame: Vec<f64> = Vec::new();
        let mut frame_ns: Vec<f64> = Vec::new();
        // Memo counters are cumulative over the graph's lifetime; this
        // level's traffic is the before/after delta (zero for eager).
        let memo_before = self.graph.memo_stats().unwrap_or_default();
        for utt in &self.test_set {
            let scores = scorer.score_frames(&utt.frames);
            confidence += scores.mean_confidence() as f64 * utt.frames.len() as f64;
            for (i, &label) in utt.labels.iter().enumerate() {
                if scores.top1(i).0 == label as usize {
                    correct += 1;
                }
            }
            frames += utt.frames.len();
            let costs = acoustic_costs(&scores, &self.config.beam);
            let mut policy = kind.build(&self.config.beam)?;
            let result = decode_with_policy(&self.graph, &costs, policy.as_mut())?;
            wer.accumulate(&decoder::word_errors(&utt.words, &result.words));
            hypotheses += result.stats.mean_hypotheses();
            best_cost += result.cost as f64;
            evictions += result.stats.evictions;
            overflows += result.stats.overflows;
            occupancy += result.stats.table_occupancy.iter().sum::<usize>();
            table_reads += result.stats.table_reads;
            table_writes += result.stats.table_writes;
            arcs_per_frame.extend(result.stats.arcs_expanded.iter().map(|&a| a as f64));
            if traced {
                for &a in &result.stats.arcs_expanded {
                    trace::sample(&hyps_metric, a as f64);
                }
                for &ns in &result.stats.frame_ns {
                    trace::sample(&ns_metric, ns as f64);
                    frame_ns.push(ns as f64);
                }
            }
        }
        let memo = self.graph.memo_stats();
        let memo_after = memo.unwrap_or_default();
        if traced && memo.is_some() {
            // Surface the lazy memo in the RunReport (ISSUE 8 satellite):
            // counter deltas for this level plus the live resident gauge.
            trace::counter("wfst.memo.hits", memo_after.hits - memo_before.hits);
            trace::counter("wfst.memo.misses", memo_after.misses - memo_before.misses);
            trace::counter(
                "wfst.memo.evictions",
                memo_after.evictions - memo_before.evictions,
            );
            trace::gauge("wfst.memo.resident_states", memo_after.resident as f64);
        }
        let utts = self.test_set.len() as f64;
        let pct = trace::exact_percentile;
        Ok(LevelReport {
            label: label.to_string(),
            policy: kind.label().to_string(),
            structure: PruneStructure::Unstructured.label(),
            precision: Precision::F32.label().to_string(),
            sparsity,
            mean_confidence: confidence / frames as f64,
            frame_accuracy: correct as f64 / frames as f64,
            wer_percent: wer.percent(),
            mean_hypotheses: hypotheses / utts,
            hyps_p50: pct(&arcs_per_frame, 0.50),
            hyps_p95: pct(&arcs_per_frame, 0.95),
            hyps_p99: pct(&arcs_per_frame, 0.99),
            frame_ns_p50: pct(&frame_ns, 0.50),
            frame_ns_p95: pct(&frame_ns, 0.95),
            frame_ns_p99: pct(&frame_ns, 0.99),
            mean_best_cost: best_cost / utts,
            evictions,
            overflows,
            mean_table_occupancy: occupancy as f64 / frames as f64,
            table_reads,
            table_writes,
            memo_hits: memo_after.hits - memo_before.hits,
            memo_misses: memo_after.misses - memo_before.misses,
            memo_evictions: memo_after.evictions - memo_before.evictions,
            memo_peak_resident: memo_after.peak_resident,
        })
    }

    /// Prune the dense model to `target` global sparsity, masked-retrain,
    /// and return the CSR-backed scorer plus its achieved sparsity.
    pub fn prune_to(&self, target: f64) -> Result<(PrunedMlp, f64), Error> {
        self.prune_to_structured(target, PruneStructure::Unstructured)
    }

    /// [`Pipeline::prune_to`] under an explicit [`PruneStructure`]: block
    /// structures prune whole serving tiles and come back BSR-served; the
    /// masked-retraining loop re-projects onto the structured support, so
    /// retrained weights stay tile-aligned.
    pub fn prune_to_structured(
        &self,
        target: f64,
        structure: PruneStructure,
    ) -> Result<(PrunedMlp, f64), Error> {
        self.prune_with_retrain(target, structure, self.config.retrain_epochs)
    }

    /// [`Pipeline::prune_to_structured`] with an explicit masked-retraining
    /// budget instead of the configured one. Zero epochs exports the raw
    /// prune-and-ship artifact ([`crate::ServableSpec::with_retrain`]).
    pub(crate) fn prune_with_retrain(
        &self,
        target: f64,
        structure: PruneStructure,
        retrain_epochs: usize,
    ) -> Result<(PrunedMlp, f64), Error> {
        let (model, result) = self.prune_model_with_retrain(target, structure, retrain_epochs)?;
        let pruned = PrunedMlp::from_prune_result_structured(&model, &result, structure);
        Ok((pruned, result.sparsity))
    }

    /// The prune + masked-retrain core, returning the *masked dense* model
    /// alongside the prune result instead of compressing it straight to a
    /// sparse scorer — int8 quantization (ISSUE 10) reads the masked dense
    /// weights, so both the sparse and the quantized exports build from
    /// this one artifact and stay weight-identical.
    pub(crate) fn prune_model_with_retrain(
        &self,
        target: f64,
        structure: PruneStructure,
        retrain_epochs: usize,
    ) -> Result<(Mlp, ModelPruneResult), Error> {
        let mut model = self.model.clone();
        let result = {
            let _s = trace::span!("prune");
            let result = prune_mlp_to_sparsity_structured(&model, target, 0.005, structure);
            result.apply(&mut model);
            result
        };
        if retrain_epochs > 0 {
            let _retrain_span = trace::span!("retrain");
            let (features, labels) = {
                // Retrain on a fresh sample of the same task (the paper
                // retrains on the training distribution).
                let mut rng = Rng::new(self.config.seed ^ 0x9E37);
                let train = self
                    .corpus
                    .sample_set(self.config.train_utterances, &mut rng);
                training_set(&train)
            };
            let mut rng = Rng::new(self.config.seed ^ 0x517A);
            // Retrain gently: a fraction of the initial rate recovers WER on
            // the surviving support without re-solving the task from scratch
            // (which would also restore the confidence the paper shows
            // staying collapsed).
            let sgd = SgdConfig {
                learning_rate: self.config.sgd.learning_rate * 0.25,
                ..self.config.sgd
            };
            let mut trainer = Trainer::new(sgd, &model);
            for _ in 0..retrain_epochs {
                trainer.train_epoch(&mut model, &features, &labels, &mut rng, |m| {
                    result.apply(m)
                });
                trainer.end_epoch();
            }
        }
        Ok((model, result))
    }

    /// Features for activation-scale calibration (ISSUE 10): a small fixed
    /// seeded sample of the training distribution, independent of the
    /// train/test draws so quantization never peeks at held-out data. Same
    /// config ⇒ bit-identical features ⇒ bit-identical scales.
    fn calibration_features(&self) -> Matrix {
        const CALIB_UTTERANCES: usize = 8;
        let mut rng = Rng::new(self.config.seed ^ 0xCA1B);
        let sample = self
            .corpus
            .sample_set(CALIB_UTTERANCES.min(self.config.train_utterances), &mut rng);
        let (features, _) = training_set(&sample);
        features
    }

    /// Quantize the dense model to int8 (ISSUE 10): calibrate activation
    /// scales on the training distribution, then store every affine layer
    /// as packed dense i8.
    pub fn quantize_dense(&self) -> Result<QuantizedMlp, Error> {
        let _s = trace::span!("quantize");
        let calib = calibrate_mlp(&self.model, &self.calibration_features());
        QuantizedMlp::quantize(&self.model, &calib, PruneStructure::Unstructured)
    }

    /// Prune to `target` under `structure` (with masked retraining), then
    /// quantize the masked dense model to int8 — tile structures come back
    /// served from quantized BSR, everything else from packed dense i8.
    /// Calibration runs on the *pruned* model, so activation scales match
    /// the activations int8 serving will actually see.
    pub fn quantize_pruned(
        &self,
        target: f64,
        structure: PruneStructure,
        retrain_epochs: usize,
    ) -> Result<(QuantizedMlp, f64), Error> {
        let (model, result) = self.prune_model_with_retrain(target, structure, retrain_epochs)?;
        let _s = trace::span!("quantize");
        let calib = calibrate_mlp(&model, &self.calibration_features());
        let quantized = QuantizedMlp::quantize(&model, &calib, structure)?;
        Ok((quantized, result.sparsity))
    }

    /// The one-call study: dense evaluation, then every configured pruning
    /// level through the identical decode path. With a block
    /// [`PipelineConfig::structure`] configured, each level additionally
    /// gets a structured (BSR-served) row at the same target, so the
    /// structured-vs-unstructured WER gap is read off the report directly.
    pub fn run(&self) -> Result<PipelineReport, Error> {
        let quantized = self.config.precision == Precision::Int8;
        let mut levels = vec![self.evaluate_scorer("dense", 0.0, &self.model)?];
        if quantized {
            let q = self.quantize_dense()?;
            let mut row = self.evaluate_scorer("dense", 0.0, &q)?;
            row.precision = Precision::Int8.label().to_string();
            levels.push(row);
        }
        for &target in &self.config.prune_levels {
            let (pruned, sparsity) = self.prune_to(target)?;
            let label = format!("{:.0}%", target * 100.0);
            levels.push(self.evaluate_scorer(&label, sparsity, &pruned)?);
            if self.config.structure != PruneStructure::Unstructured {
                let (pruned, sparsity) = self.prune_to_structured(target, self.config.structure)?;
                let mut row = self.evaluate_scorer(&label, sparsity, &pruned)?;
                row.structure = self.config.structure.label();
                levels.push(row);
            }
            if quantized {
                // Quantize on the configured structure, so the int8 row is
                // the direct precision ablation of the structure row above
                // it (same masked weights, same sparsity).
                let (q, sparsity) = self.quantize_pruned(
                    target,
                    self.config.structure,
                    self.config.retrain_epochs,
                )?;
                let mut row = self.evaluate_scorer(&label, sparsity, &q)?;
                row.structure = self.config.structure.label();
                row.precision = Precision::Int8.label().to_string();
                levels.push(row);
            }
        }
        Ok(PipelineReport {
            levels,
            train_frames: self.train_frames,
            test_frames: self.test_set.iter().map(|u| u.frames.len()).sum(),
            graph_kind: self.graph.kind().label().to_string(),
            graph_states: self.graph.num_states(),
            graph_arcs: self.graph.num_arcs(),
            model_params: self.model.num_params(),
            final_train_loss: self.final_train_loss,
            final_train_accuracy: self.final_train_accuracy,
        })
    }

    /// The traced study (ISSUE 4 tentpole): build + run the whole pipeline
    /// with `recorder` installed, so every stage lands in a span ("corpus",
    /// "graph", "train" / "train.epoch", "prune", "retrain",
    /// "decode.{label}"), the decoder emits per-frame latency/effort
    /// histograms, and the pruning policies export their storage/energy
    /// counters. Returns the built pipeline, the usual [`PipelineReport`],
    /// and the assembled [`trace::RunReport`] (name + seed + config + the
    /// recorder's aggregated [`trace::MetricsSnapshot`]).
    ///
    /// Pass a [`trace::MemoryRecorder`] for the report alone or a
    /// [`trace::JsonlRecorder`] to also stream every event to disk; with a
    /// [`trace::NullRecorder`] this is `build` + `run` with an empty
    /// metrics section.
    pub fn run_traced(
        config: PipelineConfig,
        name: &str,
        recorder: Rc<dyn trace::Recorder>,
    ) -> Result<(Self, PipelineReport, trace::RunReport), Error> {
        let seed = config.seed;
        let config_json = config.to_json();
        let (pipeline, report) = trace::with_recorder(recorder.clone(), || {
            let pipeline = Self::build(config)?;
            let report = pipeline.run()?;
            Ok::<_, Error>((pipeline, report))
        })?;
        let metrics = recorder.snapshot().unwrap_or_default();
        let run = trace::RunReport::new(name, seed, config_json, metrics);
        Ok((pipeline, report, run))
    }

    /// Per-level × per-policy sweep: prune once per level, then decode the
    /// same pruned scorer under every policy in `policies` (so the columns
    /// differ only in hypothesis admission, never in the acoustic model).
    /// With a block [`PipelineConfig::structure`], each pruned level gains a
    /// structured row — the equal-sparsity WER comparison across every
    /// policy column at once.
    pub fn run_policy_grid(&self, policies: &[PolicyKind]) -> Result<PolicyGridReport, Error> {
        let unstructured = PruneStructure::Unstructured;
        let quantized = self.config.precision == Precision::Int8;
        let mut levels = vec![self.grid_level(
            "dense",
            unstructured,
            Precision::F32,
            0.0,
            &self.model,
            policies,
        )?];
        if quantized {
            let q = self.quantize_dense()?;
            levels.push(self.grid_level(
                "dense",
                unstructured,
                Precision::Int8,
                0.0,
                &q,
                policies,
            )?);
        }
        for &target in &self.config.prune_levels {
            let (pruned, sparsity) = self.prune_to(target)?;
            let label = format!("{:.0}%", target * 100.0);
            levels.push(self.grid_level(
                &label,
                unstructured,
                Precision::F32,
                sparsity,
                &pruned,
                policies,
            )?);
            if self.config.structure != unstructured {
                let (pruned, sparsity) = self.prune_to_structured(target, self.config.structure)?;
                levels.push(self.grid_level(
                    &label,
                    self.config.structure,
                    Precision::F32,
                    sparsity,
                    &pruned,
                    policies,
                )?);
            }
            if quantized {
                // Equal-sparsity precision ablation: same masked weights as
                // the f32 row on the configured structure, stored int8.
                let (q, sparsity) = self.quantize_pruned(
                    target,
                    self.config.structure,
                    self.config.retrain_epochs,
                )?;
                levels.push(self.grid_level(
                    &label,
                    self.config.structure,
                    Precision::Int8,
                    sparsity,
                    &q,
                    policies,
                )?);
            }
        }
        Ok(PolicyGridReport {
            policies: policies.iter().map(|p| p.label().to_string()).collect(),
            levels,
        })
    }

    fn grid_level(
        &self,
        label: &str,
        structure: PruneStructure,
        precision: Precision,
        sparsity: f64,
        scorer: &dyn FrameScorer,
        policies: &[PolicyKind],
    ) -> Result<PolicyGridLevel, Error> {
        let per_policy = policies
            .iter()
            .map(|kind| {
                let mut row = self.evaluate_scorer_with_policy(label, sparsity, scorer, kind)?;
                row.structure = structure.label();
                row.precision = precision.label().to_string();
                Ok::<_, Error>(row)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PolicyGridLevel {
            label: label.to_string(),
            structure: structure.label(),
            precision: precision.label().to_string(),
            sparsity,
            per_policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = PipelineConfig::smoke().with_model_shape(65, 4, 2);
        assert!(matches!(
            Pipeline::build(bad).unwrap_err(),
            Error::Config { .. }
        ));
        let bad = PipelineConfig::smoke().with_prune_levels(vec![1.5]);
        assert!(matches!(
            Pipeline::build(bad).unwrap_err(),
            Error::Config { .. }
        ));
    }

    #[test]
    fn structured_rows_ride_along_when_configured() {
        // Shape-only check (training quality is irrelevant): a block
        // structure adds one BSR-served row per pruning level, at the same
        // label, distinguished by the structure field.
        let config = PipelineConfig::smoke()
            .with_training(1, 0)
            .with_structure(PruneStructure::tile());
        let pipeline = Pipeline::build(config).unwrap();
        let report = pipeline.run().unwrap();
        assert_eq!(report.levels.len(), 3);
        assert_eq!(report.levels[0].structure, "unstructured");
        assert_eq!(report.levels[1].structure, "unstructured");
        assert_eq!(report.levels[2].structure, "b8x8");
        assert_eq!(report.levels[1].label, report.levels[2].label);
        // Equal-sparsity comparison: the structured row lands near the same
        // target (block granularity costs a little precision).
        assert!((report.levels[2].sparsity - 0.9).abs() < 0.05);
        let grid = pipeline.run_policy_grid(&[PolicyKind::Beam]).unwrap();
        assert_eq!(grid.levels.len(), 3);
        assert_eq!(grid.levels[2].structure, "b8x8");
        assert_eq!(grid.levels[2].per_policy[0].structure, "b8x8");
    }

    #[test]
    fn quantized_rows_ride_along_when_configured() {
        // Shape-only check: Int8 precision adds a quantized dense row and
        // one quantized row per pruning level, on the configured structure,
        // distinguished by the precision field (ISSUE 10).
        let config = PipelineConfig::smoke()
            .with_training(1, 0)
            .with_structure(PruneStructure::tile())
            .with_precision(Precision::Int8);
        let pipeline = Pipeline::build(config).unwrap();
        let report = pipeline.run().unwrap();
        // dense f32, dense int8, 90% unstructured f32, 90% b8x8 f32,
        // 90% b8x8 int8.
        assert_eq!(report.levels.len(), 5);
        let precisions: Vec<&str> = report.levels.iter().map(|l| l.precision.as_str()).collect();
        assert_eq!(precisions, ["f32", "int8", "f32", "f32", "int8"]);
        assert_eq!(report.levels[1].label, "dense");
        assert_eq!(report.levels[4].structure, "b8x8");
        assert_eq!(report.levels[4].label, report.levels[3].label);
        // Equal-sparsity ablation: the int8 row matches the f32 b8x8 row's
        // achieved sparsity exactly (same masked weights).
        assert_eq!(report.levels[4].sparsity, report.levels[3].sparsity);
        let grid = pipeline.run_policy_grid(&[PolicyKind::Beam]).unwrap();
        assert_eq!(grid.levels.len(), 5);
        assert_eq!(grid.levels[1].precision, "int8");
        assert_eq!(grid.levels[4].precision, "int8");
        assert_eq!(grid.levels[4].per_policy[0].precision, "int8");
    }

    #[test]
    fn smoke_pipeline_runs_end_to_end() {
        let pipeline = Pipeline::build(PipelineConfig::smoke()).unwrap();
        let report = pipeline.run().unwrap();
        assert_eq!(report.levels.len(), 2);
        let dense = report.dense();
        let pruned = &report.pruned()[0];
        assert_eq!(dense.label, "dense");
        assert_eq!(pruned.label, "90%");
        assert!((pruned.sparsity - 0.9).abs() < 0.01);
        // Metrics are in range and finite.
        for level in &report.levels {
            assert!((0.0..=1.0).contains(&level.mean_confidence), "{level:?}");
            assert!((0.0..=1.0).contains(&level.frame_accuracy), "{level:?}");
            assert!(level.wer_percent.is_finite(), "{level:?}");
            assert!(level.mean_hypotheses > 0.0, "{level:?}");
        }
        // The paper's core observation, visible even at smoke scale:
        // pruning without full recovery drops confidence.
        assert!(
            pruned.mean_confidence < dense.mean_confidence,
            "confidence did not drop: dense {} vs 90% {}",
            dense.mean_confidence,
            pruned.mean_confidence
        );
        assert!(report.train_frames > 0 && report.test_frames > 0);
        assert!(report.graph_states > 0 && report.graph_arcs > 0);
    }
}
