//! [`ModelBundle`] — the servable artifact a finished [`Pipeline`] exports
//! (ISSUE 5).
//!
//! Offline, the pipeline owns its model and graph and evaluates them over
//! a held-out set. A serving engine needs the same pieces in shareable
//! form: N concurrent sessions walk one decoding graph, and one scorer
//! batches frames across all of them, from whatever worker thread the
//! scheduler runs on. The bundle is exactly that packaging — `Arc`s around
//! the graph and the [`FrameScorer`] (`Send + Sync`, shared without
//! copies), plus the decode configuration ([`BeamConfig`] + [`PolicyKind`])
//! every session's fresh per-utterance policy is built from.

use crate::pipeline::Pipeline;
use crate::PolicyKind;
use darkside_decoder::{BeamConfig, PruningPolicy};
use darkside_error::Error;
use darkside_nn::{FrameScorer, Precision};
use darkside_pruning::PruneStructure;
use darkside_wfst::{GraphKind, SharedGraph};
use std::sync::Arc;

/// Everything a serving engine needs from a trained (and optionally
/// pruned) pipeline, shareable across scheduler worker threads.
#[derive(Clone)]
pub struct ModelBundle {
    /// The decoding graph every session's search walks — eager or lazily
    /// composed behind the one [`darkside_wfst::GraphSource`] handle
    /// (ISSUE 8).
    pub graph: SharedGraph,
    /// Which representation `graph` is; stamped into session checkpoints
    /// so a blob never restores against the wrong graph kind.
    pub graph_kind: GraphKind,
    /// The acoustic model; one `score_frames` call serves a whole
    /// cross-session micro-batch.
    pub scorer: Arc<dyn FrameScorer + Send + Sync>,
    /// Beam window + acoustic scale for cost conversion and thresholds.
    pub beam: BeamConfig,
    /// Which pruning policy each session decodes under.
    pub policy: PolicyKind,
    /// `"dense"` or the sparsity percentage, e.g. `"90%"` (report label).
    pub label: String,
    /// Sparsity-structure label of the scorer ("unstructured", "b8x8", …;
    /// dense bundles report "unstructured").
    pub structure: String,
    /// Scoring precision of the scorer (ISSUE 10); stamped into session
    /// checkpoints (wire v3) so a blob never restores against a scorer of
    /// a different precision — quantized and f32 posteriors differ, so
    /// mixing them mid-utterance would silently corrupt the decode.
    pub precision: Precision,
    /// Achieved global sparsity of the scorer (0 for dense).
    pub sparsity: f64,
    /// Mean hypotheses/frame of the **dense** model under this bundle's
    /// beam ([`Pipeline::dense_hyps_baseline`]) — what the ISSUE 9
    /// per-session detector multiplies to get its workload threshold. 0
    /// disables the workload check (no probe data).
    pub dense_hyps_baseline: f64,
}

impl ModelBundle {
    /// Build a fresh per-utterance policy for one session.
    pub fn build_policy(&self) -> Result<Box<dyn PruningPolicy + Send>, Error> {
        self.policy.build(&self.beam)
    }

    /// A copy of this bundle decoding under a different policy/beam (the
    /// serving bench sweeps policies over one trained model; admission
    /// control degrades sessions the same way).
    pub fn with_policy(&self, policy: PolicyKind, beam: BeamConfig) -> Self {
        Self {
            policy,
            beam,
            ..self.clone()
        }
    }
}

/// What to export from a [`Pipeline`] as a [`ModelBundle`] — the single
/// servable-export surface (ISSUE 7 API redesign, replacing the old
/// `servable_dense` / `servable_pruned` / `servable_pruned_structured`
/// trio). Start from [`ServableSpec::dense`] or [`ServableSpec::pruned`]
/// and override only what differs from the pipeline's own configuration:
///
/// ```ignore
/// let bundle = pipeline.servable(
///     ServableSpec::pruned(0.9)
///         .with_structure(PruneStructure::Block { r: 8, c: 8 })
///         .with_policy(PolicyKind::Beam),
/// )?;
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ServableSpec {
    /// Target global sparsity; 0 exports the dense model unchanged.
    sparsity: f64,
    /// Pruning structure; `None` defers to the pipeline's configured one.
    structure: Option<PruneStructure>,
    /// Serving-time pruning policy; `None` defers to the pipeline's.
    policy: Option<PolicyKind>,
    /// Serving-time beam; `None` defers to the pipeline's.
    beam: Option<BeamConfig>,
    /// Masked-retraining epochs after the prune; `None` defers to the
    /// pipeline's configured budget.
    retrain: Option<usize>,
    /// Scoring precision of the exported scorer (ISSUE 10).
    precision: Precision,
}

impl ServableSpec {
    /// Serve the dense model as trained.
    pub fn dense() -> Self {
        Self {
            sparsity: 0.0,
            structure: None,
            policy: None,
            beam: None,
            retrain: None,
            precision: Precision::F32,
        }
    }

    /// Prune to `target` global sparsity (with the pipeline's configured
    /// masked retraining) before export — the "compressed model in
    /// production" the paper's tail-latency story is about. Validated in
    /// [`Pipeline::servable`]: must lie in `(0, 1)`.
    pub fn pruned(target: f64) -> Self {
        Self {
            sparsity: target,
            ..Self::dense()
        }
    }

    /// Prune under an explicit structure instead of the pipeline's
    /// configured one (the serving bench exports unstructured and tiled
    /// bundles from one pipeline). Dense specs reject structure overrides.
    pub fn with_structure(mut self, structure: PruneStructure) -> Self {
        self.structure = Some(structure);
        self
    }

    /// Export the scorer at `precision` (ISSUE 10): [`Precision::Int8`]
    /// calibrates activation scales on the pipeline's training distribution
    /// and serves int8 weights — quantized BSR when the effective structure
    /// is the 8×8 serving tile, packed dense i8 otherwise (including dense
    /// exports).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Decode sessions under `policy` instead of the pipeline's configured
    /// one.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Decode sessions under `beam` instead of the pipeline's configured
    /// one.
    pub fn with_beam(mut self, beam: BeamConfig) -> Self {
        self.beam = Some(beam);
        self
    }

    /// Masked-retrain for `epochs` after the prune instead of the
    /// pipeline's configured budget. `with_retrain(0)` exports the raw
    /// prune-and-ship artifact — the confidence-collapsed model the
    /// paper's dark side is about, which the serving bench's detector
    /// scenario serves deliberately. Dense specs reject the override
    /// (there is nothing to retrain).
    pub fn with_retrain(mut self, epochs: usize) -> Self {
        self.retrain = Some(epochs);
        self
    }
}

impl Pipeline {
    /// Export a servable [`ModelBundle`] per `spec` (shares the decoding
    /// graph; dense export clones the model once into the `Arc`, pruned
    /// export runs prune + masked retraining). Fails fast — bad sparsity
    /// targets, dense+structure contradictions, and unbuildable policy
    /// geometry all error here, not on a serving thread mid-session.
    pub fn servable(&self, spec: ServableSpec) -> Result<ModelBundle, Error> {
        let policy = spec.policy.unwrap_or(self.config.policy);
        let beam = spec.beam.unwrap_or(self.config.beam);
        // Surface bad policy geometry now (the bundle builds one policy per
        // session later, on scheduler threads).
        policy.build(&beam)?;

        let (scorer, label, structure, sparsity): (Arc<dyn FrameScorer + Send + Sync>, _, _, _) =
            if spec.sparsity == 0.0 {
                if let Some(structure) = spec.structure {
                    return Err(Error::config(
                        "ServableSpec",
                        format!(
                            "dense export cannot carry a pruning structure ({})",
                            structure.label()
                        ),
                    ));
                }
                if let Some(epochs) = spec.retrain {
                    return Err(Error::config(
                        "ServableSpec",
                        format!("dense export cannot carry a retrain override ({epochs} epochs)"),
                    ));
                }
                let scorer: Arc<dyn FrameScorer + Send + Sync> = match spec.precision {
                    Precision::F32 => Arc::new(self.model.clone()),
                    Precision::Int8 => Arc::new(self.quantize_dense()?),
                };
                (
                    scorer,
                    "dense".to_string(),
                    PruneStructure::Unstructured.label(),
                    0.0,
                )
            } else {
                if !(spec.sparsity > 0.0 && spec.sparsity < 1.0) {
                    return Err(Error::config(
                        "ServableSpec",
                        format!("sparsity target {} outside (0, 1)", spec.sparsity),
                    ));
                }
                let structure = spec.structure.unwrap_or(self.config.structure);
                let retrain = spec.retrain.unwrap_or(self.config.retrain_epochs);
                let (scorer, achieved): (Arc<dyn FrameScorer + Send + Sync>, f64) =
                    match spec.precision {
                        Precision::F32 => {
                            let (pruned, achieved) =
                                self.prune_with_retrain(spec.sparsity, structure, retrain)?;
                            (Arc::new(pruned), achieved)
                        }
                        Precision::Int8 => {
                            let (quantized, achieved) =
                                self.quantize_pruned(spec.sparsity, structure, retrain)?;
                            (Arc::new(quantized), achieved)
                        }
                    };
                (
                    scorer,
                    format!("{:.0}%", spec.sparsity * 100.0),
                    structure.label(),
                    achieved,
                )
            };
        Ok(ModelBundle {
            graph: self.graph.source(),
            graph_kind: self.graph.kind(),
            scorer,
            beam,
            policy,
            label,
            structure,
            precision: spec.precision,
            sparsity,
            dense_hyps_baseline: self.dense_hyps_baseline(&beam)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use darkside_nn::Frame;

    #[test]
    fn bundles_are_shareable_and_score_like_the_pipeline() {
        // Model quality is irrelevant here: skip training epochs entirely
        // and check the packaging (Arc sharing, Send + Sync, policy build).
        let config = PipelineConfig::smoke().with_training(0, 0);
        let pipeline = Pipeline::build(config).unwrap();
        let dense = pipeline.servable(ServableSpec::dense()).unwrap();
        let pruned = pipeline.servable(ServableSpec::pruned(0.9)).unwrap();
        assert_eq!(dense.label, "dense");
        assert_eq!(pruned.label, "90%");
        assert!((pruned.sparsity - 0.9).abs() < 0.01);
        assert_eq!(dense.scorer.input_dim(), pruned.scorer.input_dim());
        // Both bundles carry the same dense workload baseline (probed once
        // per beam geometry, memoized across exports).
        assert!(dense.dense_hyps_baseline > 0.0);
        assert_eq!(dense.dense_hyps_baseline, pruned.dense_hyps_baseline);

        fn is_send_sync<T: Send + Sync>(_: &T) {}
        is_send_sync(&dense.graph);
        is_send_sync(&dense.scorer);

        // Scoring through the bundle matches the pipeline's own model.
        let frame = Frame(vec![0.1; dense.scorer.input_dim()]);
        let via_bundle = dense.scorer.score_frames(std::slice::from_ref(&frame));
        let via_model =
            darkside_nn::FrameScorer::score_frames(&pipeline.model, std::slice::from_ref(&frame));
        assert_eq!(via_bundle.probs.row(0), via_model.probs.row(0));

        let mut policy = dense.build_policy().unwrap();
        assert_eq!(policy.name(), "beam");
        let _ = policy.end_frame();
    }

    #[test]
    fn servable_specs_fail_fast_on_contradictions() {
        let pipeline = Pipeline::build(PipelineConfig::smoke().with_training(0, 0)).unwrap();
        // Dense + structure is a contradiction, not a silent ignore.
        assert!(pipeline
            .servable(ServableSpec::dense().with_structure(PruneStructure::Block { r: 8, c: 8 }))
            .is_err());
        // Sparsity targets outside (0, 1) are rejected.
        for bad in [-0.5, 1.0, 1.5, f64::NAN] {
            assert!(
                pipeline.servable(ServableSpec::pruned(bad)).is_err(),
                "target {bad} should be rejected"
            );
        }
        // Unbuildable policy geometry errors at export, not per session.
        assert!(pipeline
            .servable(ServableSpec::dense().with_policy(PolicyKind::LooseNBest(
                darkside_viterbi_accel::NBestTableConfig {
                    entries: 10,
                    ways: 4
                }
            )))
            .is_err());
        // Structure overrides flow through to the exported bundle.
        let tiled = pipeline
            .servable(
                ServableSpec::pruned(0.5).with_structure(PruneStructure::Block { r: 8, c: 8 }),
            )
            .unwrap();
        assert_eq!(tiled.structure, "b8x8");
        assert_eq!(tiled.label, "50%");
    }
}
