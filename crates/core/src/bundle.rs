//! [`ModelBundle`] — the servable artifact a finished [`Pipeline`] exports
//! (ISSUE 5).
//!
//! Offline, the pipeline owns its model and graph and evaluates them over
//! a held-out set. A serving engine needs the same pieces in shareable
//! form: N concurrent sessions walk one decoding graph, and one scorer
//! batches frames across all of them, from whatever worker thread the
//! scheduler runs on. The bundle is exactly that packaging — `Arc`s around
//! the graph and the [`FrameScorer`] (`Send + Sync`, shared without
//! copies), plus the decode configuration ([`BeamConfig`] + [`PolicyKind`])
//! every session's fresh per-utterance policy is built from.

use crate::pipeline::Pipeline;
use crate::PolicyKind;
use darkside_decoder::{BeamConfig, PruningPolicy};
use darkside_error::Error;
use darkside_nn::FrameScorer;
use darkside_pruning::PruneStructure;
use darkside_wfst::Fst;
use std::sync::Arc;

/// Everything a serving engine needs from a trained (and optionally
/// pruned) pipeline, shareable across scheduler worker threads.
#[derive(Clone)]
pub struct ModelBundle {
    /// The composed decoding graph every session's search walks.
    pub graph: Arc<Fst>,
    /// The acoustic model; one `score_frames` call serves a whole
    /// cross-session micro-batch.
    pub scorer: Arc<dyn FrameScorer + Send + Sync>,
    /// Beam window + acoustic scale for cost conversion and thresholds.
    pub beam: BeamConfig,
    /// Which pruning policy each session decodes under.
    pub policy: PolicyKind,
    /// `"dense"` or the sparsity percentage, e.g. `"90%"` (report label).
    pub label: String,
    /// Sparsity-structure label of the scorer ("unstructured", "b8x8", …;
    /// dense bundles report "unstructured").
    pub structure: String,
    /// Achieved global sparsity of the scorer (0 for dense).
    pub sparsity: f64,
}

impl ModelBundle {
    /// Build a fresh per-utterance policy for one session.
    pub fn build_policy(&self) -> Result<Box<dyn PruningPolicy + Send>, Error> {
        self.policy.build(&self.beam)
    }

    /// A copy of this bundle decoding under a different policy/beam (the
    /// serving bench sweeps policies over one trained model; admission
    /// control degrades sessions the same way).
    pub fn with_policy(&self, policy: PolicyKind, beam: BeamConfig) -> Self {
        Self {
            policy,
            beam,
            ..self.clone()
        }
    }
}

impl Pipeline {
    /// Export the dense model as a servable bundle (shares the decoding
    /// graph, clones the model once into the `Arc`).
    pub fn servable_dense(&self) -> ModelBundle {
        ModelBundle {
            graph: Arc::new(self.graph.clone()),
            scorer: Arc::new(self.model.clone()),
            beam: self.config.beam,
            policy: self.config.policy,
            label: "dense".to_string(),
            structure: PruneStructure::Unstructured.label(),
            sparsity: 0.0,
        }
    }

    /// Prune to `target` global sparsity (with the pipeline's configured
    /// masked retraining) and export the sparse-served scorer as a servable
    /// bundle — the "compressed model in production" the paper's tail
    /// latency story is about. Uses the pipeline's configured
    /// [`PruneStructure`], so a structured config serves BSR end to end.
    pub fn servable_pruned(&self, target: f64) -> Result<ModelBundle, Error> {
        self.servable_pruned_structured(target, self.config.structure)
    }

    /// [`Pipeline::servable_pruned`] under an explicit structure (the
    /// serving bench exports unstructured and tiled bundles from one
    /// pipeline).
    pub fn servable_pruned_structured(
        &self,
        target: f64,
        structure: PruneStructure,
    ) -> Result<ModelBundle, Error> {
        let (pruned, sparsity) = self.prune_to_structured(target, structure)?;
        Ok(ModelBundle {
            graph: Arc::new(self.graph.clone()),
            scorer: Arc::new(pruned),
            beam: self.config.beam,
            policy: self.config.policy,
            label: format!("{:.0}%", target * 100.0),
            structure: structure.label(),
            sparsity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use darkside_nn::Frame;

    #[test]
    fn bundles_are_shareable_and_score_like_the_pipeline() {
        // Model quality is irrelevant here: skip training epochs entirely
        // and check the packaging (Arc sharing, Send + Sync, policy build).
        let config = PipelineConfig::smoke().with_training(0, 0);
        let pipeline = Pipeline::build(config).unwrap();
        let dense = pipeline.servable_dense();
        let pruned = pipeline.servable_pruned(0.9).unwrap();
        assert_eq!(dense.label, "dense");
        assert_eq!(pruned.label, "90%");
        assert!((pruned.sparsity - 0.9).abs() < 0.01);
        assert_eq!(dense.scorer.input_dim(), pruned.scorer.input_dim());

        fn is_send_sync<T: Send + Sync>(_: &T) {}
        is_send_sync(&dense.graph);
        is_send_sync(&dense.scorer);

        // Scoring through the bundle matches the pipeline's own model.
        let frame = Frame(vec![0.1; dense.scorer.input_dim()]);
        let via_bundle = dense.scorer.score_frames(std::slice::from_ref(&frame));
        let via_model =
            darkside_nn::FrameScorer::score_frames(&pipeline.model, std::slice::from_ref(&frame));
        assert_eq!(via_bundle.probs.row(0), via_model.probs.row(0));

        let mut policy = dense.build_policy().unwrap();
        assert_eq!(policy.name(), "beam");
        let _ = policy.end_frame();
    }
}
