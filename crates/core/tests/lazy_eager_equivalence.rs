//! ISSUE 8 satellite: a lazily-composed decoding graph is **bit-for-bit**
//! interchangeable with the eager build — same words, same f32 cost bits,
//! same per-frame effort stats — for all three pruning policies, at two
//! independent corpus seeds, and regardless of the memo budget. The hard
//! case is a cache small enough to evict mid-utterance: re-expansion must
//! reproduce the exact arc slices the first expansion produced, or the
//! search diverges.
//!
//! This is the end-to-end twin of `darkside-wfst`'s structural
//! `lazy_is_byte_identical_to_eager_compose_trim`: that test pins the
//! *graphs* equal, this one pins the *decodes* equal through the whole
//! pipeline (corpus → model → costs → policy search).

use darkside_core::decoder::{acoustic_costs, decode_with_policy, DecodeResult};
use darkside_core::nn::FrameScorer;
use darkside_core::viterbi_accel::{NBestTableConfig, UnfoldHashConfig};
use darkside_core::wfst::{GraphKind, GraphSource};
use darkside_core::{Pipeline, PipelineConfig, PolicyKind};

/// Smoke-sized pipeline at `seed` — untrained (the model's weights are
/// seeded and deterministic, and decode equivalence does not care about
/// model quality, only that both sides score identical costs).
fn base_config(seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::smoke().with_training(0, 0).with_seed(seed);
    config.corpus.seed = seed ^ 0x00C0_FFEE;
    config
}

fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Beam,
        PolicyKind::UnfoldHash(UnfoldHashConfig {
            entries: 8,
            backup_capacity: 4,
        }),
        PolicyKind::LooseNBest(NBestTableConfig {
            entries: 16,
            ways: 4,
        }),
    ]
}

/// Every decode output, bitwise (`frame_ns` excluded: wall-clock timing,
/// populated only under a trace recorder).
fn assert_bit_identical(lazy: &DecodeResult, eager: &DecodeResult, what: &str) {
    assert_eq!(lazy.words, eager.words, "{what}: words");
    assert_eq!(
        lazy.cost.to_bits(),
        eager.cost.to_bits(),
        "{what}: cost bits ({} vs {})",
        lazy.cost,
        eager.cost
    );
    assert_eq!(lazy.reached_final, eager.reached_final, "{what}: final");
    let l = &lazy.stats;
    let e = &eager.stats;
    assert_eq!(l.active_tokens, e.active_tokens, "{what}: active_tokens");
    assert_eq!(l.arcs_expanded, e.arcs_expanded, "{what}: arcs_expanded");
    assert_eq!(
        l.best_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        e.best_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        "{what}: best_cost bits"
    );
    assert_eq!(l.table_occupancy, e.table_occupancy, "{what}: occupancy");
    assert_eq!(l.evictions, e.evictions, "{what}: evictions");
    assert_eq!(l.overflows, e.overflows, "{what}: overflows");
    assert_eq!(l.table_reads, e.table_reads, "{what}: table_reads");
    assert_eq!(l.table_writes, e.table_writes, "{what}: table_writes");
}

fn equivalence_case(seed: u64, memo_states: usize, expect_evictions: bool) {
    let eager = Pipeline::build(base_config(seed)).unwrap();
    let lazy = Pipeline::build(base_config(seed).with_lazy_graph(memo_states)).unwrap();
    assert_eq!(eager.graph.kind(), GraphKind::Eager);
    assert_eq!(lazy.graph.kind(), GraphKind::Lazy);
    // Same seed → same corpus, same model, and (the wfst-level guarantee)
    // the same graph under two representations.
    assert_eq!(eager.graph.num_states(), lazy.graph.num_states());
    assert_eq!(eager.graph.num_arcs(), lazy.graph.num_arcs());
    assert_eq!(eager.test_set().len(), lazy.test_set().len());

    let beam = base_config(seed).beam;
    for kind in policies() {
        for (u, utt) in eager.test_set().iter().enumerate() {
            let what = format!("seed {seed:#x} memo {memo_states} policy {} utt {u}", {
                kind.label()
            });
            let costs = acoustic_costs(&eager.model.score_frames(&utt.frames), &beam);
            let mut eager_policy = kind.build(&beam).unwrap();
            let mut lazy_policy = kind.build(&beam).unwrap();
            let via_eager = decode_with_policy(&eager.graph, &costs, eager_policy.as_mut());
            let via_lazy = decode_with_policy(&lazy.graph, &costs, lazy_policy.as_mut());
            match (via_lazy, via_eager) {
                (Ok(l), Ok(e)) => assert_bit_identical(&l, &e, &what),
                (Err(_), Err(_)) => {}
                (l, e) => panic!("{what}: lazy ok={} vs eager ok={}", l.is_ok(), e.is_ok()),
            }
        }
    }

    let memo = lazy.graph.memo_stats().expect("lazy graph exposes stats");
    assert!(memo.misses > 0, "decode never expanded a state lazily");
    assert!(
        memo.resident <= memo.capacity && memo.peak_resident <= memo.capacity,
        "memo exceeded its budget: {memo:?}"
    );
    if expect_evictions {
        assert!(
            memo.evictions > 0,
            "memo of {memo_states} states never evicted — the hard \
             re-expansion path went untested: {memo:?}"
        );
    }
}

#[test]
fn lazy_decodes_match_eager_bit_for_bit_seed_a() {
    // Memo far larger than the graph: every state expands exactly once.
    equivalence_case(0x1A2B_0001, 1 << 20, false);
}

#[test]
fn lazy_decodes_match_eager_bit_for_bit_seed_b() {
    equivalence_case(0x1A2B_0002, 1 << 20, false);
}

#[test]
fn lazy_decodes_survive_mid_utterance_evictions_seed_a() {
    // A deliberately cramped memo: states are evicted and re-expanded
    // while the token set still references them.
    equivalence_case(0x1A2B_0001, 8, true);
}

#[test]
fn lazy_decodes_survive_mid_utterance_evictions_seed_b() {
    equivalence_case(0x1A2B_0002, 8, true);
}
