//! Schema-shaped validation of the ISSUE 4 tentpole: a traced
//! `Pipeline::run` under a `JsonlRecorder` must produce a `RunReport`
//! containing spans for every stage (corpus, graph, train, prune, retrain,
//! decode-per-level), per-frame decode histograms, and pruning-policy
//! metrics — plus an event stream on disk.

use darkside_core::trace::{self, Json, JsonlRecorder, MemoryRecorder};
use darkside_core::viterbi_accel::NBestTableConfig;
use darkside_core::{Pipeline, PipelineConfig, PolicyKind};
use std::rc::Rc;

/// A deliberately tiny traced run: the smoke corpus shrunk further, one
/// retrain epoch (so the "retrain" span exists) and the N-best policy (so
/// policy/energy metrics exist).
fn tiny_traced_config() -> PipelineConfig {
    PipelineConfig::smoke()
        .with_training(2, 1)
        .with_corpus_sizes(6, 3)
        .with_policy(PolicyKind::LooseNBest(NBestTableConfig::paper()))
        .with_prune_levels(vec![0.8])
}

#[test]
fn traced_run_produces_a_schema_shaped_run_report() {
    let dir = std::env::temp_dir().join("darkside_run_report_test");
    std::fs::create_dir_all(&dir).unwrap();
    let events_path = dir.join("events.jsonl");
    let report_path = dir.join("run_report.json");

    let recorder = Rc::new(JsonlRecorder::create(&events_path).unwrap());
    let (_pipeline, report, run) =
        Pipeline::run_traced(tiny_traced_config(), "run_report_test", recorder.clone()).unwrap();
    recorder.finish().unwrap();
    assert!(
        !trace::active(),
        "recorder must be uninstalled after the run"
    );

    // Identity carried through.
    assert_eq!(run.name, "run_report_test");
    assert_eq!(run.seed, 0x5310);

    // Spans for every stage, with sane counts: one corpus/graph/train,
    // one prune+retrain per level, one decode per level (dense + 80%).
    for stage in ["corpus", "graph", "train", "prune", "retrain"] {
        assert_eq!(
            run.metrics.spans[stage].count, 1,
            "stage span {stage:?} missing or repeated"
        );
    }
    assert_eq!(run.metrics.spans["train.epoch"].count, 2);
    assert_eq!(run.metrics.spans["decode.dense"].count, 1);
    assert_eq!(run.metrics.spans["decode.80%"].count, 1);
    // Span times nest: epochs fit inside "train".
    assert!(run.metrics.spans["train"].total_ns >= run.metrics.spans["train.epoch"].total_ns);

    // Per-frame decode histograms: global and per-level, one sample per
    // decoded frame.
    let frames = run.metrics.counters["decode.frames"];
    assert!(frames > 0);
    assert_eq!(run.histogram("decode.frame.ns").unwrap().count, frames);
    assert_eq!(run.histogram("decode.frame.arcs").unwrap().count, frames);
    for level in ["dense", "80%"] {
        let h = run
            .histogram(&format!("decode.{level}.nbest.hyps"))
            .unwrap_or_else(|| panic!("missing per-level hypotheses histogram for {level}"));
        assert!(h.count > 0 && h.p50 <= h.p95 && h.p95 <= h.p99);
        let ns = run
            .histogram(&format!("decode.{level}.nbest.frame_ns"))
            .unwrap();
        assert_eq!(ns.count, h.count);
    }

    // Policy storage + energy metrics from the N-best table.
    assert!(run.metrics.counters.contains_key("policy.nbest.evictions"));
    assert!(run.metrics.counters["energy.nbest_table.reads"] > 0);
    assert!(run.metrics.counters["energy.nbest_table.writes"] > 0);
    assert!(run.histogram("energy.nbest_table.pj").unwrap().count > 0);
    assert!(run.histogram("policy.nbest.occupancy").unwrap().count >= frames);

    // Kernel-timing hooks fired.
    assert!(run.metrics.counters["nn.gemm.calls"] > 0);
    assert!(run.metrics.counters["nn.gemm.flops"] > 0);
    assert!(run.metrics.counters["nn.score_frames.frames"] > 0);
    assert!(run.histogram("nn.score_frames.ns").unwrap().count > 0);

    // No unbalanced span closes under the RAII guards.
    assert!(!run.metrics.counters.contains_key("trace.unbalanced_closes"));

    // The report's LevelReports carry the latency percentiles (tracing was
    // active, so they must be populated and ordered).
    for level in &report.levels {
        assert!(level.hyps_p50 > 0.0 && level.hyps_p50 <= level.hyps_p95);
        assert!(level.hyps_p95 <= level.hyps_p99);
        assert!(level.frame_ns_p50 > 0.0 && level.frame_ns_p50 <= level.frame_ns_p99);
    }

    // Rendered JSON is schema-shaped: every top-level section present.
    run.write_json(&report_path).unwrap();
    let text = std::fs::read_to_string(&report_path).unwrap();
    for key in [
        "\"schema_version\":1",
        "\"name\":\"run_report_test\"",
        "\"config\":{",
        "\"spans\":{",
        "\"counters\":{",
        "\"gauges\":{",
        "\"histograms\":{",
        "\"decode.frame.ns\":{\"count\":",
        "\"policy\":\"nbest\"",
    ] {
        assert!(text.contains(key), "missing {key}");
    }

    // And the config section round-trips the knobs we set.
    if let Json::Obj(fields) = run.config.clone() {
        let get = |k: &str| {
            fields
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("retrain_epochs"), Some(Json::U64(1)));
        assert_eq!(get("policy"), Some(Json::str("nbest")));
    } else {
        panic!("config is not an object");
    }

    // The JSONL event stream exists and starts with the corpus span.
    let events = std::fs::read_to_string(&events_path).unwrap();
    let first = events.lines().next().unwrap();
    assert!(
        first.contains("\"ev\":\"span_enter\"") && first.contains("\"name\":\"corpus\""),
        "unexpected first event: {first}"
    );
    assert!(events.lines().count() as u64 > frames);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untraced_runs_leave_latency_percentiles_at_zero() {
    // Without a recorder the decoder must never touch the clock: frame_ns
    // stays empty and the report's latency percentiles are zero, while the
    // hypotheses percentiles (plain counters) are still populated.
    let pipeline = Pipeline::build(tiny_traced_config()).unwrap();
    let report = pipeline.run().unwrap();
    for level in &report.levels {
        assert!(level.hyps_p50 > 0.0);
        assert_eq!(level.frame_ns_p50, 0.0);
        assert_eq!(level.frame_ns_p99, 0.0);
    }
}

#[test]
fn run_traced_with_a_memory_recorder_matches_the_untraced_report() {
    // Tracing must be observationally neutral: the same config produces
    // identical WER/confidence/search-effort numbers with and without a
    // recorder installed.
    let untraced = Pipeline::build(tiny_traced_config())
        .unwrap()
        .run()
        .unwrap();
    let (_p, traced, _run) = Pipeline::run_traced(
        tiny_traced_config(),
        "neutrality",
        Rc::new(MemoryRecorder::new()),
    )
    .unwrap();
    assert_eq!(traced.levels.len(), untraced.levels.len());
    for (a, b) in traced.levels.iter().zip(&untraced.levels) {
        assert_eq!(a.wer_percent, b.wer_percent);
        assert_eq!(a.mean_confidence, b.mean_confidence);
        assert_eq!(a.mean_hypotheses, b.mean_hypotheses);
        assert_eq!(a.hyps_p99, b.hyps_p99);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.table_reads, b.table_reads);
    }
}
