//! Tracing must never change a decode (ISSUE 4 acceptance).
//!
//! Three decodes of identical inputs — under the ambient default (no
//! recorder), under an explicitly installed `NullRecorder`, and under an
//! active `MemoryRecorder` — must agree bit for bit on words, cost, and
//! every stat trace. (`beam_regression.rs` separately pins the no-recorder
//! decode against the verbatim PR 2 loop, so together these pin the
//! instrumented decoder to the uninstrumented original.) The only permitted
//! difference is observational: `frame_ns` is populated, and the recorder
//! holds one histogram sample per frame, exactly when tracing is active.

use darkside_decoder::{decode, BeamConfig, DecodeResult};
use darkside_nn::check::run_cases;
use darkside_nn::{Matrix, Rng};
use darkside_trace::{self as trace, MemoryRecorder, NullRecorder, Recorder as _};
use darkside_wfst::{Arc, Fst, TropicalWeight, EPSILON};
use std::rc::Rc;

const NUM_CLASSES: usize = 5;

fn random_graph(rng: &mut Rng) -> Fst {
    let n = 2 + rng.below(30);
    let mut fst = Fst::new();
    for _ in 0..n {
        fst.add_state();
    }
    fst.set_start(0);
    for s in 0..n as u32 {
        for _ in 0..1 + rng.below(3) {
            let olabel = if rng.next_f32() < 0.3 {
                1 + rng.below(7) as u32
            } else {
                EPSILON
            };
            fst.add_arc(
                s,
                Arc {
                    ilabel: 1 + rng.below(NUM_CLASSES) as u32,
                    olabel,
                    weight: TropicalWeight(rng.uniform(0.0, 2.0)),
                    next: rng.below(n) as u32,
                },
            );
        }
    }
    fst.set_final((n - 1) as u32, TropicalWeight::ONE);
    fst
}

fn assert_same_decode(a: &DecodeResult, b: &DecodeResult, what: &str) {
    assert_eq!(a.words, b.words, "{what}: words");
    assert_eq!(a.cost, b.cost, "{what}: cost");
    assert_eq!(a.reached_final, b.reached_final, "{what}: finish flag");
    assert_eq!(a.stats.active_tokens, b.stats.active_tokens, "{what}");
    assert_eq!(a.stats.arcs_expanded, b.stats.arcs_expanded, "{what}");
    assert_eq!(a.stats.best_cost, b.stats.best_cost, "{what}");
}

#[test]
fn recorders_never_change_the_decode() {
    let config = BeamConfig {
        beam: 6.0,
        acoustic_scale: 0.3,
    };
    run_cases(0x7AC3, 25, |rng, case| {
        let graph = random_graph(rng);
        let frames = 1 + rng.below(10);
        let costs = Matrix::from_fn(frames, NUM_CLASSES, |_, _| rng.uniform(0.0, 4.0));

        let bare = decode(&graph, &costs, &config);
        let nulled =
            trace::with_recorder(Rc::new(NullRecorder), || decode(&graph, &costs, &config));
        let mem = Rc::new(MemoryRecorder::new());
        let traced = trace::with_recorder(mem.clone(), || decode(&graph, &costs, &config));

        match (bare, nulled, traced) {
            (Ok(bare), Ok(nulled), Ok(traced)) => {
                assert_same_decode(&bare, &nulled, &format!("case {case}: null recorder"));
                assert_same_decode(&bare, &traced, &format!("case {case}: memory recorder"));
                // The clock is only read under an active recorder...
                assert!(bare.stats.frame_ns.is_empty(), "case {case}");
                assert!(nulled.stats.frame_ns.is_empty(), "case {case}");
                assert_eq!(traced.stats.frame_ns.len(), frames, "case {case}");
                // ...and the recorder saw one sample per frame.
                let snap = mem.snapshot().unwrap();
                assert_eq!(snap.counters["decode.frames"], frames as u64);
                assert_eq!(snap.histograms["decode.frame.ns"].count, frames as u64);
                assert_eq!(snap.histograms["decode.frame.arcs"].count, frames as u64);
                let total_arcs: usize = traced.stats.arcs_expanded.iter().sum();
                assert_eq!(
                    snap.histograms["decode.frame.arcs"].mean,
                    total_arcs as f64 / frames as f64,
                    "case {case}"
                );
            }
            (Err(_), Err(_), Err(_)) => {} // all died identically
            (bare, nulled, traced) => panic!(
                "case {case}: decodes disagree on failure: bare {:?} null {:?} traced {:?}",
                bare.is_ok(),
                nulled.is_ok(),
                traced.is_ok()
            ),
        }
    });
}
