//! `BeamPolicy` through the new `SearchCore` must reproduce the
//! pre-refactor (PR 2) `decode()` exactly (ISSUE 3 acceptance).
//!
//! The oracle below is the PR 2 beam search verbatim — monolithic loop,
//! `HashMap` token set, merged-map best, `best + beam` cutoff — except
//! that graphs here use continuous random weights so equal-cost ties
//! (which the old code resolved by hash-map iteration order, i.e.
//! nondeterministically) have probability zero. Away from ties the old
//! algorithm is a deterministic function, and the refactored core must
//! compute the same one: words, cost, finish flag, and all three stat
//! traces.

use darkside_decoder::{decode, BeamConfig};
use darkside_nn::check::run_cases;
use darkside_nn::{Matrix, Rng};
use darkside_wfst::{label_class, Arc, Fst, TropicalWeight, EPSILON};
use std::collections::HashMap;

const NUM_CLASSES: usize = 5;

#[derive(Clone, Copy)]
struct Token {
    cost: f32,
    backpointer: u32,
}

const NO_BACKPOINTER: u32 = u32::MAX;

struct WordLink {
    prev: u32,
    olabel: u32,
}

/// The PR 2 `decode()` loop, verbatim (minus the input validation the
/// public API still performs). Returns `None` where the old code errored
/// ("all hypotheses died").
#[allow(clippy::type_complexity)]
fn reference_decode(
    graph: &Fst,
    costs: &Matrix,
    config: &BeamConfig,
) -> Option<(Vec<u32>, f32, bool, Vec<usize>, Vec<usize>, Vec<f32>)> {
    let start = graph.start().unwrap();
    let mut arena: Vec<WordLink> = Vec::new();
    let mut tokens: HashMap<u32, Token> = HashMap::new();
    tokens.insert(
        start,
        Token {
            cost: 0.0,
            backpointer: NO_BACKPOINTER,
        },
    );
    let (mut active, mut expanded_trace, mut best_trace) = (Vec::new(), Vec::new(), Vec::new());
    for t in 0..costs.rows() {
        let frame = costs.row(t);
        let mut next: HashMap<u32, (f32, u32, u32)> = HashMap::new();
        let mut expanded = 0usize;
        for (&state, token) in &tokens {
            for arc in graph.arcs(state) {
                expanded += 1;
                let cost = token.cost + arc.weight.0 + frame[label_class(arc.ilabel)];
                let entry =
                    next.entry(arc.next)
                        .or_insert((f32::INFINITY, NO_BACKPOINTER, EPSILON));
                if cost < entry.0 {
                    *entry = (cost, token.backpointer, arc.olabel);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        let best = next
            .values()
            .map(|&(c, _, _)| c)
            .fold(f32::INFINITY, f32::min);
        let cutoff = best + config.beam;
        tokens.clear();
        for (state, (cost, parent, olabel)) in next {
            if cost > cutoff {
                continue;
            }
            let backpointer = if olabel == EPSILON {
                parent
            } else {
                arena.push(WordLink {
                    prev: parent,
                    olabel,
                });
                (arena.len() - 1) as u32
            };
            tokens.insert(state, Token { cost, backpointer });
        }
        active.push(tokens.len());
        expanded_trace.push(expanded);
        best_trace.push(best);
    }
    let finisher = tokens
        .iter()
        .filter(|(&s, _)| graph.is_final(s))
        .map(|(&s, tok)| (tok.cost + graph.final_weight(s).0, tok.backpointer))
        .min_by(|a, b| a.0.total_cmp(&b.0));
    let (cost, backpointer, reached_final) = match finisher {
        Some((cost, bp)) => (cost, bp, true),
        None => {
            let (_, tok) = tokens
                .iter()
                .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
                .unwrap();
            (tok.cost, tok.backpointer, false)
        }
    };
    let mut words = Vec::new();
    let mut bp = backpointer;
    while bp != NO_BACKPOINTER {
        let link = &arena[bp as usize];
        words.push(link.olabel - 1);
        bp = link.prev;
    }
    words.reverse();
    Some((
        words,
        cost,
        reached_final,
        active,
        expanded_trace,
        best_trace,
    ))
}

fn random_graph(rng: &mut Rng) -> Fst {
    let n = 2 + rng.below(49);
    let mut fst = Fst::new();
    for _ in 0..n {
        fst.add_state();
    }
    fst.set_start(0);
    for s in 0..n as u32 {
        for _ in 0..1 + rng.below(3) {
            let olabel = if rng.next_f32() < 0.3 {
                1 + rng.below(7) as u32
            } else {
                EPSILON
            };
            fst.add_arc(
                s,
                Arc {
                    ilabel: 1 + rng.below(NUM_CLASSES) as u32,
                    olabel,
                    // Continuous weights: no exact ties, so the PR 2
                    // algorithm is a deterministic function of the input.
                    weight: TropicalWeight(rng.uniform(0.0, 2.0)),
                    next: rng.below(n) as u32,
                },
            );
        }
    }
    for s in 0..n as u32 {
        if rng.next_f32() < 0.3 {
            fst.set_final(s, TropicalWeight(rng.uniform(0.0, 1.0)));
        }
    }
    if (0..n as u32).all(|s| !fst.is_final(s)) {
        fst.set_final((n - 1) as u32, TropicalWeight::ONE);
    }
    fst
}

#[test]
fn searchcore_beam_matches_the_pr2_decoder_exactly() {
    for &beam in &[2.0f32, 6.0, f32::INFINITY] {
        let config = BeamConfig {
            beam,
            acoustic_scale: 0.3,
        };
        run_cases(0x9E62 ^ beam.to_bits() as u64, 40, |rng, case| {
            let graph = random_graph(rng);
            let frames = 1 + rng.below(12);
            let costs = Matrix::from_fn(frames, NUM_CLASSES, |_, _| rng.uniform(0.0, 4.0));
            let want = reference_decode(&graph, &costs, &config);
            let got = decode(&graph, &costs, &config);
            match (want, got) {
                (Some((words, cost, reached, active, expanded, best)), Ok(got)) => {
                    assert_eq!(got.words, words, "case {case} beam {beam}: words");
                    assert_eq!(got.cost, cost, "case {case} beam {beam}: cost");
                    assert_eq!(got.reached_final, reached, "case {case} beam {beam}");
                    assert_eq!(got.stats.active_tokens, active, "case {case} beam {beam}");
                    assert_eq!(got.stats.arcs_expanded, expanded, "case {case} beam {beam}");
                    assert_eq!(got.stats.best_cost, best, "case {case} beam {beam}");
                }
                (None, Err(_)) => {}
                (want, got) => panic!(
                    "case {case} beam {beam}: reference {:?} vs refactor {:?} disagree on failure",
                    want.is_some(),
                    got.is_ok()
                ),
            }
        });
    }
}
