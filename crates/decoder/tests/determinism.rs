//! Same-seed-twice determinism (ISSUE 3 satellite).
//!
//! The pre-refactor `decode()` iterated active tokens in `HashMap` order,
//! so equal-cost ties could resolve differently across runs (std's
//! `RandomState` seeds every map differently, even within one process).
//! The `SearchCore` rewrite expands tokens and materializes survivors in
//! sorted-state order; these tests pin that down on graphs built to tie.

use darkside_decoder::{decode, BeamConfig};
use darkside_nn::check::run_cases;
use darkside_nn::Matrix;
use darkside_wfst::{Arc, Fst, TropicalWeight, EPSILON};

const NUM_CLASSES: usize = 4;

/// A graph where many distinct paths cost *exactly* the same: every arc
/// weight is 1.0, every class cost is equal per frame, and several
/// same-cost arcs emit different words toward different states.
fn tie_graph(words: u32, fanout: usize) -> Fst {
    let mut g = Fst::new();
    let start = g.add_state();
    g.set_start(start);
    let mut layer = vec![start];
    for _ in 0..3 {
        let mut next_layer = Vec::new();
        for &from in &layer {
            for k in 0..fanout {
                let to = g.add_state();
                g.add_arc(
                    from,
                    Arc {
                        ilabel: 1 + (k % NUM_CLASSES) as u32,
                        olabel: 1 + (k as u32 % words),
                        weight: TropicalWeight(1.0),
                        next: to,
                    },
                );
                next_layer.push(to);
            }
        }
        layer = next_layer;
    }
    for &s in &layer {
        g.set_final(s, TropicalWeight::ONE);
    }
    g
}

#[test]
fn equal_cost_ties_resolve_identically_across_runs() {
    let g = tie_graph(5, 3);
    // Identical per-class costs per frame: every root-to-leaf path in the
    // graph has exactly the same total cost, so the word sequence is pure
    // tie-breaking — the old HashMap iteration would flake here.
    let costs = Matrix::from_fn(3, NUM_CLASSES, |i, _| 0.25 * (i as f32 + 1.0));
    let config = BeamConfig::default();
    let first = decode(&g, &costs, &config).unwrap();
    assert!(first.reached_final);
    assert_eq!(first.words.len(), 3);
    for run in 0..20 {
        let again = decode(&g, &costs, &config).unwrap();
        assert_eq!(again.words, first.words, "run {run}: words flipped");
        assert_eq!(again.cost, first.cost, "run {run}");
        assert_eq!(
            again.stats.active_tokens, first.stats.active_tokens,
            "run {run}"
        );
        assert_eq!(again.stats.best_cost, first.stats.best_cost, "run {run}");
    }
}

#[test]
fn random_graphs_decode_identically_twice() {
    run_cases(0xDE7E, 40, |rng, case| {
        // Quarter-integer weights on purpose: collisions are common, so
        // any order-dependence in merging or survivor materialization
        // would show up as flipped words or stats.
        let n = 2 + rng.below(40);
        let mut g = Fst::new();
        for _ in 0..n {
            g.add_state();
        }
        g.set_start(0);
        for s in 0..n as u32 {
            for _ in 0..1 + rng.below(3) {
                g.add_arc(
                    s,
                    Arc {
                        ilabel: 1 + rng.below(NUM_CLASSES) as u32,
                        olabel: if rng.next_f32() < 0.4 {
                            1 + rng.below(6) as u32
                        } else {
                            EPSILON
                        },
                        weight: TropicalWeight(rng.below(4) as f32 * 0.25),
                        next: rng.below(n) as u32,
                    },
                );
            }
        }
        g.set_final((n - 1) as u32, TropicalWeight::ONE);
        let costs = Matrix::from_fn(1 + rng.below(10), NUM_CLASSES, |_, _| {
            rng.below(8) as f32 * 0.25
        });
        let config = BeamConfig {
            beam: 3.0,
            acoustic_scale: 0.3,
        };
        let (a, b) = (decode(&g, &costs, &config), decode(&g, &costs, &config));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.words, b.words, "case {case}");
                assert_eq!(a.cost, b.cost, "case {case}");
                assert_eq!(a.reached_final, b.reached_final, "case {case}");
                assert_eq!(a.stats.active_tokens, b.stats.active_tokens, "case {case}");
                assert_eq!(a.stats.arcs_expanded, b.stats.arcs_expanded, "case {case}");
                assert_eq!(a.stats.best_cost, b.stats.best_cost, "case {case}");
            }
            (Err(_), Err(_)) => {}
            _ => panic!("case {case}: the two runs disagree on failure"),
        }
    });
}
