//! Beam-∞ decoding must equal exhaustive Viterbi (ISSUE 2 satellite).
//!
//! The oracle is an independent dense dynamic program over every
//! `(state, frame)` cell — no token hashing, no pruning, no backpointer
//! arena — on random input-epsilon-free graphs of ≤50 states.

use darkside_decoder::{decode, BeamConfig};
use darkside_nn::check::run_cases;
use darkside_nn::{Matrix, Rng};
use darkside_wfst::{label_class, Arc, Fst, TropicalWeight, EPSILON};

const NUM_CLASSES: usize = 5;

/// Random input-eps-free decoding graph: ≤50 states, class ilabels,
/// occasional word olabels, quarter-integer weights.
fn random_graph(rng: &mut Rng) -> Fst {
    let n = 2 + rng.below(49);
    let mut fst = Fst::new();
    for _ in 0..n {
        fst.add_state();
    }
    fst.set_start(0);
    for s in 0..n as u32 {
        for _ in 0..1 + rng.below(3) {
            let olabel = if rng.next_f32() < 0.3 {
                1 + rng.below(7) as u32
            } else {
                EPSILON
            };
            fst.add_arc(
                s,
                Arc {
                    ilabel: 1 + rng.below(NUM_CLASSES) as u32,
                    olabel,
                    weight: TropicalWeight(rng.below(8) as f32 * 0.25),
                    next: rng.below(n) as u32,
                },
            );
        }
    }
    for s in 0..n as u32 {
        if rng.next_f32() < 0.3 {
            fst.set_final(s, TropicalWeight(rng.below(4) as f32 * 0.25));
        }
    }
    if (0..n as u32).all(|s| !fst.is_final(s)) {
        fst.set_final((n - 1) as u32, TropicalWeight::ONE);
    }
    fst
}

/// Exhaustive Viterbi: best cost into every state at every frame, then the
/// best final-state finish (falling back to any state, mirroring decode()).
fn exhaustive_viterbi(graph: &Fst, costs: &Matrix) -> f32 {
    let n = graph.num_states();
    let mut best = vec![f32::INFINITY; n];
    best[graph.start().unwrap() as usize] = 0.0;
    for t in 0..costs.rows() {
        let frame = costs.row(t);
        let mut next = vec![f32::INFINITY; n];
        for (s, &from_cost) in best.iter().enumerate() {
            if from_cost.is_infinite() {
                continue;
            }
            for arc in graph.arcs(s as u32) {
                let cost = from_cost + arc.weight.0 + frame[label_class(arc.ilabel)];
                let cell = &mut next[arc.next as usize];
                *cell = cell.min(cost);
            }
        }
        best = next;
    }
    let finish = (0..n as u32)
        .filter(|&s| graph.is_final(s))
        .map(|s| best[s as usize] + graph.final_weight(s).0)
        .fold(f32::INFINITY, f32::min);
    if finish.is_finite() {
        finish
    } else {
        best.into_iter().fold(f32::INFINITY, f32::min)
    }
}

#[test]
fn infinite_beam_equals_exhaustive_viterbi() {
    let config = BeamConfig {
        beam: f32::INFINITY,
        acoustic_scale: 0.3,
    };
    run_cases(0xBEA0, 50, |rng, _case| {
        let graph = random_graph(rng);
        let frames = 1 + rng.below(12);
        let costs = Matrix::from_fn(frames, NUM_CLASSES, |_, _| rng.below(16) as f32 * 0.25);
        let want = exhaustive_viterbi(&graph, &costs);
        match decode(&graph, &costs, &config) {
            Ok(result) => {
                assert!(
                    (result.cost - want).abs() < 1e-3,
                    "beam-∞ cost {} vs exhaustive {}",
                    result.cost,
                    want
                );
                // With no pruning, every frame's token count is exactly the
                // number of DP cells with finite cost — spot-check the last
                // frame against the oracle's reachable set.
                assert!(result.stats.active_tokens.iter().all(|&k| k > 0));
            }
            Err(_) => {
                // decode() errors only when every hypothesis dies, which
                // the oracle sees as an all-infinite DP row.
                assert!(
                    want.is_infinite(),
                    "decode() failed but the oracle found cost {want}"
                );
            }
        }
    });
}

#[test]
fn beam_search_cost_never_beats_exhaustive() {
    // A finite beam may lose the optimum but can never return a cost
    // below it (it explores a subset of paths).
    let config = BeamConfig {
        beam: 2.0,
        acoustic_scale: 0.3,
    };
    run_cases(0xBEA1, 30, |rng, _case| {
        let graph = random_graph(rng);
        let frames = 1 + rng.below(8);
        let costs = Matrix::from_fn(frames, NUM_CLASSES, |_, _| rng.below(16) as f32 * 0.25);
        let want = exhaustive_viterbi(&graph, &costs);
        if let Ok(result) = decode(&graph, &costs, &config) {
            if result.reached_final {
                assert!(
                    result.cost >= want - 1e-3,
                    "beam found cost {} below the optimum {}",
                    result.cost,
                    want
                );
            }
        }
    });
}
