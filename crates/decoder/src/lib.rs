//! # darkside-decoder — policy-parameterized Viterbi search
//!
//! DESIGN.md §3: walks the `darkside-wfst` decoding graph over acoustic
//! scores from `darkside-nn`. [`search::SearchCore`] is the
//! frame-synchronous token-passing recursion (with the per-frame hypothesis
//! statistics the paper's Fig. 4 plots); every admit/evict/threshold
//! decision is delegated to a [`policy::PruningPolicy`], so the classic
//! beam ([`policy::BeamPolicy`], via [`search::decode`]), the UNFOLD-style
//! hash, and the paper's loose N-best table (both in
//! `darkside-viterbi-accel`) are drop-in swaps over one search core.
//! [`wer`] scores hypotheses against references.
//!
//! The scoring interface: the decoder consumes per-frame **acoustic costs**
//! (−log probabilities, scaled), produced in batch from
//! [`darkside_nn::Scores`] so the whole utterance's DNN work is one batched
//! [`darkside_nn::FrameScorer::score_frames`] call — the amortization the
//! ISSUE 1 `batched_score` bench measures.

pub mod policy;
pub mod search;
pub mod wer;
pub mod wire;

pub use darkside_error::Error;
pub use policy::{Admit, BeamPolicy, FramePruneStats, PruningPolicy};
pub use search::{
    decode, decode_with_policy, DecodeResult, DecodeStats, PartialHypothesis, SearchCore,
};
pub use wer::{word_errors, WerStats};

use darkside_nn::{Matrix, Scores};

/// Beam-search knobs (paper defaults from DESIGN.md §4b).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BeamConfig {
    /// Cost window around the best hypothesis.
    pub beam: f32,
    /// The hybrid-ASR acoustic down-scaling (DESIGN.md §4b: 0.3).
    pub acoustic_scale: f32,
}

impl Default for BeamConfig {
    fn default() -> Self {
        Self {
            beam: 15.0,
            acoustic_scale: 0.3,
        }
    }
}

/// Probability floor applied before the −log so silence/pruned-away classes
/// yield a large finite cost instead of +∞ (which would poison ⊗ sums).
pub const PROB_FLOOR: f32 = 1e-10;

/// Convert batched softmax scores into the `frames × classes` acoustic-cost
/// matrix the search consumes: `cost = |acoustic_scale| · (−ln max(p, floor))`.
///
/// Robustness contract (the costs must order hypotheses sensibly no matter
/// what a broken or heavily pruned model emits):
/// * probabilities at or below [`PROB_FLOOR`] — including exact zeros —
///   produce the *same* large finite cost;
/// * NaN probabilities are treated as floored, not propagated;
/// * the scale is taken as a magnitude (`|scale|`), so a negated or zero
///   `acoustic_scale` can never make floored classes *cheaper* than
///   confident ones — cost order always follows probability order.
pub fn acoustic_costs(scores: &Scores, config: &BeamConfig) -> Matrix {
    let scale = config.acoustic_scale.abs();
    Matrix::from_fn(scores.num_frames(), scores.num_classes(), |i, j| {
        let p = scores.probs.get(i, j);
        let p = if p.is_nan() {
            PROB_FLOOR
        } else {
            p.max(PROB_FLOOR)
        };
        scale * -p.ln()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_finite_and_ordered() {
        let probs = Matrix::new(1, 3, vec![0.7, 0.3, 0.0]).unwrap();
        let costs = acoustic_costs(&Scores { probs }, &BeamConfig::default());
        // Higher probability → lower cost; zero probability → finite cost.
        assert!(costs.get(0, 0) < costs.get(0, 1));
        assert!(costs.get(0, 1) < costs.get(0, 2));
        assert!(costs.get(0, 2).is_finite());
    }

    #[test]
    fn floored_classes_cost_the_same_regardless_of_scale_sign() {
        // Zero, sub-floor, and exactly-floor probabilities are
        // indistinguishable after flooring.
        let probs = Matrix::new(1, 3, vec![0.0, PROB_FLOOR * 0.5, PROB_FLOOR]).unwrap();
        for scale in [0.3, -0.3, 0.0] {
            let costs = acoustic_costs(
                &Scores {
                    probs: probs.clone(),
                },
                &BeamConfig {
                    beam: 15.0,
                    acoustic_scale: scale,
                },
            );
            let floor_cost = costs.get(0, 0);
            assert!(floor_cost.is_finite());
            assert!(floor_cost >= 0.0, "scale {scale}: cost {floor_cost}");
            assert_eq!(costs.get(0, 1), floor_cost, "scale {scale}");
            assert_eq!(costs.get(0, 2), floor_cost, "scale {scale}");
        }
    }

    #[test]
    fn negative_or_zero_scale_preserves_probability_order() {
        let probs = Matrix::new(1, 2, vec![0.9, 0.1]).unwrap();
        for scale in [-1.0, -0.3] {
            let costs = acoustic_costs(
                &Scores {
                    probs: probs.clone(),
                },
                &BeamConfig {
                    beam: 15.0,
                    acoustic_scale: scale,
                },
            );
            assert!(
                costs.get(0, 0) < costs.get(0, 1),
                "scale {scale} inverted the cost order"
            );
        }
        let zero = acoustic_costs(
            &Scores { probs },
            &BeamConfig {
                beam: 15.0,
                acoustic_scale: 0.0,
            },
        );
        assert_eq!(zero.get(0, 0), 0.0);
        assert_eq!(zero.get(0, 1), 0.0);
    }

    #[test]
    fn nan_logits_floor_instead_of_poisoning() {
        let probs = Matrix::new(1, 2, vec![f32::NAN, 0.5]).unwrap();
        let costs = acoustic_costs(&Scores { probs }, &BeamConfig::default());
        assert!(costs.get(0, 0).is_finite());
        // NaN scores like a floored class: worst finite cost, never NaN.
        assert!(costs.get(0, 0) > costs.get(0, 1));
    }

    #[test]
    fn empty_frame_batch_yields_an_empty_cost_matrix() {
        let probs = Matrix::zeros(0, 4);
        let costs = acoustic_costs(&Scores { probs }, &BeamConfig::default());
        assert_eq!((costs.rows(), costs.cols()), (0, 4));
    }
}
