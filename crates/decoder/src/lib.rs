//! # darkside-decoder — software Viterbi beam search
//!
//! DESIGN.md §3: walks the `darkside-wfst` decoding graph over acoustic
//! scores from `darkside-nn`, with hypothesis selection pluggable between
//! plain beam, accurate N-best, and the paper's loose N-best hash.
//!
//! **Status:** skeleton (ISSUE 1 creates the workspace; the search lands
//! with the decoder PR). What is final here is the scoring interface: the
//! decoder consumes per-frame **acoustic costs** (−log probabilities,
//! scaled), produced in batch from [`darkside_nn::Scores`] so the whole
//! utterance's DNN work is one batched [`darkside_nn::Mlp::score_frames`]
//! call — the amortization the ISSUE 1 `batched_score` bench measures.

use darkside_nn::{Matrix, Scores};

/// Beam-search knobs (paper defaults from DESIGN.md §4b).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BeamConfig {
    /// Cost window around the best hypothesis.
    pub beam: f32,
    /// The hybrid-ASR acoustic down-scaling (DESIGN.md §4b: 0.3).
    pub acoustic_scale: f32,
}

impl Default for BeamConfig {
    fn default() -> Self {
        Self {
            beam: 15.0,
            acoustic_scale: 0.3,
        }
    }
}

/// Probability floor applied before the −log so silence/pruned-away classes
/// yield a large finite cost instead of +∞ (which would poison ⊗ sums).
pub const PROB_FLOOR: f32 = 1e-10;

/// Convert batched softmax scores into the `frames × classes` acoustic-cost
/// matrix the search consumes: `cost = −acoustic_scale · ln(max(p, floor))`.
pub fn acoustic_costs(scores: &Scores, config: &BeamConfig) -> Matrix {
    Matrix::from_fn(scores.num_frames(), scores.num_classes(), |i, j| {
        -config.acoustic_scale * scores.probs.get(i, j).max(PROB_FLOOR).ln()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_finite_and_ordered() {
        let probs = Matrix::from_vec(1, 3, vec![0.7, 0.3, 0.0]);
        let costs = acoustic_costs(&Scores { probs }, &BeamConfig::default());
        // Higher probability → lower cost; zero probability → finite cost.
        assert!(costs.get(0, 0) < costs.get(0, 1));
        assert!(costs.get(0, 1) < costs.get(0, 2));
        assert!(costs.get(0, 2).is_finite());
    }
}
