//! Word error rate: Levenshtein alignment of hypothesis against reference,
//! accumulated over a test set (the paper's accuracy axis in Table III).

/// Edit-distance tallies for one or more utterances.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WerStats {
    pub substitutions: usize,
    pub insertions: usize,
    pub deletions: usize,
    /// Total reference words (the WER denominator).
    pub reference_words: usize,
}

impl WerStats {
    /// WER = (S + I + D) / N, in percent. 0 for an empty reference with an
    /// empty hypothesis; each inserted word against an empty reference
    /// counts into an undefined denominator, so we report ∞ there.
    pub fn percent(&self) -> f64 {
        let errors = (self.substitutions + self.insertions + self.deletions) as f64;
        if self.reference_words == 0 {
            return if errors == 0.0 { 0.0 } else { f64::INFINITY };
        }
        100.0 * errors / self.reference_words as f64
    }

    /// Pool tallies across utterances (corpus-level WER, not mean-of-rates).
    pub fn accumulate(&mut self, other: &WerStats) {
        self.substitutions += other.substitutions;
        self.insertions += other.insertions;
        self.deletions += other.deletions;
        self.reference_words += other.reference_words;
    }
}

/// Align `hypothesis` to `reference` with unit-cost edits and return the
/// error breakdown of a minimal alignment.
pub fn word_errors(reference: &[u32], hypothesis: &[u32]) -> WerStats {
    let (n, m) = (reference.len(), hypothesis.len());
    // dp[i][j] = (cost, subs, ins, dels) of aligning ref[..i] to hyp[..j].
    let mut dp = vec![vec![(0usize, 0usize, 0usize, 0usize); m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate().skip(1) {
        row[0] = (i, 0, 0, i);
    }
    for (j, cell) in dp[0].iter_mut().enumerate().skip(1) {
        *cell = (j, 0, j, 0);
    }
    for i in 1..=n {
        for j in 1..=m {
            if reference[i - 1] == hypothesis[j - 1] {
                dp[i][j] = dp[i - 1][j - 1];
                continue;
            }
            let sub = dp[i - 1][j - 1];
            let del = dp[i - 1][j];
            let ins = dp[i][j - 1];
            dp[i][j] = if sub.0 <= del.0 && sub.0 <= ins.0 {
                (sub.0 + 1, sub.1 + 1, sub.2, sub.3)
            } else if del.0 <= ins.0 {
                (del.0 + 1, del.1, del.2, del.3 + 1)
            } else {
                (ins.0 + 1, ins.1, ins.2 + 1, ins.3)
            };
        }
    }
    let (_, substitutions, insertions, deletions) = dp[n][m];
    WerStats {
        substitutions,
        insertions,
        deletions,
        reference_words: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_zero() {
        let s = word_errors(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(
            s,
            WerStats {
                reference_words: 3,
                ..WerStats::default()
            }
        );
        assert_eq!(s.percent(), 0.0);
    }

    #[test]
    fn classifies_edit_types() {
        // ref 1 2 3 4 → hyp 1 9 4: one substitution (2→9), one deletion (3).
        let s = word_errors(&[1, 2, 3, 4], &[1, 9, 4]);
        assert_eq!(s.substitutions + s.deletions + s.insertions, 2);
        assert_eq!(s.substitutions, 1);
        assert_eq!(s.deletions, 1);
        assert!((s.percent() - 50.0).abs() < 1e-12);

        let ins = word_errors(&[1], &[1, 2, 3]);
        assert_eq!(ins.insertions, 2);
        assert_eq!(ins.percent(), 200.0);
    }

    #[test]
    fn empty_edges() {
        assert_eq!(word_errors(&[], &[]).percent(), 0.0);
        assert_eq!(word_errors(&[], &[1]).percent(), f64::INFINITY);
        let all_deleted = word_errors(&[1, 2], &[]);
        assert_eq!(all_deleted.deletions, 2);
        assert_eq!(all_deleted.percent(), 100.0);
    }

    #[test]
    fn accumulate_pools_denominators() {
        let mut total = WerStats::default();
        total.accumulate(&word_errors(&[1, 2, 3, 4], &[1, 2, 3, 4]));
        total.accumulate(&word_errors(&[1, 2, 3, 4], &[1, 2, 9, 4]));
        assert!((total.percent() - 12.5).abs() < 1e-12);
    }
}
