//! The pruning-policy interface of the search core (ISSUE 3 tentpole).
//!
//! The paper's contribution (§IV, Figs. 7–9) is not the Viterbi recursion
//! but *how hypotheses are admitted and evicted per frame*. This module
//! fixes the contract between the policy-agnostic [`crate::SearchCore`]
//! and any admission scheme:
//!
//! * while a frame is being expanded, the core calls
//!   [`PruningPolicy::admit`] for **every** candidate hypothesis (one per
//!   expanded arc, pre-merge) and mirrors the decision in its token map;
//! * at frame end, [`PruningPolicy::end_frame`] reports the frame's
//!   storage traffic plus an optional cost `cutoff` the core applies to
//!   the survivors (the beam threshold lives here, not in the core).
//!
//! Policies that bound their storage (the paper's loose N-best table, the
//! UNFOLD hash in `darkside-viterbi-accel`) answer [`Admit::Replace`] /
//! [`Admit::Reject`]; the plain software beam ([`BeamPolicy`]) admits
//! everything and prunes purely through the end-of-frame cutoff.

/// Decision for one candidate hypothesis `(state, cost)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Store the candidate. If the state is already held, this is an
    /// update: the core keeps the cheaper of the held and candidate costs,
    /// and a content-tracking policy must only answer `Accept` for a held
    /// state when the candidate improves it.
    Accept,
    /// Discard the candidate (worse than the held entry, or no room and
    /// not better than anything stored).
    Reject,
    /// Store the candidate, displacing `evicted` — the core forgets the
    /// evicted state's token. The evicted state is never the candidate's
    /// own (a held state is updated via `Accept`, not replaced).
    Replace(u32),
}

/// Per-frame report from a policy: the survivor threshold plus the frame's
/// hypothesis-storage traffic (all zero for storage-free policies).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FramePruneStats {
    /// Cost threshold applied to the frame's survivors (`None` = keep all
    /// admitted tokens). Tokens with `cost > cutoff` are dropped.
    pub cutoff: Option<f32>,
    /// Entries displaced from bounded storage this frame.
    pub evictions: u64,
    /// Candidates that found no storage at all (set/backup full) — the
    /// UNFOLD overflow-to-memory path, or the N-best table's full-set
    /// discards.
    pub overflows: u64,
    /// Entries live in the policy's storage at frame end.
    pub occupancy: usize,
    /// Storage reads this frame (hash probes, tag compares).
    pub reads: u64,
    /// Storage writes this frame (inserts, in-place updates, spills).
    pub writes: u64,
}

/// One per-frame hypothesis admission scheme. Implementations reset their
/// per-frame state in [`PruningPolicy::end_frame`]; a fresh policy value is
/// expected per utterance.
pub trait PruningPolicy {
    /// Stable identifier for reports ("beam", "nbest", "unfold").
    fn name(&self) -> &'static str;

    /// Decide the fate of one candidate hypothesis.
    fn admit(&mut self, state: u32, cost: f32) -> Admit;

    /// Close the frame: report traffic + the survivor cutoff, and reset
    /// per-frame storage for the next frame.
    fn end_frame(&mut self) -> FramePruneStats;

    /// Close the utterance (ISSUE 4 observability): called once by
    /// [`crate::decode_with_policy`] after the last frame, before the best
    /// path is traced back. Stateful policies override this to export their
    /// cumulative storage/energy totals as named `darkside_trace` metrics
    /// ("policy.{name}.evictions", "energy.{component}.pj", ...); the
    /// default — and the storage-free [`BeamPolicy`] — does nothing.
    fn end_utterance(&mut self) {}

    /// Serialize the policy's cross-frame state at a frame boundary
    /// (ISSUE 7 session checkpoint). Every policy clears its per-frame
    /// hypothesis storage in [`PruningPolicy::end_frame`], so between
    /// frames only *cumulative accounting* (eviction/overflow totals,
    /// energy traffic) persists — that is what travels. The default writes
    /// nothing: a policy whose admission decisions depend only on the
    /// current frame (like [`BeamPolicy`]) restores as a fresh value.
    fn save_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Restore state written by [`PruningPolicy::save_state`] into a
    /// freshly built policy of the same kind and geometry. After this, the
    /// policy must decode the remaining frames bit-for-bit as the original
    /// would have, and report the same cumulative totals at
    /// [`PruningPolicy::end_utterance`].
    fn restore_state(&mut self, r: &mut crate::wire::Reader<'_>) -> Result<(), crate::Error> {
        let _ = r;
        Ok(())
    }
}

/// The classic software beam: admit every candidate, then cut survivors to
/// a cost window around the frame's best. Bit-for-bit the pre-refactor
/// `decode()` behavior.
#[derive(Clone, Copy, Debug)]
pub struct BeamPolicy {
    beam: f32,
    best: f32,
}

impl BeamPolicy {
    pub fn new(beam: f32) -> Self {
        Self {
            beam,
            best: f32::INFINITY,
        }
    }
}

impl PruningPolicy for BeamPolicy {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn admit(&mut self, _state: u32, cost: f32) -> Admit {
        // Running minimum over every candidate equals the minimum over the
        // merged token map (merging keeps per-state minima), so the cutoff
        // below matches the old merged-map-then-min computation exactly.
        self.best = self.best.min(cost);
        Admit::Accept
    }

    fn end_frame(&mut self) -> FramePruneStats {
        let cutoff = self.best + self.beam;
        self.best = f32::INFINITY;
        FramePruneStats {
            cutoff: Some(cutoff),
            ..FramePruneStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beam_tracks_the_frame_best_and_resets() {
        let mut p = BeamPolicy::new(2.0);
        assert_eq!(p.admit(3, 5.0), Admit::Accept);
        assert_eq!(p.admit(4, 1.5), Admit::Accept);
        assert_eq!(p.admit(5, 9.0), Admit::Accept);
        let frame = p.end_frame();
        assert_eq!(frame.cutoff, Some(3.5));
        assert_eq!(frame.evictions, 0);
        assert_eq!(frame.occupancy, 0);
        // Next frame starts from a fresh best.
        p.admit(6, 10.0);
        assert_eq!(p.end_frame().cutoff, Some(12.0));
    }
}
