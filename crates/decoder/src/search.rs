//! Frame-synchronous Viterbi search over the composed decoding graph.
//!
//! Token passing: each active graph state holds its best-path cost and a
//! backpointer into a word-emission arena. Because the decoding graph is
//! input-epsilon-free by construction (`darkside_wfst::build_decoding_graph`),
//! every frame advances every token by exactly one arc — there is no
//! epsilon-closure inner loop, which is what makes the per-frame hypothesis
//! count a faithful effort metric (the paper's Fig. 4 quantity).
//!
//! The search itself is policy-parameterized (ISSUE 3): [`SearchCore`] owns
//! token propagation, the backpointer arena, and stats collection, and
//! delegates every admit/evict/threshold decision to a
//! [`PruningPolicy`](crate::PruningPolicy). [`decode`] is the beam-policy
//! entry point (the pre-refactor behavior, bit for bit);
//! [`decode_with_policy`] runs any policy through the same core.
//!
//! Determinism: active tokens are kept sorted by state id and expanded in
//! that order, and survivors are materialized in sorted order, so
//! equal-cost ties always resolve the same way — hash-map iteration order
//! never influences the result (ISSUE 3 satellite).

use crate::policy::{Admit, BeamPolicy, PruningPolicy};
use crate::{BeamConfig, PROB_FLOOR};
use darkside_error::Error;
use darkside_nn::Matrix;
use darkside_trace as trace;
use darkside_wfst::{label_class, Arc as FstArc, GraphSource, EPSILON};
use std::collections::HashMap;

/// Per-frame search effort and quality traces (the paper's Fig. 4 inputs),
/// plus the pruning-policy storage counters (Fig. 7 inputs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecodeStats {
    /// Tokens alive after pruning, per frame.
    pub active_tokens: Vec<usize>,
    /// Arcs expanded (hypotheses explored), per frame.
    pub arcs_expanded: Vec<usize>,
    /// Best-path cost after each frame.
    pub best_cost: Vec<f32>,
    /// Entries live in the policy's hypothesis storage at each frame end
    /// (all zero for storage-free policies such as the plain beam).
    pub table_occupancy: Vec<usize>,
    /// Total entries displaced from bounded storage over the utterance.
    pub evictions: u64,
    /// Total candidates that found no storage (overflow/discard path).
    pub overflows: u64,
    /// Total hypothesis-storage reads (hash probes, tag compares).
    pub table_reads: u64,
    /// Total hypothesis-storage writes (inserts, updates, spills).
    pub table_writes: u64,
    /// Wall-clock nanoseconds per frame. Populated only while a
    /// `darkside_trace` recorder is active (ISSUE 4) — empty otherwise, so
    /// the untraced hot loop never touches the clock.
    pub frame_ns: Vec<u64>,
}

impl DecodeStats {
    /// Mean hypotheses explored per frame — the Fig. 4 y-axis.
    pub fn mean_hypotheses(&self) -> f64 {
        if self.arcs_expanded.is_empty() {
            return 0.0;
        }
        self.arcs_expanded.iter().sum::<usize>() as f64 / self.arcs_expanded.len() as f64
    }

    /// Mean policy-storage occupancy per frame (0 for storage-free policies).
    pub fn mean_table_occupancy(&self) -> f64 {
        if self.table_occupancy.is_empty() {
            return 0.0;
        }
        self.table_occupancy.iter().sum::<usize>() as f64 / self.table_occupancy.len() as f64
    }
}

/// A decoded utterance.
#[derive(Clone, Debug)]
pub struct DecodeResult {
    /// Best-path word ids (decoding-graph olabels − 1).
    pub words: Vec<u32>,
    /// Total best-path cost (graph ⊗ acoustic ⊗ final).
    pub cost: f32,
    /// Whether the best path ended in a final state (false only when the
    /// policy pruned every finishing hypothesis; the best mid-graph token is
    /// returned so the pipeline can still score the utterance).
    pub reached_final: bool,
    pub stats: DecodeStats,
}

/// One active hypothesis: best cost into a state plus the index of its most
/// recent word emission in the backpointer arena.
#[derive(Clone, Copy)]
struct Token {
    cost: f32,
    backpointer: u32,
}

const NO_BACKPOINTER: u32 = u32::MAX;

/// A word emission: arena index of the previous emission + the word label.
struct WordLink {
    prev: u32,
    olabel: u32,
}

/// A merged-but-not-yet-pruned hypothesis for one target state.
#[derive(Clone, Copy)]
struct Candidate {
    cost: f32,
    parent: u32,
    olabel: u32,
}

/// The policy-agnostic frame-synchronous search core: token propagation,
/// the backpointer arena, and stats collection. Every admit/evict/threshold
/// decision is delegated to the [`PruningPolicy`] passed to
/// [`SearchCore::advance`], so beam, UNFOLD-style hash, and the paper's
/// loose N-best are drop-in swaps over the identical recursion.
///
/// The core is generic over the graph *expansion source* (`G:
/// GraphSource`, ISSUE 8, generalizing the ISSUE 5 `Borrow<Fst>` bound):
/// the one-shot entry points instantiate `SearchCore<&Fst>` (fully
/// monomorphized — the pre-ISSUE-8 hot loop, bit for bit), a long-lived
/// streaming session owns a type-erased
/// `SearchCore<darkside_wfst::SharedGraph>`, and a lazily-composed
/// [`darkside_wfst::LazyComposeFst`] drops in with identical results
/// because its state numbering and arc order match the eager graph by
/// construction. Same recursion everywhere, so incremental
/// [`SearchCore::advance`] calls across serving micro-batch boundaries
/// decode exactly like a one-shot [`decode_with_policy`].
///
/// Invariant kept with content-tracking policies: after every frame, the
/// core's token set equals the set of states the policy's storage holds
/// (minus any tokens the end-of-frame cutoff removed) — `Accept` upserts,
/// `Replace` forgets the evicted state, `Reject` leaves the map untouched.
pub struct SearchCore<G: GraphSource> {
    graph: G,
    arena: Vec<WordLink>,
    /// Active tokens, sorted by state id (deterministic expansion order).
    tokens: Vec<(u32, Token)>,
    /// Scratch merge map for the frame under construction (reused).
    next: HashMap<u32, Candidate>,
    /// Arc buffer loaned to [`GraphSource::expand`] each step (reused;
    /// untouched by eager graphs, filled by lazy ones). Transient — not
    /// part of [`SearchCore::save_state`].
    scratch: Vec<FstArc>,
    stats: DecodeStats,
    frame: usize,
    /// Best-vs-runner-up cost gap of the most recent frame (ISSUE 9
    /// detector feed; `f32::INFINITY` until a frame with ≥ 2 hypotheses).
    /// Transient like `scratch`: recomputed every [`SearchCore::advance`],
    /// not part of [`SearchCore::save_state`].
    frame_margin: f32,
}

/// A mid-utterance best hypothesis (ISSUE 5 streaming): what a serving
/// session reports before the utterance's final frame arrives.
#[derive(Clone, Debug)]
pub struct PartialHypothesis {
    /// Best-path word ids so far (decoding-graph olabels − 1).
    pub words: Vec<u32>,
    /// Cost of the reported hypothesis (⊗ final weight when it finishes).
    pub cost: f32,
    /// Whether the reported hypothesis currently sits in a final state.
    pub in_final: bool,
    /// Frames consumed so far.
    pub frames: usize,
}

impl<G: GraphSource> SearchCore<G> {
    /// Seed the search at the graph's start state. Fails on a missing start
    /// state or a graph with input epsilons (the frame-synchronous recursion
    /// needs exactly one consumed frame per arc).
    pub fn new(graph: G) -> Result<Self, Error> {
        let start = graph
            .start()
            .ok_or_else(|| Error::graph("decode", "graph has no start state".to_string()))?;
        if !graph.is_input_eps_free() {
            return Err(Error::graph(
                "decode",
                "graph has input epsilons; decode needs one frame per arc".to_string(),
            ));
        }
        Ok(Self {
            graph,
            arena: Vec::new(),
            tokens: vec![(
                start,
                Token {
                    cost: 0.0,
                    backpointer: NO_BACKPOINTER,
                },
            )],
            next: HashMap::new(),
            scratch: Vec::new(),
            stats: DecodeStats::default(),
            frame: 0,
            frame_margin: f32::INFINITY,
        })
    }

    /// Advance every token by one arc over one frame of acoustic costs
    /// (indexed by class id), consulting `policy` for every candidate and
    /// applying its end-of-frame cutoff to the survivors.
    pub fn advance(&mut self, frame: &[f32], policy: &mut dyn PruningPolicy) -> Result<(), Error> {
        // Per-frame event hooks (ISSUE 4): one flag read when tracing is
        // off; clock reads and histogram samples only on the active path.
        let traced = trace::active();
        let t0 = if traced { trace::now_ns() } else { 0 };
        let mut expanded = 0usize;
        self.next.clear();
        let graph = &self.graph;
        let next = &mut self.next;
        let scratch = &mut self.scratch;
        for &(state, token) in &self.tokens {
            for arc in graph.expand(state, &mut *scratch) {
                expanded += 1;
                let cost = token.cost + arc.weight.0 + frame[label_class(arc.ilabel)];
                match policy.admit(arc.next, cost) {
                    Admit::Reject => {}
                    Admit::Accept => upsert(next, arc.next, cost, token.backpointer, arc.olabel),
                    Admit::Replace(evicted) => {
                        next.remove(&evicted);
                        upsert(next, arc.next, cost, token.backpointer, arc.olabel);
                    }
                }
            }
        }
        if self.next.is_empty() {
            return Err(Error::graph(
                "decode",
                format!("all hypotheses died at frame {}", self.frame),
            ));
        }
        // One pass for the frame-best *and* the runner-up: the gap between
        // them is the per-frame score margin the ISSUE 9 dark-side detector
        // watches (the paper's confidence collapse, observed live — a
        // collapsing softmax flattens hypothesis costs, so the margin
        // shrinks as sparsity grows). Margin never feeds back into pruning;
        // decode output is bit-identical with or without a reader.
        let (best, runner_up) =
            self.next
                .values()
                .map(|c| c.cost)
                .fold((f32::INFINITY, f32::INFINITY), |(b, r), c| {
                    if c < b {
                        (c, b)
                    } else {
                        (b, r.min(c))
                    }
                });
        self.frame_margin = runner_up - best;
        let prune = policy.end_frame();
        let cutoff = prune.cutoff.unwrap_or(f32::INFINITY);
        // Deterministic survivor order: sorted by state id, so the arena
        // layout and equal-cost tie resolution never depend on hash-map
        // iteration order. Word links materialize for survivors only,
        // keeping the arena proportional to what actually lives on.
        let mut survivors: Vec<(u32, Candidate)> = self.next.drain().collect();
        survivors.sort_unstable_by_key(|&(state, _)| state);
        self.tokens.clear();
        for (state, cand) in survivors {
            if cand.cost > cutoff {
                continue;
            }
            let backpointer = if cand.olabel == EPSILON {
                cand.parent
            } else {
                self.arena.push(WordLink {
                    prev: cand.parent,
                    olabel: cand.olabel,
                });
                (self.arena.len() - 1) as u32
            };
            self.tokens.push((
                state,
                Token {
                    cost: cand.cost,
                    backpointer,
                },
            ));
        }
        self.stats.active_tokens.push(self.tokens.len());
        self.stats.arcs_expanded.push(expanded);
        self.stats.best_cost.push(best);
        self.stats.table_occupancy.push(prune.occupancy);
        self.stats.evictions += prune.evictions;
        self.stats.overflows += prune.overflows;
        self.stats.table_reads += prune.reads;
        self.stats.table_writes += prune.writes;
        if traced {
            let ns = trace::now_ns().saturating_sub(t0);
            self.stats.frame_ns.push(ns);
            trace::sample("decode.frame.ns", ns as f64);
            trace::sample("decode.frame.arcs", expanded as f64);
            trace::counter("decode.frames", 1);
            if self.frame_margin.is_finite() {
                trace::sample("decode.frame.margin", self.frame_margin as f64);
            }
        }
        self.frame += 1;
        Ok(())
    }

    /// Frames consumed so far.
    pub fn frames(&self) -> usize {
        self.frame
    }

    /// Best-vs-runner-up cost gap of the most recent frame
    /// (`f32::INFINITY` before the first frame or when only one hypothesis
    /// survived). The ISSUE 9 per-session detector's margin signal.
    pub fn frame_margin(&self) -> f32 {
        self.frame_margin
    }

    /// Hypotheses currently alive (after the last frame's cutoff) — the
    /// detector's workload signal, without waiting for `DecodeStats`.
    pub fn active_hypotheses(&self) -> usize {
        self.tokens.len()
    }

    /// The graph this search walks (serve's per-step reap reads lazy-graph
    /// memo counters through this).
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// Best hypothesis *now* (⊗ final weight when one finishes; the best
    /// mid-graph token otherwise) — the streaming partial a serving session
    /// reports between micro-batches (ISSUE 5). Non-destructive: the search
    /// continues with the next [`SearchCore::advance`] unaffected.
    pub fn partial(&self) -> PartialHypothesis {
        let (cost, backpointer, in_final) = self.best_token();
        PartialHypothesis {
            words: self.trace_words(backpointer),
            cost,
            in_final,
            frames: self.frame,
        }
    }

    /// Pick the best finishing hypothesis (⊗ final weight; falling back to
    /// the best mid-graph token when every finisher was pruned) and trace
    /// its word sequence back through the arena.
    pub fn finish(self) -> DecodeResult {
        let (cost, backpointer, reached_final) = self.best_token();
        DecodeResult {
            words: self.trace_words(backpointer),
            cost,
            reached_final,
            stats: self.stats,
        }
    }

    /// `(cost, backpointer, reached_final)` of the current best hypothesis,
    /// preferring finishers (shared by [`SearchCore::partial`] and
    /// [`SearchCore::finish`]).
    fn best_token(&self) -> (f32, u32, bool) {
        let graph = &self.graph;
        let finisher = self
            .tokens
            .iter()
            .filter(|&&(s, _)| graph.is_final(s))
            .map(|&(s, tok)| (tok.cost + graph.final_weight(s).0, tok.backpointer))
            .min_by(|a, b| a.0.total_cmp(&b.0));
        match finisher {
            Some((cost, bp)) => (cost, bp, true),
            None => {
                let &(_, tok) = self
                    .tokens
                    .iter()
                    .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
                    .expect("token set is non-empty after every frame");
                (tok.cost, tok.backpointer, false)
            }
        }
    }

    /// Serialize the full mid-utterance search state — frame counter, word
    /// arena, active token set, and every [`DecodeStats`] field — at a
    /// frame boundary (between [`SearchCore::advance`] calls; the scratch
    /// merge map is empty there by construction). A core rebuilt by
    /// [`SearchCore::restore`] over the same graph continues the recursion
    /// **bit-for-bit**: same words, same cost bits, same per-frame stats
    /// (ISSUE 7 session checkpoint/migration).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        crate::wire::put_usize(out, self.frame);
        crate::wire::put_usize(out, self.arena.len());
        for link in &self.arena {
            crate::wire::put_u32(out, link.prev);
            crate::wire::put_u32(out, link.olabel);
        }
        crate::wire::put_usize(out, self.tokens.len());
        for &(state, tok) in &self.tokens {
            crate::wire::put_u32(out, state);
            crate::wire::put_f32(out, tok.cost);
            crate::wire::put_u32(out, tok.backpointer);
        }
        let s = &self.stats;
        let put_usizes = |out: &mut Vec<u8>, xs: &[usize]| {
            crate::wire::put_usize(out, xs.len());
            for &x in xs {
                crate::wire::put_usize(out, x);
            }
        };
        put_usizes(out, &s.active_tokens);
        put_usizes(out, &s.arcs_expanded);
        crate::wire::put_usize(out, s.best_cost.len());
        for &c in &s.best_cost {
            crate::wire::put_f32(out, c);
        }
        put_usizes(out, &s.table_occupancy);
        crate::wire::put_u64(out, s.evictions);
        crate::wire::put_u64(out, s.overflows);
        crate::wire::put_u64(out, s.table_reads);
        crate::wire::put_u64(out, s.table_writes);
        crate::wire::put_usize(out, s.frame_ns.len());
        for &ns in &s.frame_ns {
            crate::wire::put_u64(out, ns);
        }
    }

    /// Rebuild a search core from [`SearchCore::save_state`] bytes over
    /// `graph` — which must be the same graph the state was saved against
    /// (cheap structural checks reject the obvious mismatches; the graph
    /// itself is shared, not serialized).
    pub fn restore(graph: G, r: &mut crate::wire::Reader<'_>) -> Result<Self, Error> {
        let mut core = Self::new(graph)?;
        let bad = |what: String| Error::shape("SearchCore::restore", what);
        core.frame = r.usize()?;
        let arena_len = r.len(8)?;
        core.arena = Vec::with_capacity(arena_len);
        for _ in 0..arena_len {
            let prev = r.u32()?;
            let olabel = r.u32()?;
            if prev != NO_BACKPOINTER && prev as usize >= core.arena.len() {
                return Err(bad(format!("arena link points forward ({prev})")));
            }
            if olabel == EPSILON {
                return Err(bad("arena link with epsilon olabel".into()));
            }
            core.arena.push(WordLink { prev, olabel });
        }
        let num_tokens = r.len(12)?;
        if num_tokens == 0 && core.frame > 0 {
            return Err(bad("empty token set mid-utterance".into()));
        }
        let num_states = core.graph.num_states() as u32;
        core.tokens = Vec::with_capacity(num_tokens);
        let mut prev_state = None;
        for _ in 0..num_tokens {
            let state = r.u32()?;
            let cost = r.f32()?;
            let backpointer = r.u32()?;
            if state >= num_states {
                return Err(bad(format!("token state {state} not in graph")));
            }
            if prev_state.is_some_and(|p| p >= state) {
                return Err(bad("token set not strictly sorted by state".into()));
            }
            prev_state = Some(state);
            if backpointer != NO_BACKPOINTER && backpointer as usize >= arena_len {
                return Err(bad(format!("token backpointer {backpointer} out of arena")));
            }
            core.tokens.push((state, Token { cost, backpointer }));
        }
        let usizes = |r: &mut crate::wire::Reader<'_>| -> Result<Vec<usize>, Error> {
            let n = r.len(8)?;
            (0..n).map(|_| r.usize()).collect()
        };
        core.stats.active_tokens = usizes(r)?;
        core.stats.arcs_expanded = usizes(r)?;
        let n = r.len(4)?;
        core.stats.best_cost = (0..n).map(|_| r.f32()).collect::<Result<_, _>>()?;
        core.stats.table_occupancy = usizes(r)?;
        core.stats.evictions = r.u64()?;
        core.stats.overflows = r.u64()?;
        core.stats.table_reads = r.u64()?;
        core.stats.table_writes = r.u64()?;
        let n = r.len(8)?;
        core.stats.frame_ns = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        Ok(core)
    }

    /// Walk the arena from `backpointer` back to the utterance start.
    fn trace_words(&self, backpointer: u32) -> Vec<u32> {
        let mut words = Vec::new();
        let mut bp = backpointer;
        while bp != NO_BACKPOINTER {
            let link = &self.arena[bp as usize];
            words.push(link.olabel - 1);
            bp = link.prev;
        }
        words.reverse();
        words
    }
}

/// Min-merge a candidate into the frame's token map (the Viterbi ⊕).
fn upsert(next: &mut HashMap<u32, Candidate>, state: u32, cost: f32, parent: u32, olabel: u32) {
    let entry = next.entry(state).or_insert(Candidate {
        cost: f32::INFINITY,
        parent: NO_BACKPOINTER,
        olabel: EPSILON,
    });
    if cost < entry.cost {
        *entry = Candidate {
            cost,
            parent,
            olabel,
        };
    }
}

/// Decode one utterance's acoustic-cost matrix (`frames × classes`, from
/// [`crate::acoustic_costs`]) under any pruning policy, over any graph
/// source (eager `&Fst`, a shared handle, or a lazy composition).
pub fn decode_with_policy<G: GraphSource>(
    graph: G,
    costs: &Matrix,
    policy: &mut dyn PruningPolicy,
) -> Result<DecodeResult, Error> {
    let max_ilabel = graph.max_ilabel();
    if max_ilabel != EPSILON && label_class(max_ilabel) >= costs.cols() {
        return Err(Error::shape(
            "decode",
            format!(
                "graph consumes class {} but scores cover {} classes",
                label_class(max_ilabel),
                costs.cols()
            ),
        ));
    }
    let mut core = SearchCore::new(graph)?;
    for t in 0..costs.rows() {
        core.advance(costs.row(t), policy)?;
    }
    // Let stateful policies export their cumulative metrics (ISSUE 4);
    // a no-op for the plain beam and for every policy when tracing is off.
    policy.end_utterance();
    Ok(core.finish())
}

/// Decode under the classic beam policy (the [`BeamConfig`] entry point
/// every pre-ISSUE-3 call site uses).
pub fn decode<G: GraphSource>(
    graph: G,
    costs: &Matrix,
    config: &BeamConfig,
) -> Result<DecodeResult, Error> {
    let mut policy = BeamPolicy::new(config.beam);
    decode_with_policy(graph, costs, &mut policy)
}

/// Floor of the acoustic cost scale: with probabilities clamped at
/// [`PROB_FLOOR`], no single frame can cost more than this times the scale.
pub fn max_frame_cost(config: &BeamConfig) -> f32 {
    -config.acoustic_scale.abs() * PROB_FLOOR.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_wfst::{Arc, Fst, TropicalWeight};

    /// Two-state graph: class 0 or class 1 per frame, both looping; class 1
    /// arcs emit word 5 and lead to the only final state.
    fn toy_graph() -> Fst {
        let mut g = Fst::new();
        let s0 = g.add_state();
        let s1 = g.add_state();
        g.set_start(s0);
        g.set_final(s1, TropicalWeight::ONE);
        for (from, to) in [(s0, s0), (s1, s1)] {
            g.add_arc(
                from,
                Arc {
                    ilabel: 1,
                    olabel: EPSILON,
                    weight: TropicalWeight(0.1),
                    next: to,
                },
            );
        }
        for from in [s0, s1] {
            g.add_arc(
                from,
                Arc {
                    ilabel: 2,
                    olabel: 6, // word id 5
                    weight: TropicalWeight(0.1),
                    next: s1,
                },
            );
        }
        g
    }

    #[test]
    fn follows_the_cheap_path_and_reports_stats() {
        let g = toy_graph();
        // Frame costs make class 0 cheap for 2 frames, then class 1 cheap.
        let costs = Matrix::new(
            3,
            2,
            vec![
                0.1, 2.0, //
                0.1, 2.0, //
                2.0, 0.1,
            ],
        )
        .unwrap();
        let r = decode(&g, &costs, &BeamConfig::default()).unwrap();
        assert!(r.reached_final);
        assert_eq!(r.words, vec![5]);
        assert!((r.cost - (0.3 + 0.3)).abs() < 1e-5, "cost {}", r.cost);
        assert_eq!(r.stats.active_tokens.len(), 3);
        assert_eq!(r.stats.arcs_expanded[0], 2); // start state has 2 arcs
        assert!(r.stats.mean_hypotheses() > 0.0);
        // The plain beam has no hypothesis storage to account for.
        assert_eq!(r.stats.evictions, 0);
        assert_eq!(r.stats.overflows, 0);
        assert_eq!(r.stats.mean_table_occupancy(), 0.0);
    }

    #[test]
    fn tight_beam_prunes_tokens() {
        let g = toy_graph();
        let costs = Matrix::new(2, 2, vec![0.1, 5.0, 0.1, 5.0]).unwrap();
        let tight = decode(
            &g,
            &costs,
            &BeamConfig {
                beam: 0.5,
                ..BeamConfig::default()
            },
        )
        .unwrap();
        let wide = decode(&g, &costs, &BeamConfig::default()).unwrap();
        assert!(
            tight.stats.active_tokens.iter().sum::<usize>()
                < wide.stats.active_tokens.iter().sum::<usize>()
        );
        // Pruning everything that finishes still yields a result.
        assert!(!tight.reached_final || tight.cost <= wide.cost + 1e-6);
    }

    #[test]
    fn rejects_graphs_with_input_epsilons_or_missing_classes() {
        let mut g = toy_graph();
        let costs = Matrix::new(1, 2, vec![0.1, 0.1]).unwrap();
        g.add_arc(
            0,
            Arc {
                ilabel: EPSILON,
                olabel: EPSILON,
                weight: TropicalWeight::ONE,
                next: 0,
            },
        );
        assert!(matches!(
            decode(&g, &costs, &BeamConfig::default()).unwrap_err(),
            Error::Graph { .. }
        ));

        let g = toy_graph();
        let narrow = Matrix::new(1, 1, vec![0.1]).unwrap();
        assert!(matches!(
            decode(&g, &narrow, &BeamConfig::default()).unwrap_err(),
            Error::Shape { .. }
        ));
    }

    #[test]
    fn streaming_partials_track_the_best_hypothesis() {
        let g = toy_graph();
        let costs = Matrix::new(
            3,
            2,
            vec![
                0.1, 2.0, //
                0.1, 2.0, //
                2.0, 0.1,
            ],
        )
        .unwrap();
        // An owning core (the serving-session shape) over the same graph.
        let mut core = SearchCore::new(std::sync::Arc::new(g.clone())).unwrap();
        let mut policy = BeamPolicy::new(BeamConfig::default().beam);
        assert_eq!(core.partial().frames, 0);
        assert!(core.partial().words.is_empty());
        for t in 0..costs.rows() {
            core.advance(costs.row(t), &mut policy).unwrap();
        }
        let partial = core.partial();
        assert_eq!(partial.frames, 3);
        assert!(partial.in_final);
        assert_eq!(partial.words, vec![5]);
        // partial() is non-destructive: finish() agrees with the one-shot
        // decode bit for bit.
        let streamed = core.finish();
        let oneshot = decode(&g, &costs, &BeamConfig::default()).unwrap();
        assert_eq!(streamed.words, oneshot.words);
        assert_eq!(streamed.cost, oneshot.cost);
        assert_eq!(partial.cost, oneshot.cost);
    }

    #[test]
    fn zero_frames_decodes_to_the_empty_path() {
        let g = toy_graph();
        let costs = Matrix::zeros(0, 2);
        let r = decode(&g, &costs, &BeamConfig::default()).unwrap();
        assert!(r.words.is_empty());
        // Start state is not final in the toy graph.
        assert!(!r.reached_final);
    }

    /// A policy that rejects everything — the core must report the died-out
    /// frame as an error rather than panicking or returning an empty path.
    struct RejectAll;
    impl PruningPolicy for RejectAll {
        fn name(&self) -> &'static str {
            "reject-all"
        }
        fn admit(&mut self, _state: u32, _cost: f32) -> Admit {
            Admit::Reject
        }
        fn end_frame(&mut self) -> crate::FramePruneStats {
            crate::FramePruneStats::default()
        }
    }

    #[test]
    fn a_policy_that_rejects_everything_dies_cleanly() {
        let g = toy_graph();
        let costs = Matrix::new(1, 2, vec![0.1, 0.1]).unwrap();
        let err = decode_with_policy(&g, &costs, &mut RejectAll).unwrap_err();
        assert!(matches!(err, Error::Graph { .. }));
    }

    /// A policy that keeps only the single cheapest state per frame by
    /// evicting whatever it previously held — exercises `Admit::Replace`
    /// bookkeeping in the core.
    struct KeepOne {
        held: Option<(u32, f32)>,
    }
    impl PruningPolicy for KeepOne {
        fn name(&self) -> &'static str {
            "keep-one"
        }
        fn admit(&mut self, state: u32, cost: f32) -> Admit {
            match self.held {
                None => {
                    self.held = Some((state, cost));
                    Admit::Accept
                }
                Some((held_state, held_cost)) => {
                    if state == held_state {
                        if cost < held_cost {
                            self.held = Some((state, cost));
                            Admit::Accept
                        } else {
                            Admit::Reject
                        }
                    } else if cost < held_cost {
                        self.held = Some((state, cost));
                        Admit::Replace(held_state)
                    } else {
                        Admit::Reject
                    }
                }
            }
        }
        fn end_frame(&mut self) -> crate::FramePruneStats {
            let occupancy = usize::from(self.held.is_some());
            self.held = None;
            crate::FramePruneStats {
                occupancy,
                ..Default::default()
            }
        }
    }

    #[test]
    fn save_restore_mid_decode_finishes_bit_identical() {
        let g = toy_graph();
        let costs = Matrix::new(
            4,
            2,
            vec![
                0.1, 2.0, //
                0.1, 2.0, //
                2.0, 0.1, //
                0.1, 2.0,
            ],
        )
        .unwrap();
        let oneshot = decode(&g, &costs, &BeamConfig::default()).unwrap();
        // Interrupt after every possible frame boundary, including 0 and 4.
        for k in 0..=costs.rows() {
            let mut core = SearchCore::new(&g).unwrap();
            let mut policy = BeamPolicy::new(BeamConfig::default().beam);
            for t in 0..k {
                core.advance(costs.row(t), &mut policy).unwrap();
            }
            let mut bytes = Vec::new();
            core.save_state(&mut bytes);
            let mut r = crate::wire::Reader::new(&bytes);
            let mut restored = SearchCore::restore(&g, &mut r).unwrap();
            r.finish("test").unwrap();
            let mut policy = BeamPolicy::new(BeamConfig::default().beam);
            for t in k..costs.rows() {
                restored.advance(costs.row(t), &mut policy).unwrap();
            }
            let resumed = restored.finish();
            assert_eq!(resumed.words, oneshot.words, "k={k}");
            assert_eq!(resumed.cost.to_bits(), oneshot.cost.to_bits(), "k={k}");
            assert_eq!(resumed.stats.active_tokens, oneshot.stats.active_tokens);
            assert_eq!(resumed.stats.arcs_expanded, oneshot.stats.arcs_expanded);
        }
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let g = toy_graph();
        let costs = Matrix::new(1, 2, vec![0.1, 2.0]).unwrap();
        let mut core = SearchCore::new(&g).unwrap();
        let mut policy = BeamPolicy::new(BeamConfig::default().beam);
        core.advance(costs.row(0), &mut policy).unwrap();
        let mut bytes = Vec::new();
        core.save_state(&mut bytes);
        // Truncation fails cleanly.
        let mut r = crate::wire::Reader::new(&bytes[..bytes.len() - 3]);
        assert!(SearchCore::restore(&g, &mut r).is_err());
        // A token naming a state the graph does not have fails cleanly:
        // frame(8) + arena_len(8) + [arena...] + tokens_len(8) puts the
        // first token's state right after the token count.
        let mut r = crate::wire::Reader::new(&bytes);
        let _ = r.usize().unwrap();
        let arena_len = r.usize().unwrap();
        let state_off = 8 + 8 + arena_len * 8 + 8;
        let mut corrupt = bytes.clone();
        corrupt[state_off..state_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = crate::wire::Reader::new(&corrupt);
        assert!(SearchCore::restore(&g, &mut r).is_err());
    }

    #[test]
    fn replace_evicts_the_displaced_state_from_the_token_map() {
        let g = toy_graph();
        let costs = Matrix::new(
            3,
            2,
            vec![
                0.1, 2.0, //
                0.1, 2.0, //
                2.0, 0.1,
            ],
        )
        .unwrap();
        let r = decode_with_policy(&g, &costs, &mut KeepOne { held: None }).unwrap();
        // Exactly one token survives every frame.
        assert!(r.stats.active_tokens.iter().all(|&k| k == 1));
        assert_eq!(r.stats.table_occupancy, vec![1, 1, 1]);
        // Greedy single-token search still finds the word on this input.
        assert!(r.reached_final);
        assert_eq!(r.words, vec![5]);
    }
}
