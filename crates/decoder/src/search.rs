//! Frame-synchronous Viterbi beam search over the composed decoding graph.
//!
//! Token passing: each active graph state holds its best-path cost and a
//! backpointer into a word-emission arena. Because the decoding graph is
//! input-epsilon-free by construction (`darkside_wfst::build_decoding_graph`),
//! every frame advances every token by exactly one arc — there is no
//! epsilon-closure inner loop, which is what makes the per-frame hypothesis
//! count a faithful effort metric (the paper's Fig. 4 quantity).

use crate::{BeamConfig, PROB_FLOOR};
use darkside_error::Error;
use darkside_nn::Matrix;
use darkside_wfst::{label_class, Fst, EPSILON};
use std::collections::HashMap;

/// Per-frame search effort and quality traces (the paper's Fig. 4 inputs).
#[derive(Clone, Debug, Default)]
pub struct DecodeStats {
    /// Tokens alive after beam pruning, per frame.
    pub active_tokens: Vec<usize>,
    /// Arcs expanded (hypotheses explored), per frame.
    pub arcs_expanded: Vec<usize>,
    /// Best-path cost after each frame.
    pub best_cost: Vec<f32>,
}

impl DecodeStats {
    /// Mean hypotheses explored per frame — the Fig. 4 y-axis.
    pub fn mean_hypotheses(&self) -> f64 {
        if self.arcs_expanded.is_empty() {
            return 0.0;
        }
        self.arcs_expanded.iter().sum::<usize>() as f64 / self.arcs_expanded.len() as f64
    }
}

/// A decoded utterance.
#[derive(Clone, Debug)]
pub struct DecodeResult {
    /// Best-path word ids (decoding-graph olabels − 1).
    pub words: Vec<u32>,
    /// Total best-path cost (graph ⊗ acoustic ⊗ final).
    pub cost: f32,
    /// Whether the best path ended in a final state (false only when the
    /// beam pruned every finishing hypothesis; the best mid-graph token is
    /// returned so the pipeline can still score the utterance).
    pub reached_final: bool,
    pub stats: DecodeStats,
}

/// One active hypothesis: best cost into a state plus the index of its most
/// recent word emission in the backpointer arena.
#[derive(Clone, Copy)]
struct Token {
    cost: f32,
    backpointer: u32,
}

const NO_BACKPOINTER: u32 = u32::MAX;

/// A word emission: arena index of the previous emission + the word label.
struct WordLink {
    prev: u32,
    olabel: u32,
}

/// Decode one utterance's acoustic-cost matrix (`frames × classes`, from
/// [`crate::acoustic_costs`]) against the decoding graph.
pub fn decode(graph: &Fst, costs: &Matrix, config: &BeamConfig) -> Result<DecodeResult, Error> {
    let start = graph
        .start()
        .ok_or_else(|| Error::graph("decode", "graph has no start state".to_string()))?;
    if !graph.is_input_eps_free() {
        return Err(Error::graph(
            "decode",
            "graph has input epsilons; decode needs one frame per arc".to_string(),
        ));
    }
    let max_ilabel = (0..graph.num_states() as u32)
        .flat_map(|s| graph.arcs(s))
        .map(|a| a.ilabel)
        .max()
        .unwrap_or(EPSILON);
    if max_ilabel != EPSILON && label_class(max_ilabel) >= costs.cols() {
        return Err(Error::shape(
            "decode",
            format!(
                "graph consumes class {} but scores cover {} classes",
                label_class(max_ilabel),
                costs.cols()
            ),
        ));
    }

    let mut arena: Vec<WordLink> = Vec::new();
    let mut tokens: HashMap<u32, Token> = HashMap::new();
    tokens.insert(
        start,
        Token {
            cost: 0.0,
            backpointer: NO_BACKPOINTER,
        },
    );
    let mut stats = DecodeStats::default();

    for t in 0..costs.rows() {
        let frame = costs.row(t);
        // (cost, parent backpointer, pending word) per target state.
        let mut next: HashMap<u32, (f32, u32, u32)> = HashMap::new();
        let mut expanded = 0usize;
        for (&state, token) in &tokens {
            for arc in graph.arcs(state) {
                expanded += 1;
                let cost = token.cost + arc.weight.0 + frame[label_class(arc.ilabel)];
                let entry =
                    next.entry(arc.next)
                        .or_insert((f32::INFINITY, NO_BACKPOINTER, EPSILON));
                if cost < entry.0 {
                    *entry = (cost, token.backpointer, arc.olabel);
                }
            }
        }
        if next.is_empty() {
            return Err(Error::graph(
                "decode",
                format!("all hypotheses died at frame {t}"),
            ));
        }
        // Beam pruning around the frame's best, then materialize word links
        // for the survivors only (keeps the arena proportional to survivors).
        let best = next
            .values()
            .map(|&(c, _, _)| c)
            .fold(f32::INFINITY, f32::min);
        let cutoff = best + config.beam;
        tokens.clear();
        for (state, (cost, parent, olabel)) in next {
            if cost > cutoff {
                continue;
            }
            let backpointer = if olabel == EPSILON {
                parent
            } else {
                arena.push(WordLink {
                    prev: parent,
                    olabel,
                });
                (arena.len() - 1) as u32
            };
            tokens.insert(state, Token { cost, backpointer });
        }
        stats.active_tokens.push(tokens.len());
        stats.arcs_expanded.push(expanded);
        stats.best_cost.push(best);
    }

    // Prefer hypotheses that finish in a final state (⊗ final weight).
    let finisher = tokens
        .iter()
        .filter(|(&s, _)| graph.is_final(s))
        .map(|(&s, tok)| (tok.cost + graph.final_weight(s).0, tok.backpointer, s))
        .min_by(|a, b| a.0.total_cmp(&b.0));
    let (cost, backpointer, reached_final) = match finisher {
        Some((cost, bp, _)) => (cost, bp, true),
        None => {
            let (_, tok) = tokens
                .iter()
                .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
                .expect("token set is non-empty after every frame");
            (tok.cost, tok.backpointer, false)
        }
    };
    let mut words = Vec::new();
    let mut bp = backpointer;
    while bp != NO_BACKPOINTER {
        let link = &arena[bp as usize];
        words.push(link.olabel - 1);
        bp = link.prev;
    }
    words.reverse();
    Ok(DecodeResult {
        words,
        cost,
        reached_final,
        stats,
    })
}

/// Floor of the acoustic cost scale: with probabilities clamped at
/// [`PROB_FLOOR`], no single frame can cost more than this times the scale.
pub fn max_frame_cost(config: &BeamConfig) -> f32 {
    -config.acoustic_scale.abs() * PROB_FLOOR.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_wfst::{Arc, TropicalWeight};

    /// Two-state graph: class 0 or class 1 per frame, both looping; class 1
    /// arcs emit word 5 and lead to the only final state.
    fn toy_graph() -> Fst {
        let mut g = Fst::new();
        let s0 = g.add_state();
        let s1 = g.add_state();
        g.set_start(s0);
        g.set_final(s1, TropicalWeight::ONE);
        for (from, to) in [(s0, s0), (s1, s1)] {
            g.add_arc(
                from,
                Arc {
                    ilabel: 1,
                    olabel: EPSILON,
                    weight: TropicalWeight(0.1),
                    next: to,
                },
            );
        }
        for from in [s0, s1] {
            g.add_arc(
                from,
                Arc {
                    ilabel: 2,
                    olabel: 6, // word id 5
                    weight: TropicalWeight(0.1),
                    next: s1,
                },
            );
        }
        g
    }

    #[test]
    fn follows_the_cheap_path_and_reports_stats() {
        let g = toy_graph();
        // Frame costs make class 0 cheap for 2 frames, then class 1 cheap.
        let costs = Matrix::new(
            3,
            2,
            vec![
                0.1, 2.0, //
                0.1, 2.0, //
                2.0, 0.1,
            ],
        )
        .unwrap();
        let r = decode(&g, &costs, &BeamConfig::default()).unwrap();
        assert!(r.reached_final);
        assert_eq!(r.words, vec![5]);
        assert!((r.cost - (0.3 + 0.3)).abs() < 1e-5, "cost {}", r.cost);
        assert_eq!(r.stats.active_tokens.len(), 3);
        assert_eq!(r.stats.arcs_expanded[0], 2); // start state has 2 arcs
        assert!(r.stats.mean_hypotheses() > 0.0);
    }

    #[test]
    fn tight_beam_prunes_tokens() {
        let g = toy_graph();
        let costs = Matrix::new(2, 2, vec![0.1, 5.0, 0.1, 5.0]).unwrap();
        let tight = decode(
            &g,
            &costs,
            &BeamConfig {
                beam: 0.5,
                ..BeamConfig::default()
            },
        )
        .unwrap();
        let wide = decode(&g, &costs, &BeamConfig::default()).unwrap();
        assert!(
            tight.stats.active_tokens.iter().sum::<usize>()
                < wide.stats.active_tokens.iter().sum::<usize>()
        );
        // Pruning everything that finishes still yields a result.
        assert!(!tight.reached_final || tight.cost <= wide.cost + 1e-6);
    }

    #[test]
    fn rejects_graphs_with_input_epsilons_or_missing_classes() {
        let mut g = toy_graph();
        let costs = Matrix::new(1, 2, vec![0.1, 0.1]).unwrap();
        g.add_arc(
            0,
            Arc {
                ilabel: EPSILON,
                olabel: EPSILON,
                weight: TropicalWeight::ONE,
                next: 0,
            },
        );
        assert!(matches!(
            decode(&g, &costs, &BeamConfig::default()).unwrap_err(),
            Error::Graph { .. }
        ));

        let g = toy_graph();
        let narrow = Matrix::new(1, 1, vec![0.1]).unwrap();
        assert!(matches!(
            decode(&g, &narrow, &BeamConfig::default()).unwrap_err(),
            Error::Shape { .. }
        ));
    }

    #[test]
    fn zero_frames_decodes_to_the_empty_path() {
        let g = toy_graph();
        let costs = Matrix::zeros(0, 2);
        let r = decode(&g, &costs, &BeamConfig::default()).unwrap();
        assert!(r.words.is_empty());
        // Start state is not final in the toy graph.
        assert!(!r.reached_final);
    }
}
