//! Minimal little-endian byte codec for session checkpoints (ISSUE 7).
//!
//! The serving runtime serializes mid-utterance decoder state
//! ([`crate::SearchCore::save_state`]) and pruning-policy accounting
//! ([`crate::PruningPolicy::save_state`]) so a session can migrate between
//! scheduler shards — or survive a process — and finish **bit-for-bit**
//! identical to an uninterrupted run. No external serialization crates
//! (the workspace is zero-dependency by design), so the wire format is
//! spelled out here: fixed-width little-endian integers, `f32` as raw IEEE
//! bits (round-tripping costs exactly, including NaN payloads), lengths as
//! `u64`.
//!
//! Reads are checked: a [`Reader`] returns a `darkside-error` `Error` on
//! underflow instead of panicking, so a truncated or foreign byte blob
//! fails restore cleanly.

use darkside_error::Error;

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `usize` travels as `u64` so checkpoints are architecture-independent.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Raw IEEE-754 bits — restore reproduces the value exactly.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// A length-prefixed nested blob (e.g. a policy's state inside a session
/// checkpoint).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// A checked cursor over checkpoint bytes.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::shape(
                "wire",
                format!(
                    "checkpoint truncated: need {n} bytes, {} left",
                    self.remaining()
                ),
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, Error> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| Error::shape("wire", format!("length {v} exceeds this platform's usize")))
    }

    /// A length prefix about to drive an allocation: additionally bounded
    /// by the bytes actually left, so corrupt blobs cannot demand
    /// multi-gigabyte buffers before the decode fails anyway.
    pub fn len(&mut self, elem_bytes: usize) -> Result<usize, Error> {
        let n = self.usize()?;
        if n.saturating_mul(elem_bytes.max(1)) > self.remaining() {
            return Err(Error::shape(
                "wire",
                format!(
                    "checkpoint claims {n} elements but only {} bytes remain",
                    self.remaining()
                ),
            ));
        }
        Ok(n)
    }

    pub fn f32(&mut self) -> Result<f32, Error> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn bool(&mut self) -> Result<bool, Error> {
        Ok(self.take(1)?[0] != 0)
    }

    /// A length-prefixed nested blob written by [`put_bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8], Error> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Restore must consume everything it wrote; trailing garbage means
    /// the blob is not what the caller thinks it is.
    pub fn finish(self, context: &str) -> Result<(), Error> {
        if self.remaining() != 0 {
            return Err(Error::shape(
                context,
                format!("{} unconsumed bytes after restore", self.remaining()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_usize(&mut buf, 12345);
        put_f32(&mut buf, f32::from_bits(0x7FC0_1234)); // NaN with payload
        put_bool(&mut buf, true);
        put_bool(&mut buf, false);
        put_bytes(&mut buf, b"nested");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f32().unwrap().to_bits(), 0x7FC0_1234);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"nested");
        r.finish("test").unwrap();
    }

    #[test]
    fn underflow_and_trailing_bytes_are_errors() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut r = Reader::new(&buf);
        assert!(r.u64().is_err());
        let mut r = Reader::new(&buf);
        r.u32().unwrap();
        r.finish("test").unwrap();
        let r = Reader::new(&buf);
        assert!(r.finish("test").is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_usize(&mut buf, usize::MAX / 2);
        let mut r = Reader::new(&buf);
        assert!(r.len(8).is_err());
    }
}
