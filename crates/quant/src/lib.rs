//! # darkside-quant — int8 quantized scoring (ISSUE 10)
//!
//! The second-ever [`FrameScorer`](darkside_nn::FrameScorer) backend: a
//! trained `Mlp`/`PrunedMlp` quantized to symmetric int8 and served behind
//! the unchanged trait, so the decoder, the pipeline, and the sharded
//! server score through it with zero call-site changes — the proof that
//! the scoring trait is a real seam.
//!
//! Pieces:
//! * [`calibrate`] — one forward pass over a calibration set records each
//!   affine layer's max-abs input activation (the symmetric clip range).
//! * [`qgemm`] — int8 dense GEMM: i8 weights packed in `k`-major strips,
//!   activations sign-extended to i16 `madd` pairs, widening MAC into i32
//!   accumulators; scalar oracle + AVX2 runtime dispatch, **bit-exact**
//!   against each other, `nn.qgemm.*` trace counters.
//! * [`qbsr`] — quantized BSR: kept 8×8 tiles stored as 64-byte int8
//!   packed-A strips, reusing the same micro-kernel per block
//!   (`nn.qbsr_spmm.*` counters). 4× the f32 BSR's weight bandwidth.
//! * [`qmlp`] — [`QuantizedMlp`]: per-output-row weight scales, calibrated
//!   per-layer activation scales, dequantize once per output row; LDA and
//!   nonlinearities stay f32 dense, mirroring what pruning leaves dense.
//!
//! The accuracy cost is gated, not assumed away: `exp_fig7 --quantized`
//! holds quantized-vs-f32 WER to ≤ +0.5% absolute at 90% sparsity, and
//! `serve_load` sign-tests that the bandwidth win is a *throughput* win
//! over the f32 BSR path at equal sparsity.

pub mod calibrate;
pub mod qbsr;
pub mod qgemm;
pub mod qmlp;

pub use calibrate::{calibrate_mlp, Calibration};
pub use qbsr::QBsr;
pub use qgemm::{
    kpad_for, pack_activations_i8, pack_weights_i8, qgemm, qgemm_dequant, qgemm_ref,
    quantize_activations_i16, quantize_pack_activations, quantize_value, MAX_K, QMR, QNR,
};
pub use qmlp::{QWeights, QuantizedAffine, QuantizedMlp};
