//! Int8 GEMM kernels (ISSUE 10 tentpole): widening multiply-accumulate
//! into i32, `madd`-style, with a scalar oracle and AVX2 runtime dispatch.
//!
//! The layouts deliberately mirror the f32 substrate (`darkside_nn::gemm`
//! / `darkside_nn::sparse`):
//!
//! * **A (weights)** stays `i8` in memory — the 4× weight-bandwidth win —
//!   packed into [`QMR`]-row, `k`-major strips exactly like `pack_a`, so a
//!   quantized BSR block *is* a packed-A strip (see `crate::qbsr`).
//! * **B (activations)** is transient per call, so it is sign-extended to
//!   `i16` at pack time and interleaved in `k`-pairs: one 256-bit lane
//!   group holds `(b[2p][j], b[2p+1][j])` for eight output columns — the
//!   exact operand shape `_mm256_madd_epi16` consumes.
//!
//! Per `k`-pair the AVX2 tile converts 16 weight bytes to `i16`
//! (`_mm256_cvtepi8_epi16`), interleaves the two `k` rows, and issues one
//! `madd` + `add` per output row: each `madd` performs 8 × 2 widening
//! multiplies and a pairwise add straight into i32 lanes. On AVX-VNNI
//! hosts dispatch upgrades the pair to one fused `vpdpwssd` per row —
//! identical (non-saturating) arithmetic, half the accumulate ops.
//!
//! **Bit-exactness.** Saturation is confined to quantization
//! ([`quantize_value`] clamps to ±127, shared by every path); inside the
//! kernel the arithmetic is exact — `i16 × i16` products of i8-range
//! inputs are ≤ 16129, a `madd` pair sum is ≤ 32258, and i32 accumulation
//! of ≤ `2^15` such terms cannot wrap (guarded by [`MAX_K`]). Integer
//! addition is associative, so the AVX2 tile, the scalar tile, and the
//! naive oracle [`qgemm_ref`] agree **bit-for-bit** on every shape — the
//! property `tests/qprop.rs` pins, and a strictly stronger guarantee than
//! the f32 kernels' ascending-`k` rounding contract.

use darkside_trace as trace;

/// Micro-tile rows — matches the f32 GEMM's `MR`, so BSR tiles serve both.
pub const QMR: usize = 8;
/// Micro-tile columns (one AVX2 vector of i32 accumulators).
pub const QNR: usize = 8;

/// Largest supported reduction depth. `k` terms of ≤ 32258 each must fit
/// an i32 accumulator: `2^31 / 32258 > 66000`, bounded here at a round
/// power of two far above any model dimension in this workspace.
pub const MAX_K: usize = 1 << 16;

/// Work (in multiply-adds) below which spawning threads costs more than it
/// buys — the same constant the f32 kernels use.
const PARALLEL_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// Kernel-timing hook: same protocol as the f32 kernels' `timed_kernel`
/// (`nn.<kernel>.{ns,calls,flops}`), so quantized and f32 scoring cost land
/// in comparable trace metrics. Inactive trace costs one flag read.
#[inline]
pub(crate) fn timed<T>(kernel: &str, flops: u64, f: impl FnOnce() -> T) -> T {
    if !trace::active() {
        return f();
    }
    let t0 = trace::now_ns();
    let out = f();
    let ns = trace::now_ns().saturating_sub(t0);
    let mut name = String::with_capacity(3 + kernel.len() + 6);
    name.push_str("nn.");
    name.push_str(kernel);
    let base = name.len();
    name.push_str(".ns");
    trace::sample(&name, ns as f64);
    name.truncate(base);
    name.push_str(".calls");
    trace::counter(&name, 1);
    if flops > 0 {
        name.truncate(base);
        name.push_str(".flops");
        trace::counter(&name, flops);
    }
    out
}

/// Symmetric saturating quantization: `round(v / scale)` clamped to ±127.
/// This is the **only** place saturation happens — weights at ±max map to
/// ±127 exactly, activations beyond the calibrated clip range saturate
/// instead of wrapping. `scale` must be positive and finite.
#[inline]
pub fn quantize_value(v: f32, scale: f32) -> i8 {
    debug_assert!(scale > 0.0 && scale.is_finite());
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// `k` rounded up to a whole number of `madd` pairs.
#[inline]
pub fn kpad_for(k: usize) -> usize {
    k.next_multiple_of(2)
}

/// Pack a row-major `m×k` i8 matrix into [`QMR`]-row, `k`-major strips
/// (the `pack_a` layout, full-`k`, zero-padded to `kpad` rows and whole
/// strips): strip `ir` element `(row, p)` lives at
/// `(ir/QMR)*kpad*QMR + p*QMR + row`. `kpad` must be even and `>= k`.
pub fn pack_weights_i8(m: usize, k: usize, w: &[i8], kpad: usize) -> Vec<i8> {
    assert_eq!(w.len(), m * k, "pack_weights_i8: W is not {m}x{k}");
    assert!(kpad >= k && kpad.is_multiple_of(2), "pack_weights_i8: kpad");
    let strips = m.div_ceil(QMR);
    let mut pack = vec![0i8; strips * kpad * QMR];
    for i in 0..m {
        let strip = (i / QMR) * kpad * QMR;
        let row = i % QMR;
        for p in 0..k {
            pack[strip + p * QMR + row] = w[i * k + p];
        }
    }
    pack
}

/// Pack quantized activations `xq` (`n×k` row-major — batch rows, which is
/// `Bᵀ`) into [`QNR`]-column, `k`-pair-interleaved `i16` strips: strip `js`
/// pair `p2` holds `(xq[j][2p2], xq[j][2p2+1])` for the eight columns
/// `j = js*QNR ..`, at `js*kpad*QNR + p2*2*QNR + 2*jl + s` (`i16` units).
/// Zero-padded past `n`, `k`, up to `kpad` (even, `>= k`).
pub fn pack_activations_i8(n: usize, k: usize, xq: &[i8], kpad: usize) -> Vec<i16> {
    assert_eq!(xq.len(), n * k, "pack_activations_i8: X is not {n}x{k}");
    assert!(
        kpad >= k && kpad.is_multiple_of(2),
        "pack_activations_i8: kpad"
    );
    let strips = n.div_ceil(QNR);
    let mut pack = vec![0i16; strips * kpad * QNR];
    for j in 0..n {
        let strip = (j / QNR) * kpad * QNR;
        let jl = j % QNR;
        for p in 0..k {
            pack[strip + (p / 2) * 2 * QNR + 2 * jl + (p % 2)] = xq[j * k + p] as i16;
        }
    }
    pack
}

/// Elementwise [`quantize_value`] over a slice, widened to the `i16` the
/// madd pairs consume — AVX2 when available (bit-identical for finite
/// inputs), scalar otherwise. This is the serving hot path: scoring
/// quantizes `batch × in_dim` activations per affine layer, and a scalar
/// divide per element costs more than the integer GEMM it feeds.
pub fn quantize_activations_i16(x: &[f32], scale: f32, out: &mut [i16]) {
    assert_eq!(x.len(), out.len(), "quantize_activations_i16: lengths");
    debug_assert!(scale > 0.0 && scale.is_finite());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support checked; lengths asserted equal above.
        unsafe { avx2::quantize_i16(x, scale, out) };
        return;
    }
    for (q, &v) in out.iter_mut().zip(x) {
        *q = quantize_value(v, scale) as i16;
    }
}

/// Fused quantize-and-pack for the activation operand: one pass over the
/// f32 batch (`n×k` row-major) producing the [`pack_activations_i8`]
/// strip layout directly — vectorized quantization per row, then pure
/// `i16` moves with a sequential destination walk. Equivalent to
/// `pack_activations_i8(n, k, quantize_value(x), kpad)` but without the
/// intermediate i8 matrix or the second scalar pass.
pub fn quantize_pack_activations(
    n: usize,
    k: usize,
    x: &[f32],
    scale: f32,
    kpad: usize,
) -> Vec<i16> {
    assert_eq!(
        x.len(),
        n * k,
        "quantize_pack_activations: X is not {n}x{k}"
    );
    assert!(
        kpad >= k && kpad.is_multiple_of(2),
        "quantize_pack_activations: kpad"
    );
    let strips = n.div_ceil(QNR);
    let mut pack = vec![0i16; strips * kpad * QNR];
    let mut rowq = vec![0i16; k];
    for j in 0..n {
        quantize_activations_i16(&x[j * k..][..k], scale, &mut rowq);
        let strip = (j / QNR) * kpad * QNR;
        let jl = j % QNR;
        let dst = &mut pack[strip..strip + kpad * QNR];
        for (pair, group) in rowq.chunks_exact(2).zip(dst.chunks_exact_mut(2 * QNR)) {
            group[2 * jl] = pair[0];
            group[2 * jl + 1] = pair[1];
        }
        if !k.is_multiple_of(2) {
            // Odd k: the last element pairs with the zero pad.
            dst[(k / 2) * 2 * QNR + 2 * jl] = rowq[k - 1];
        }
    }
    pack
}

/// Naive oracle: `out[i*n + j] = Σ_p a[i*k+p] · bt[j*k+p]` widened to i32.
/// `a` is `m×k` row-major (weights), `bt` is `n×k` row-major (activations,
/// batch-major — `Bᵀ`). Integer accumulation is exact, so the packed
/// kernels must match this **bit-for-bit**. Do not "optimize" this.
pub fn qgemm_ref(m: usize, n: usize, k: usize, a: &[i8], bt: &[i8], out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "qgemm_ref: A is not {m}x{k}");
    assert_eq!(bt.len(), n * k, "qgemm_ref: Bt is not {n}x{k}");
    assert_eq!(out.len(), m * n, "qgemm_ref: C is not {m}x{n}");
    assert!(k <= MAX_K, "qgemm_ref: k {k} exceeds MAX_K");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += a[i * k + p] as i32 * bt[j * k + p] as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

/// `kernel(kpairs, a_strip, b_strip, acc)`: accumulate `kpairs` `k`-pairs
/// of one QMR-row × QNR-column tile into `acc` (adds — the caller zeroes).
pub(crate) type QTileKernel = unsafe fn(usize, &[i8], &[i16], &mut [[i32; QNR]; QMR]);

/// Portable tile body — the shape the AVX2 instantiation mirrors
/// instruction-for-instruction. Exact i32 arithmetic, so the match is
/// bitwise, not approximate.
#[inline(always)]
pub(crate) fn qtile_body(kpairs: usize, ap: &[i8], bp: &[i16], acc: &mut [[i32; QNR]; QMR]) {
    debug_assert!(ap.len() >= kpairs * 2 * QMR);
    debug_assert!(bp.len() >= kpairs * 2 * QNR);
    for p2 in 0..kpairs {
        let a = &ap[p2 * 2 * QMR..][..2 * QMR];
        let b = &bp[p2 * 2 * QNR..][..2 * QNR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let w0 = a[r] as i32;
            let w1 = a[QMR + r] as i32;
            for (j, accv) in accr.iter_mut().enumerate() {
                *accv += w0 * b[2 * j] as i32 + w1 * b[2 * j + 1] as i32;
            }
        }
    }
}

unsafe fn qtile_generic(kpairs: usize, ap: &[i8], bp: &[i16], acc: &mut [[i32; QNR]; QMR]) {
    qtile_body(kpairs, ap, bp, acc);
}

/// AVX2 building blocks, shared by the dense tile kernel here and the
/// block-sparse row kernel in `crate::qbsr` (which keeps the accumulators
/// register-resident across every kept block of a block-row).
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::{QMR, QNR};
    use core::arch::x86_64::*;

    /// Expand one `k`-pair's operands: 16 weight bytes at `ap` (rows 0..7
    /// at `2p`, then rows 0..7 at `2p+1`) sign-extended to `i16`
    /// (`cvtepi8_epi16`) and interleaved into per-row `(w[2p], w[2p+1])`
    /// i32 lanes (`unpacklo/hi` + broadcast), plus the interleaved B
    /// lane-group at `bp`.
    ///
    /// # Safety
    /// `ap` must be readable for 16 bytes, `bp` for 16 i16, and the CPU
    /// must support AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn expand_kpair(ap: *const i8, bp: *const i16) -> ([__m256i; QMR], __m256i) {
        const { assert!(QMR == 8 && QNR == 8) };
        // [r0@2p .. r7@2p, r0@2p+1 .. r7@2p+1] sign-extended to i16.
        let bytes = _mm_loadu_si128(ap as *const __m128i);
        let w16 = _mm256_cvtepi8_epi16(bytes);
        let lo = _mm256_castsi256_si128(w16);
        let hi = _mm256_extracti128_si256::<1>(w16);
        // Interleave into per-row (w[2p], w[2p+1]) i32 lanes.
        let il_lo = _mm_unpacklo_epi16(lo, hi); // rows 0..3
        let il_hi = _mm_unpackhi_epi16(lo, hi); // rows 4..7
        let bv = _mm256_loadu_si256(bp as *const __m256i);
        let w = [
            _mm256_broadcastd_epi32(il_lo),
            _mm256_broadcastd_epi32(_mm_shuffle_epi32::<0x55>(il_lo)),
            _mm256_broadcastd_epi32(_mm_shuffle_epi32::<0xAA>(il_lo)),
            _mm256_broadcastd_epi32(_mm_shuffle_epi32::<0xFF>(il_lo)),
            _mm256_broadcastd_epi32(il_hi),
            _mm256_broadcastd_epi32(_mm_shuffle_epi32::<0x55>(il_hi)),
            _mm256_broadcastd_epi32(_mm_shuffle_epi32::<0xAA>(il_hi)),
            _mm256_broadcastd_epi32(_mm_shuffle_epi32::<0xFF>(il_hi)),
        ];
        (w, bv)
    }

    /// One `madd` `k`-pair: [`expand_kpair`], then per output row one
    /// `_mm256_madd_epi16` + `_mm256_add_epi32` — 16 widening MACs per
    /// madd. All arithmetic exact (module docs).
    ///
    /// # Safety
    /// Same contract as [`expand_kpair`].
    #[target_feature(enable = "avx2")]
    #[inline]
    pub(crate) unsafe fn madd_kpair(ap: *const i8, bp: *const i16, vacc: &mut [__m256i; QMR]) {
        let (w, bv) = expand_kpair(ap, bp);
        for (acc, wr) in vacc.iter_mut().zip(w) {
            *acc = _mm256_add_epi32(*acc, _mm256_madd_epi16(wr, bv));
        }
    }

    /// One `k`-pair, AVX-VNNI form: `vpdpwssd` fuses the widening multiply,
    /// pair-add, and i32 accumulate of `madd` + `add` into one instruction
    /// per output row. `vpdpwssd` does **not** saturate (unlike
    /// `vpdpwssds`), so the arithmetic — and therefore every output bit —
    /// is identical to the madd path and the scalar oracle.
    ///
    /// # Safety
    /// Same contract as [`expand_kpair`], plus AVX-VNNI support.
    #[target_feature(enable = "avx2,avxvnni")]
    #[inline]
    pub(crate) unsafe fn madd_kpair_vnni(ap: *const i8, bp: *const i16, vacc: &mut [__m256i; QMR]) {
        let (w, bv) = expand_kpair(ap, bp);
        for (acc, wr) in vacc.iter_mut().zip(w) {
            *acc = _mm256_dpwssd_avx_epi32(*acc, wr, bv);
        }
    }

    /// `round(t)` with halves away from zero — the `f32::round` /
    /// [`super::quantize_value`] convention, which `vroundps`'s
    /// nearest-even mode does *not* match on exact `.5` fractions.
    /// Truncate, recover the (exact, for `|t| < 2²⁴`) fractional part,
    /// and bump magnitudes whose fraction reaches `0.5` by a signed one.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn round_half_away(t: __m256) -> __m256 {
        let sign = _mm256_set1_ps(-0.0);
        let tr = _mm256_round_ps(t, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        let fr = _mm256_sub_ps(t, tr);
        let bump = _mm256_cmp_ps(_mm256_andnot_ps(sign, fr), _mm256_set1_ps(0.5), _CMP_GE_OQ);
        let sone = _mm256_or_ps(_mm256_and_ps(t, sign), _mm256_set1_ps(1.0));
        _mm256_add_ps(tr, _mm256_and_ps(bump, sone))
    }

    /// Vectorized [`super::quantize_value`], widened to the `i16` the madd
    /// pairs consume: divide, round half-away, clamp to ±127, convert.
    /// Bit-identical to the scalar path for finite inputs (NaN activations
    /// are unspecified — the scalar maps them to 0, this path to ±127).
    ///
    /// # Safety
    /// Requires AVX2; `x` and `out` must be the same length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn quantize_i16(x: &[f32], scale: f32, out: &mut [i16]) {
        debug_assert_eq!(x.len(), out.len());
        let vscale = _mm256_set1_ps(scale);
        let vmax = _mm256_set1_ps(127.0);
        let vmin = _mm256_set1_ps(-127.0);
        let n = x.len();
        let mut i = 0;
        while i + 16 <= n {
            let t0 = _mm256_div_ps(_mm256_loadu_ps(x.as_ptr().add(i)), vscale);
            let t1 = _mm256_div_ps(_mm256_loadu_ps(x.as_ptr().add(i + 8)), vscale);
            let c0 = _mm256_max_ps(_mm256_min_ps(round_half_away(t0), vmax), vmin);
            let c1 = _mm256_max_ps(_mm256_min_ps(round_half_away(t1), vmax), vmin);
            // Integral and within ±127 by now: both conversions are exact.
            let pk = _mm256_packs_epi32(_mm256_cvtps_epi32(c0), _mm256_cvtps_epi32(c1));
            // packs interleaves 128-bit lanes: [a0..3 b0..3 | a4..7 b4..7].
            let fixed = _mm256_permute4x64_epi64(pk, 0b1101_1000);
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, fixed);
            i += 16;
        }
        for j in i..n {
            *out.get_unchecked_mut(j) = super::quantize_value(*x.get_unchecked(j), scale) as i16;
        }
    }

    /// Transpose-and-dequantize one **full** 8×8 accumulator tile straight
    /// into the batch-major f32 output: classic 8×8 register transpose
    /// (unpack/shuffle/permute network), then per batch column
    /// `cvtdq2ps · scale + bias` with separate mul/add (no FMA contraction
    /// — the scalar spill compiles to mul+add, and the two must stay
    /// bit-identical). `out[(col0+c)·m + row0 + r]` gets row `r`'s value.
    ///
    /// # Safety
    /// Requires AVX2; the tile must be full (`mr_eff == nr_eff == 8`),
    /// `out` must cover `(col0+8)·m`, and `scale`/`bias` must have 8
    /// elements from `row0`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn spill_dequant_full(
        acc: &[[i32; QNR]; QMR],
        out: *mut f32,
        m: usize,
        row0: usize,
        col0: usize,
        scale: *const f32,
        bias: *const f32,
    ) {
        const { assert!(QMR == 8 && QNR == 8) };
        let r =
            |i: usize| _mm256_castsi256_ps(_mm256_loadu_si256(acc[i].as_ptr() as *const __m256i));
        let (r0, r1, r2, r3) = (r(0), r(1), r(2), r(3));
        let (r4, r5, r6, r7) = (r(4), r(5), r(6), r(7));
        let t0 = _mm256_unpacklo_ps(r0, r1);
        let t1 = _mm256_unpackhi_ps(r0, r1);
        let t2 = _mm256_unpacklo_ps(r2, r3);
        let t3 = _mm256_unpackhi_ps(r2, r3);
        let t4 = _mm256_unpacklo_ps(r4, r5);
        let t5 = _mm256_unpackhi_ps(r4, r5);
        let t6 = _mm256_unpacklo_ps(r6, r7);
        let t7 = _mm256_unpackhi_ps(r6, r7);
        let s0 = _mm256_shuffle_ps::<0x44>(t0, t2);
        let s1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
        let s2 = _mm256_shuffle_ps::<0x44>(t1, t3);
        let s3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
        let s4 = _mm256_shuffle_ps::<0x44>(t4, t6);
        let s5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
        let s6 = _mm256_shuffle_ps::<0x44>(t5, t7);
        let s7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
        let cols = [
            _mm256_permute2f128_ps::<0x20>(s0, s4),
            _mm256_permute2f128_ps::<0x20>(s1, s5),
            _mm256_permute2f128_ps::<0x20>(s2, s6),
            _mm256_permute2f128_ps::<0x20>(s3, s7),
            _mm256_permute2f128_ps::<0x31>(s0, s4),
            _mm256_permute2f128_ps::<0x31>(s1, s5),
            _mm256_permute2f128_ps::<0x31>(s2, s6),
            _mm256_permute2f128_ps::<0x31>(s3, s7),
        ];
        let vscale = _mm256_loadu_ps(scale);
        let vbias = _mm256_loadu_ps(bias);
        for (c, col) in cols.into_iter().enumerate() {
            let acc_f = _mm256_cvtepi32_ps(_mm256_castps_si256(col));
            let y = _mm256_add_ps(_mm256_mul_ps(acc_f, vscale), vbias);
            _mm256_storeu_ps(out.add((col0 + c) * m + row0), y);
        }
    }

    /// Load a scalar accumulator tile into registers.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub(crate) unsafe fn load_acc(acc: &[[i32; QNR]; QMR]) -> [__m256i; QMR] {
        let mut vacc = [_mm256_setzero_si256(); QMR];
        for (row, accr) in acc.iter().enumerate() {
            vacc[row] = _mm256_loadu_si256(accr.as_ptr() as *const __m256i);
        }
        vacc
    }

    /// Spill the register accumulators back to the scalar tile.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub(crate) unsafe fn store_acc(vacc: &[__m256i; QMR], acc: &mut [[i32; QNR]; QMR]) {
        for (row, accr) in acc.iter_mut().enumerate() {
            _mm256_storeu_si256(accr.as_mut_ptr() as *mut __m256i, vacc[row]);
        }
    }
}

/// AVX2 tile instantiation: register-load the accumulators, run
/// [`avx2::madd_kpair`] per `k`-pair, spill once. Matches the scalar body
/// bit-for-bit (see module docs).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qtile_avx2(kpairs: usize, ap: &[i8], bp: &[i16], acc: &mut [[i32; QNR]; QMR]) {
    debug_assert!(ap.len() >= kpairs * 2 * QMR);
    debug_assert!(bp.len() >= kpairs * 2 * QNR);
    let mut vacc = avx2::load_acc(acc);
    for p2 in 0..kpairs {
        avx2::madd_kpair(
            ap.as_ptr().add(p2 * 2 * QMR),
            bp.as_ptr().add(p2 * 2 * QNR),
            &mut vacc,
        );
    }
    avx2::store_acc(&vacc, acc);
}

/// AVX-VNNI tile instantiation: same shape, fused multiply-accumulate.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,avxvnni")]
unsafe fn qtile_vnni(kpairs: usize, ap: &[i8], bp: &[i16], acc: &mut [[i32; QNR]; QMR]) {
    debug_assert!(ap.len() >= kpairs * 2 * QMR);
    debug_assert!(bp.len() >= kpairs * 2 * QNR);
    let mut vacc = avx2::load_acc(acc);
    for p2 in 0..kpairs {
        avx2::madd_kpair_vnni(
            ap.as_ptr().add(p2 * 2 * QMR),
            bp.as_ptr().add(p2 * 2 * QNR),
            &mut vacc,
        );
    }
    avx2::store_acc(&vacc, acc);
}

pub(crate) fn select_qtile_kernel() -> QTileKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avxvnni")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            return qtile_vnni;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return qtile_avx2;
        }
    }
    qtile_generic
}

/// Spill one accumulated tile into the `m×n` i32 output at `(row0, col0)`.
#[inline]
pub(crate) fn spill_tile(
    acc: &[[i32; QNR]; QMR],
    out: &mut [i32],
    n: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mr_eff) {
        let crow = &mut out[(row0 + r) * n + col0..][..nr_eff];
        crow.copy_from_slice(&accr[..nr_eff]);
    }
}

/// Transpose-and-dequantize one accumulated tile into the **batch-major**
/// f32 output: `out[(col0+c)·m + row0+r] = acc[r][c]·scale[row0+r] +
/// bias[row0+r]`. Scalar form — the AVX2 full-tile instantiation
/// ([`avx2::spill_dequant_full`]) must match it bit-for-bit (same
/// round-to-nearest i32→f32 conversion, same mul-then-add).
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn spill_tile_dequant(
    acc: &[[i32; QNR]; QMR],
    out: &mut [f32],
    m: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
    scale: &[f32],
    bias: &[f32],
) {
    let scale = &scale[row0..row0 + mr_eff];
    let bias = &bias[row0..row0 + mr_eff];
    for c in 0..nr_eff {
        let orow = &mut out[(col0 + c) * m + row0..][..mr_eff];
        for (r, dst) in orow.iter_mut().enumerate() {
            *dst = acc[r][c] as f32 * scale[r] + bias[r];
        }
    }
}

/// Returns whether the AVX2 full-tile dequantizing spill is usable on this
/// host (checked once per GEMM/SpMM call, not per tile).
#[inline]
pub(crate) fn dequant_spill_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// [`qgemm`] fused with dequantization: the same integer tile kernel, but
/// every accumulator tile is transposed and dequantized straight out of
/// registers into a **batch-major** f32 output (`out[j·m + i] =
/// acc_i32[i][j] · dq_scale[i] + bias[i]`) — no intermediate i32 matrix
/// and no second strided pass, which is what the serving forward needs
/// (scoring consumes batch rows, and the dequantize multiply has to
/// happen anyway). Single-threaded: the transposed spill interleaves row
/// bands in the output, and the serving hot path is the one-core case.
#[allow(clippy::too_many_arguments)]
pub fn qgemm_dequant(
    m: usize,
    n: usize,
    k: usize,
    kpad: usize,
    apack: &[i8],
    bpack: &[i16],
    dq_scale: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    assert!(kpad >= k && kpad.is_multiple_of(2), "qgemm_dequant: kpad");
    assert!(k <= MAX_K, "qgemm_dequant: k {k} exceeds MAX_K");
    let row_strips = m.div_ceil(QMR);
    let col_strips = n.div_ceil(QNR);
    assert_eq!(
        apack.len(),
        row_strips * kpad * QMR,
        "qgemm_dequant: A pack length"
    );
    assert_eq!(
        bpack.len(),
        col_strips * kpad * QNR,
        "qgemm_dequant: B pack length"
    );
    assert_eq!(out.len(), m * n, "qgemm_dequant: C is not {n}x{m}");
    assert_eq!(dq_scale.len(), m, "qgemm_dequant: one scale per output row");
    assert_eq!(bias.len(), m, "qgemm_dequant: one bias per output row");
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    timed("qgemm", flops as u64, || {
        if m == 0 || n == 0 {
            return;
        }
        let kernel = select_qtile_kernel();
        let fast_spill = dequant_spill_avx2();
        #[cfg(not(target_arch = "x86_64"))]
        let _ = fast_spill;
        let kpairs = kpad / 2;
        for ir in 0..row_strips {
            let row0 = ir * QMR;
            let mr_eff = QMR.min(m - row0);
            let ap = &apack[ir * kpad * QMR..][..kpad * QMR];
            for js in 0..col_strips {
                let col0 = js * QNR;
                let nr_eff = QNR.min(n - col0);
                let bp = &bpack[js * kpad * QNR..][..kpad * QNR];
                let mut acc = [[0i32; QNR]; QMR];
                // SAFETY: AVX2/VNNI variants are only dispatched after
                // runtime feature detection succeeded.
                unsafe { kernel(kpairs, ap, bp, &mut acc) };
                #[cfg(target_arch = "x86_64")]
                if fast_spill && mr_eff == QMR && nr_eff == QNR {
                    // SAFETY: AVX2 detected; the tile is full, so the
                    // writes stay inside `out` and the 8-row scale/bias
                    // loads inside their slices.
                    unsafe {
                        avx2::spill_dequant_full(
                            &acc,
                            out.as_mut_ptr(),
                            m,
                            row0,
                            col0,
                            dq_scale.as_ptr().add(row0),
                            bias.as_ptr().add(row0),
                        )
                    };
                    continue;
                }
                spill_tile_dequant(&acc, out, m, row0, col0, mr_eff, nr_eff, dq_scale, bias);
            }
        }
    });
}

/// Packed int8 GEMM: `C_i32 = A_i8 · B_i8ᵀ` where `apack` is
/// [`pack_weights_i8`] output (`m×k` weights), `bpack` is
/// [`pack_activations_i8`] output (`n×k` activations), both padded to the
/// same even `kpad`, and `out` is `m×n` row-major i32. Row strips are
/// dealt to `std::thread::scope` workers above the spawn-amortization
/// threshold — rows are independent and integer accumulation is exact, so
/// threading cannot change a single bit.
pub fn qgemm(
    m: usize,
    n: usize,
    k: usize,
    kpad: usize,
    apack: &[i8],
    bpack: &[i16],
    out: &mut [i32],
) {
    assert!(kpad >= k && kpad.is_multiple_of(2), "qgemm: kpad");
    assert!(k <= MAX_K, "qgemm: k {k} exceeds MAX_K");
    let row_strips = m.div_ceil(QMR);
    let col_strips = n.div_ceil(QNR);
    assert_eq!(apack.len(), row_strips * kpad * QMR, "qgemm: A pack length");
    assert_eq!(bpack.len(), col_strips * kpad * QNR, "qgemm: B pack length");
    assert_eq!(out.len(), m * n, "qgemm: C is not {m}x{n}");
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    timed("qgemm", flops as u64, || {
        out.fill(0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let kernel = select_qtile_kernel();
        let kpairs = kpad / 2;
        let run_strip = |ir: usize, band: &mut [i32]| {
            let mr_eff = band.len() / n;
            let ap = &apack[ir * kpad * QMR..][..kpad * QMR];
            for js in 0..col_strips {
                let col0 = js * QNR;
                let nr_eff = QNR.min(n - col0);
                let bp = &bpack[js * kpad * QNR..][..kpad * QNR];
                let mut acc = [[0i32; QNR]; QMR];
                // SAFETY: the kernel only requires its target features when
                // it is the AVX2 instantiation, which select_qtile_kernel()
                // only returns after runtime detection succeeded.
                unsafe { kernel(kpairs, ap, bp, &mut acc) };
                spill_tile(&acc, band, n, 0, col0, mr_eff, nr_eff);
            }
        };
        let threads = if flops >= PARALLEL_FLOP_THRESHOLD {
            std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .clamp(1, row_strips)
        } else {
            1
        };
        if threads == 1 {
            for (ir, band) in out.chunks_mut(QMR * n).enumerate() {
                run_strip(ir, band);
            }
        } else {
            let mut assignments: Vec<Vec<(usize, &mut [i32])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (ir, band) in out.chunks_mut(QMR * n).enumerate() {
                assignments[ir % threads].push((ir, band));
            }
            std::thread::scope(|scope| {
                for bands in assignments {
                    scope.spawn(|| {
                        for (ir, band) in bands {
                            run_strip(ir, band);
                        }
                    });
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_nn::Rng;

    fn random_i8(rng: &mut Rng, len: usize) -> Vec<i8> {
        (0..len)
            .map(|_| (rng.uniform(-127.4, 127.4)) as i8)
            .collect()
    }

    #[test]
    fn packed_qgemm_matches_oracle_bitwise() {
        let mut rng = Rng::new(0x0108);
        for (m, n, k) in [(8, 8, 8), (16, 24, 32), (17, 9, 13), (1, 1, 1), (5, 3, 7)] {
            let a = random_i8(&mut rng, m * k);
            let bt = random_i8(&mut rng, n * k);
            let kpad = kpad_for(k);
            let apack = pack_weights_i8(m, k, &a, kpad);
            let bpack = pack_activations_i8(n, k, &bt, kpad);
            let mut want = vec![0i32; m * n];
            qgemm_ref(m, n, k, &a, &bt, &mut want);
            let mut got = vec![7i32; m * n];
            qgemm(m, n, k, kpad, &apack, &bpack, &mut got);
            assert_eq!(got, want, "qgemm {m}x{k}x{n}");
        }
    }

    /// Every compiled-in tile tier must match the oracle — not just the
    /// one dispatch would pick, so the madd tier stays pinned on VNNI
    /// hosts and vice versa.
    #[test]
    fn all_available_tile_kernels_match_bitwise() {
        let mut rng = Rng::new(0x0109);
        let mut kernels: Vec<(&str, QTileKernel)> = vec![("generic", qtile_generic)];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                kernels.push(("avx2", qtile_avx2));
            }
            if std::arch::is_x86_feature_detected!("avxvnni")
                && std::arch::is_x86_feature_detected!("avx2")
            {
                kernels.push(("vnni", qtile_vnni));
            }
        }
        let k = 14;
        let kpad = kpad_for(k);
        let a = random_i8(&mut rng, QMR * k);
        let bt = random_i8(&mut rng, QNR * k);
        let apack = pack_weights_i8(QMR, k, &a, kpad);
        let bpack = pack_activations_i8(QNR, k, &bt, kpad);
        let mut want = vec![0i32; QMR * QNR];
        qgemm_ref(QMR, QNR, k, &a, &bt, &mut want);
        for (name, kernel) in kernels {
            let mut acc = [[0i32; QNR]; QMR];
            // SAFETY: each variant is only pushed after its feature check.
            unsafe { kernel(kpad / 2, &apack, &bpack, &mut acc) };
            let got: Vec<i32> = acc.iter().flatten().copied().collect();
            assert_eq!(got, want, "{name} tile vs oracle");
        }
    }

    #[test]
    fn zero_dimensions_are_noops() {
        let mut out = vec![3i32; 6];
        qgemm(2, 3, 0, 0, &[], &[], &mut out);
        assert_eq!(out, vec![0; 6]); // k = 0 means C = 0, not "untouched"
        qgemm(0, 0, 4, 4, &[], &[], &mut []);
    }

    #[test]
    fn quantize_saturates_at_clip() {
        assert_eq!(quantize_value(0.0, 1.0), 0);
        assert_eq!(quantize_value(127.0, 1.0), 127);
        assert_eq!(quantize_value(-127.0, 1.0), -127);
        assert_eq!(quantize_value(1e9, 1.0), 127); // saturate, never wrap
        assert_eq!(quantize_value(-1e9, 1.0), -127);
        assert_eq!(quantize_value(0.5, 1.0), 1); // round half away from zero
        assert_eq!(quantize_value(-0.5, 1.0), -1);
    }
}
