//! Symmetric scale calibration (ISSUE 10): one forward pass over a
//! calibration set, recording the max-abs input activation of every
//! affine layer.
//!
//! Symmetric int8 quantization needs exactly one statistic per tensor:
//! the clip range. Weights are static, so their per-row ranges are read
//! straight off the matrix at quantization time; activations are dynamic,
//! so their per-layer range is *calibrated* — measured over representative
//! data (the pipeline feeds a seeded training-set sample) and frozen into
//! the quantized model. Activations beyond the calibrated range at serving
//! time saturate at ±127 instead of wrapping.
//!
//! Determinism: the walk below is a pure fold of `f32::max` over the same
//! dense forward pass the f32 scorer runs — same model + same calibration
//! features ⇒ bit-identical scales, which `tests/qprop.rs` pins.

use darkside_nn::{Layer, Matrix, Mlp};

/// Per-layer activation ranges observed on a calibration set.
#[derive(Clone, Debug, PartialEq)]
pub struct Calibration {
    /// Aligned with `Mlp::layers`: `Some(max_abs_input)` for every
    /// quantizable (`Layer::Affine`) layer, `None` elsewhere. The LDA
    /// front-end and the nonlinearities stay f32, mirroring what pruning
    /// leaves dense.
    pub layer_max: Vec<Option<f32>>,
}

impl Calibration {
    /// Number of layers this calibration covers.
    pub fn num_layers(&self) -> usize {
        self.layer_max.len()
    }

    /// Number of quantizable layers observed.
    pub fn num_quantizable(&self) -> usize {
        self.layer_max.iter().flatten().count()
    }
}

/// Largest `|v|` in a matrix (0.0 for an empty one).
fn max_abs(x: &Matrix) -> f32 {
    x.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()))
}

/// Run `features` (`batch × input_dim`) through `mlp`, recording the
/// max-abs *input* seen by each `Layer::Affine`. The forward pass is the
/// model's own — calibration observes exactly the activations scoring
/// produces.
pub fn calibrate_mlp(mlp: &Mlp, features: &Matrix) -> Calibration {
    assert_eq!(
        features.cols(),
        mlp.input_dim(),
        "calibrate_mlp: features are {}-dim, model wants {}",
        features.cols(),
        mlp.input_dim()
    );
    let mut layer_max = Vec::with_capacity(mlp.layers.len());
    let mut x = features.clone();
    for layer in &mlp.layers {
        layer_max.push(match layer {
            Layer::Affine(_) => Some(max_abs(&x)),
            _ => None,
        });
        x = layer.forward(x);
    }
    Calibration { layer_max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_nn::Rng;

    #[test]
    fn calibration_covers_exactly_the_affine_layers() {
        let mut rng = Rng::new(11);
        let mlp = Mlp::kaldi_style(20, 32, 4, 2, 9, &mut rng);
        let feats = darkside_nn::check::random_matrix(&mut rng, 6, 20, 1.0);
        let calib = calibrate_mlp(&mlp, &feats);
        assert_eq!(calib.num_layers(), mlp.layers.len());
        // kaldi_style: Lda, then per block Affine+PNorm+Renormalize, then
        // Affine+Softmax — 3 quantizable affines for 2 blocks.
        assert_eq!(calib.num_quantizable(), 3);
        for (layer, m) in mlp.layers.iter().zip(&calib.layer_max) {
            assert_eq!(m.is_some(), matches!(layer, Layer::Affine(_)));
            if let Some(m) = m {
                assert!(*m > 0.0 && m.is_finite());
            }
        }
    }

    #[test]
    fn calibration_is_deterministic_to_the_bit() {
        let mut rng = Rng::new(0xCA_11B);
        let mlp = Mlp::kaldi_style(16, 24, 4, 1, 5, &mut rng);
        let feats = darkside_nn::check::random_matrix(&mut rng, 8, 16, 2.0);
        let a = calibrate_mlp(&mlp, &feats);
        let b = calibrate_mlp(&mlp, &feats);
        for (x, y) in a.layer_max.iter().zip(&b.layer_max) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (None, None) => {}
                _ => panic!("layer coverage mismatch"),
            }
        }
    }
}
