//! Quantized block-sparse weights: kept 8×8 tiles stored as int8 packed-A
//! strips (ISSUE 10).
//!
//! A [`QBsr`] block is 64 **bytes** where the f32 `Bsr` block is 256 — the
//! 4× weight-bandwidth cut that compounds with block sparsity's index
//! compression. The in-block layout is `k`-major (`blocks[bi*64 + p*QMR +
//! r]`), i.e. each block *is* one [`crate::qgemm`] packed-A strip segment,
//! so the SpMM reuses the dense int8 `madd` sequence per block with zero
//! repacking — the same trick the f32 BSR plays with the f32 GEMM tile.
//! The row kernel keeps all eight accumulator vectors register-resident
//! across every kept block of a block-row: at 4 `k`-pairs per 64-byte
//! block, spilling the 256-byte accumulator tile per block would move
//! more bytes than the weights it saves.
//!
//! Keep/drop is decided on the **f32** values (any nonzero entry keeps the
//! tile — the `Bsr::from_dense` rule), not on the quantized bytes: a tiny
//! weight that rounds to zero must not change the block topology, or the
//! quantized and f32 serving paths would disagree about sparsity.

use crate::qgemm::{dequant_spill_avx2, spill_tile, spill_tile_dequant, timed, QMR, QNR};
use darkside_nn::Matrix;

/// Block edge — fixed at the register tile, like the f32 `Bsr`.
const BLOCK: usize = 8;
/// i8 bytes per block (`BLOCK × BLOCK`).
const BLOCK_BYTES: usize = BLOCK * BLOCK;
/// `madd` k-pairs per block.
const BLOCK_KPAIRS: usize = BLOCK / 2;

/// Spawn threads only above this many multiply-adds (matches the f32
/// kernels' spawn-amortization threshold).
const PARALLEL_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// `kernel(blocks, col_idx, bstrip, acc)`: accumulate every kept block of
/// one block-row into `acc` (adds — the caller zeroes). `blocks` holds the
/// row's kept blocks back to back, `col_idx[bi]` the block-column of
/// `blocks[bi*64..]`, `bstrip` one QNR-column activation strip.
type QRowKernel = unsafe fn(&[i8], &[u32], &[i16], &mut [[i32; QNR]; QMR]);

unsafe fn qrow_generic(
    blocks: &[i8],
    col_idx: &[u32],
    bstrip: &[i16],
    acc: &mut [[i32; QNR]; QMR],
) {
    for (bi, &jb) in col_idx.iter().enumerate() {
        let ap = &blocks[bi * BLOCK_BYTES..][..BLOCK_BYTES];
        let bp = &bstrip[jb as usize * BLOCK * QNR..][..BLOCK * QNR];
        crate::qgemm::qtile_body(BLOCK_KPAIRS, ap, bp, acc);
    }
}

/// AVX2 row kernel: the accumulators stay in registers across **all** kept
/// blocks of the row — at 4 `k`-pairs per 64-byte block, spilling the 8
/// accumulator vectors per block would move more bytes than the weights
/// themselves. Same `madd` sequence as the dense tile, so still bit-exact.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qrow_avx2(blocks: &[i8], col_idx: &[u32], bstrip: &[i16], acc: &mut [[i32; QNR]; QMR]) {
    use crate::qgemm::avx2;
    debug_assert!(blocks.len() >= col_idx.len() * BLOCK_BYTES);
    let mut vacc = avx2::load_acc(acc);
    for (bi, &jb) in col_idx.iter().enumerate() {
        debug_assert!(bstrip.len() >= (jb as usize + 1) * BLOCK * QNR);
        let ap = blocks.as_ptr().add(bi * BLOCK_BYTES);
        let bp = bstrip.as_ptr().add(jb as usize * BLOCK * QNR);
        for p2 in 0..BLOCK_KPAIRS {
            avx2::madd_kpair(ap.add(p2 * 2 * QMR), bp.add(p2 * 2 * QNR), &mut vacc);
        }
    }
    avx2::store_acc(&vacc, acc);
}

/// AVX-VNNI row kernel: same block walk, fused multiply-accumulate.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,avxvnni")]
unsafe fn qrow_vnni(blocks: &[i8], col_idx: &[u32], bstrip: &[i16], acc: &mut [[i32; QNR]; QMR]) {
    use crate::qgemm::avx2;
    debug_assert!(blocks.len() >= col_idx.len() * BLOCK_BYTES);
    let mut vacc = avx2::load_acc(acc);
    for (bi, &jb) in col_idx.iter().enumerate() {
        debug_assert!(bstrip.len() >= (jb as usize + 1) * BLOCK * QNR);
        let ap = blocks.as_ptr().add(bi * BLOCK_BYTES);
        let bp = bstrip.as_ptr().add(jb as usize * BLOCK * QNR);
        for p2 in 0..BLOCK_KPAIRS {
            avx2::madd_kpair_vnni(ap.add(p2 * 2 * QMR), bp.add(p2 * 2 * QNR), &mut vacc);
        }
    }
    avx2::store_acc(&vacc, acc);
}

fn select_qrow_kernel() -> QRowKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avxvnni")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            return qrow_vnni;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return qrow_avx2;
        }
    }
    qrow_generic
}

/// Int8 block-sparse row storage, serving orientation (`out × in`),
/// fixed 8×8 blocks in packed-A strip layout.
#[derive(Clone, Debug)]
pub struct QBsr {
    rows: usize,
    cols: usize,
    /// `block_rows + 1` offsets into `col_idx`/`blocks`.
    row_ptr: Vec<u32>,
    /// Block-column index per kept block.
    col_idx: Vec<u32>,
    /// 64 bytes per kept block: `blocks[bi*64 + p*8 + r]` (k-major).
    blocks: Vec<i8>,
    /// Real (unpadded) weights covered by kept blocks.
    nnz: usize,
}

impl QBsr {
    /// Compress a masked dense matrix in serving orientation (`out × in`,
    /// zeros where pruned) to quantized BSR: tile `(ib, jb)` is kept iff
    /// any covered f32 entry is nonzero, and each kept entry `(o, i)` is
    /// quantized symmetrically with its output row's scale `w_scale[o]`.
    /// Edge blocks are zero-padded, exactly like `Bsr::from_dense`.
    pub fn from_dense_rows(wt: &Matrix, w_scale: &[f32]) -> Self {
        let (rows, cols) = (wt.rows(), wt.cols());
        assert_eq!(w_scale.len(), rows, "QBsr: one scale per output row");
        let brows = rows.div_ceil(BLOCK);
        let bcols = cols.div_ceil(BLOCK);
        let mut row_ptr = Vec::with_capacity(brows + 1);
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();
        let mut nnz = 0usize;
        row_ptr.push(0u32);
        for ib in 0..brows {
            for jb in 0..bcols {
                let mut keep = false;
                let mut real = 0usize;
                for r in 0..BLOCK.min(rows - ib * BLOCK) {
                    for p in 0..BLOCK.min(cols - jb * BLOCK) {
                        real += 1;
                        if wt.get(ib * BLOCK + r, jb * BLOCK + p) != 0.0 {
                            keep = true;
                        }
                    }
                }
                if !keep {
                    continue;
                }
                nnz += real;
                col_idx.push(jb as u32);
                let base = blocks.len();
                blocks.resize(base + BLOCK_BYTES, 0i8);
                for r in 0..BLOCK.min(rows - ib * BLOCK) {
                    let o = ib * BLOCK + r;
                    for p in 0..BLOCK.min(cols - jb * BLOCK) {
                        blocks[base + p * QMR + r] =
                            crate::qgemm::quantize_value(wt.get(o, jb * BLOCK + p), w_scale[o]);
                    }
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            blocks,
            nnz,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Kept blocks.
    pub fn num_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Real weights covered by kept blocks (element-mask notion, matching
    /// `Bsr::nnz`).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of real weights *not* covered by kept blocks.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz as f64 / total as f64
    }

    /// Weight-store footprint in bytes (blocks + block indices) — the
    /// quantity the bandwidth benches compare against the f32 BSR.
    pub fn weight_bytes(&self) -> usize {
        self.blocks.len()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.row_ptr.len() * std::mem::size_of::<u32>()
    }

    /// The `kpad` the activation pack must be padded to: whole blocks.
    pub fn kpad(&self) -> usize {
        self.cols.div_ceil(BLOCK) * BLOCK
    }

    /// `C_i32 = W_i8 · Xᵀ_i8` over kept blocks: `bpack` is
    /// [`crate::qgemm::pack_activations_i8`] output for the `n × cols`
    /// quantized activations at `kpad = self.kpad()`, `out` is `rows × n`
    /// row-major i32. Empty block-rows leave their output band zero. Block
    /// rows are dealt round-robin to scoped threads above the
    /// spawn-amortization threshold; i32 accumulation is exact, so neither
    /// threading nor the AVX2/scalar dispatch changes a bit.
    pub fn spmm(&self, n: usize, bpack: &[i16], out: &mut [i32]) {
        let kpad = self.kpad();
        assert_eq!(
            bpack.len(),
            n.div_ceil(QNR) * kpad * QNR,
            "QBsr::spmm: activation pack length"
        );
        assert_eq!(out.len(), self.rows * n, "QBsr::spmm: C shape");
        let flops = 2usize
            .saturating_mul(self.num_blocks())
            .saturating_mul(BLOCK_BYTES)
            .saturating_mul(n);
        timed("qbsr_spmm", flops as u64, || {
            out.fill(0);
            if n == 0 || self.num_blocks() == 0 {
                return;
            }
            let kernel = select_qrow_kernel();
            let col_strips = n.div_ceil(QNR);
            let run_block_row = |ib: usize, band: &mut [i32]| {
                let mr_eff = band.len() / n;
                let (lo, hi) = (self.row_ptr[ib] as usize, self.row_ptr[ib + 1] as usize);
                if lo == hi {
                    return; // empty block-row: band stays zero
                }
                let blocks = &self.blocks[lo * BLOCK_BYTES..hi * BLOCK_BYTES];
                let cols = &self.col_idx[lo..hi];
                for js in 0..col_strips {
                    let col0 = js * QNR;
                    let nr_eff = QNR.min(n - col0);
                    let bstrip = &bpack[js * kpad * QNR..][..kpad * QNR];
                    let mut acc = [[0i32; QNR]; QMR];
                    // SAFETY: AVX2 variant only dispatched after runtime
                    // feature detection (select_qrow_kernel); every
                    // col_idx entry indexes a whole block inside bstrip.
                    unsafe { kernel(blocks, cols, bstrip, &mut acc) };
                    spill_tile(&acc, band, n, 0, col0, mr_eff, nr_eff);
                }
            };
            let brows = self.rows.div_ceil(BLOCK);
            let threads = if flops >= PARALLEL_FLOP_THRESHOLD {
                std::thread::available_parallelism()
                    .map_or(1, |p| p.get())
                    .clamp(1, brows)
            } else {
                1
            };
            if threads == 1 {
                for (ib, band) in out.chunks_mut(BLOCK * n).enumerate() {
                    run_block_row(ib, band);
                }
            } else {
                let mut assignments: Vec<Vec<(usize, &mut [i32])>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (ib, band) in out.chunks_mut(BLOCK * n).enumerate() {
                    assignments[ib % threads].push((ib, band));
                }
                std::thread::scope(|scope| {
                    for bands in assignments {
                        scope.spawn(|| {
                            for (ib, band) in bands {
                                run_block_row(ib, band);
                            }
                        });
                    }
                });
            }
        });
    }

    /// [`Self::spmm`] fused with dequantization: same row kernel, but each
    /// accumulator tile is transposed and dequantized straight into the
    /// **batch-major** f32 output (`out[j·rows + i] = acc[i][j] ·
    /// dq_scale[i] + bias[i]`) — no intermediate i32 matrix. The output is
    /// prefilled with the bias so empty block-rows read as pure bias, the
    /// exact value the two-pass path produced for their zero accumulators.
    /// Single-threaded, like [`crate::qgemm::qgemm_dequant`]: the
    /// transposed spill interleaves row bands in the output.
    pub fn spmm_dequant(
        &self,
        n: usize,
        bpack: &[i16],
        dq_scale: &[f32],
        bias: &[f32],
        out: &mut [f32],
    ) {
        let kpad = self.kpad();
        assert_eq!(
            bpack.len(),
            n.div_ceil(QNR) * kpad * QNR,
            "QBsr::spmm_dequant: activation pack length"
        );
        assert_eq!(out.len(), self.rows * n, "QBsr::spmm_dequant: C shape");
        assert_eq!(
            dq_scale.len(),
            self.rows,
            "QBsr::spmm_dequant: one scale per output row"
        );
        assert_eq!(
            bias.len(),
            self.rows,
            "QBsr::spmm_dequant: one bias per output row"
        );
        let flops = 2usize
            .saturating_mul(self.num_blocks())
            .saturating_mul(BLOCK_BYTES)
            .saturating_mul(n);
        timed("qbsr_spmm", flops as u64, || {
            if n == 0 || self.rows == 0 {
                return;
            }
            for batch_row in out.chunks_exact_mut(self.rows) {
                batch_row.copy_from_slice(bias);
            }
            if self.num_blocks() == 0 {
                return;
            }
            let kernel = select_qrow_kernel();
            let fast_spill = dequant_spill_avx2();
            #[cfg(not(target_arch = "x86_64"))]
            let _ = fast_spill;
            let col_strips = n.div_ceil(QNR);
            for ib in 0..self.rows.div_ceil(BLOCK) {
                let (lo, hi) = (self.row_ptr[ib] as usize, self.row_ptr[ib + 1] as usize);
                if lo == hi {
                    continue; // empty block-row: stays at the bias prefill
                }
                let row0 = ib * BLOCK;
                let mr_eff = BLOCK.min(self.rows - row0);
                let blocks = &self.blocks[lo * BLOCK_BYTES..hi * BLOCK_BYTES];
                let cols = &self.col_idx[lo..hi];
                for js in 0..col_strips {
                    let col0 = js * QNR;
                    let nr_eff = QNR.min(n - col0);
                    let bstrip = &bpack[js * kpad * QNR..][..kpad * QNR];
                    let mut acc = [[0i32; QNR]; QMR];
                    // SAFETY: AVX2/VNNI variants only dispatched after
                    // runtime feature detection; every col_idx entry
                    // indexes a whole block inside bstrip.
                    unsafe { kernel(blocks, cols, bstrip, &mut acc) };
                    #[cfg(target_arch = "x86_64")]
                    if fast_spill && mr_eff == QMR && nr_eff == QNR {
                        // SAFETY: AVX2 detected; full tile, so writes stay
                        // inside `out` and the 8-row scale/bias loads
                        // inside their slices.
                        unsafe {
                            crate::qgemm::avx2::spill_dequant_full(
                                &acc,
                                out.as_mut_ptr(),
                                self.rows,
                                row0,
                                col0,
                                dq_scale.as_ptr().add(row0),
                                bias.as_ptr().add(row0),
                            )
                        };
                        continue;
                    }
                    spill_tile_dequant(
                        &acc, out, self.rows, row0, col0, mr_eff, nr_eff, dq_scale, bias,
                    );
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgemm::{kpad_for, pack_activations_i8, qgemm_ref, quantize_value};
    use darkside_nn::Rng;

    /// Reference: quantize the dense matrix elementwise with the same
    /// per-row scales and run the naive oracle — but zero out dropped
    /// blocks first, since QBsr only stores kept tiles.
    fn qbsr_ref(wt: &Matrix, w_scale: &[f32], xq: &[i8], n: usize) -> Vec<i32> {
        let (rows, cols) = (wt.rows(), wt.cols());
        let mut wq = vec![0i8; rows * cols];
        for ib in 0..rows.div_ceil(BLOCK) {
            for jb in 0..cols.div_ceil(BLOCK) {
                let keep = (0..BLOCK.min(rows - ib * BLOCK)).any(|r| {
                    (0..BLOCK.min(cols - jb * BLOCK))
                        .any(|p| wt.get(ib * BLOCK + r, jb * BLOCK + p) != 0.0)
                });
                if !keep {
                    continue;
                }
                for r in 0..BLOCK.min(rows - ib * BLOCK) {
                    let o = ib * BLOCK + r;
                    for p in 0..BLOCK.min(cols - jb * BLOCK) {
                        let i = jb * BLOCK + p;
                        wq[o * cols + i] = quantize_value(wt.get(o, i), w_scale[o]);
                    }
                }
            }
        }
        let mut want = vec![0i32; rows * n];
        qgemm_ref(rows, n, cols, &wq, xq, &mut want);
        want
    }

    fn block_sparse_matrix(rng: &mut Rng, rows: usize, cols: usize, keep: f64) -> Matrix {
        let brows = rows.div_ceil(BLOCK);
        let bcols = cols.div_ceil(BLOCK);
        let kept: Vec<bool> = (0..brows * bcols).map(|_| rng.next_f64() < keep).collect();
        Matrix::from_fn(rows, cols, |o, i| {
            if kept[(o / BLOCK) * bcols + i / BLOCK] {
                rng.uniform(-2.0, 2.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn qbsr_spmm_matches_quantized_oracle_bitwise() {
        let mut rng = Rng::new(0xB5_10);
        for (rows, cols, n, keep) in [
            (16, 16, 8, 0.5),
            (24, 40, 13, 0.3),
            (17, 23, 5, 0.6), // ragged edge blocks
            (32, 32, 1, 0.1),
            (8, 8, 8, 0.0), // fully empty
        ] {
            let wt = block_sparse_matrix(&mut rng, rows, cols, keep);
            let w_scale: Vec<f32> = (0..rows).map(|_| rng.uniform(0.01, 0.05)).collect();
            let xq: Vec<i8> = (0..n * cols)
                .map(|_| rng.uniform(-127.4, 127.4) as i8)
                .collect();
            let q = QBsr::from_dense_rows(&wt, &w_scale);
            assert_eq!(q.kpad(), kpad_for(cols.div_ceil(BLOCK) * BLOCK));
            let bpack = pack_activations_i8(n, cols, &xq, q.kpad());
            let mut got = vec![9i32; rows * n];
            q.spmm(n, &bpack, &mut got);
            let want = qbsr_ref(&wt, &w_scale, &xq, n);
            assert_eq!(got, want, "qbsr {rows}x{cols} n={n} keep={keep}");
        }
    }

    #[test]
    fn empty_and_zero_batch_are_clean() {
        let wt = Matrix::zeros(16, 16);
        let q = QBsr::from_dense_rows(&wt, &[1.0; 16]);
        assert_eq!(q.num_blocks(), 0);
        assert_eq!(q.nnz(), 0);
        assert_eq!(q.sparsity(), 1.0);
        let mut out = vec![5i32; 16 * 4];
        let bpack = pack_activations_i8(4, 16, &[0i8; 64], q.kpad());
        q.spmm(4, &bpack, &mut out);
        assert_eq!(out, vec![0i32; 64]);
        q.spmm(0, &[], &mut []);
    }
}
