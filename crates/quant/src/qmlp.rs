//! Int8 quantized models behind the unchanged [`FrameScorer`] trait
//! (ISSUE 10 tentpole).
//!
//! [`QuantizedMlp`] mirrors `darkside_pruning::PrunedMlp` structurally:
//! affine layers are swapped for [`QuantizedAffine`] (int8 store, i32
//! accumulate, dequantize once per output row), everything else — LDA,
//! p-norm, renormalize, softmax — runs f32 dense, exactly the layers
//! pruning leaves dense. Quantizing an already-*masked* dense model (zeros
//! in place) yields the quantized-BSR serving path: dropped tiles are
//! all-zero in f32, so they are dropped from the [`QBsr`] topology too.
//!
//! Scale scheme (symmetric, zero-point-free):
//! * weights: per **output row** `w_scale[o] = max|w[o,·]| / 127` — rows
//!   are the natural grain in serving orientation, and per-row scales are
//!   what balanced block-rows need to not let one hot row flatten the rest;
//! * activations: per layer `x_scale = calibrated max / 127`
//!   ([`crate::calibrate`]); out-of-range serving activations saturate.
//!
//! The affine output is then `y = acc_i32 · (w_scale[o] · x_scale) + b[o]`
//! — one multiply-add per output element, after the integer GEMM.

use crate::calibrate::Calibration;
use crate::qbsr::QBsr;
use crate::qgemm::{
    kpad_for, pack_weights_i8, qgemm_dequant, quantize_pack_activations, quantize_value,
};
use darkside_error::Error;
use darkside_nn::{
    stack_frames, traced_score_frames, Affine, Frame, FrameScorer, Layer, Matrix, Mlp, Scores,
};
use darkside_pruning::PruneStructure;

/// The int8 weight store behind a [`QuantizedAffine`], serving orientation
/// (`out_dim × in_dim`).
#[derive(Clone, Debug)]
pub enum QWeights {
    /// Packed-strip dense i8 (unstructured or dense models).
    Dense { pack: Vec<i8>, kpad: usize },
    /// Kept 8×8 tiles as int8 packed-A strips (block-structured models).
    Bsr(QBsr),
}

impl QWeights {
    /// Bench/report label of the store in play.
    pub fn backend(&self) -> &'static str {
        match self {
            Self::Dense { .. } => "qdense",
            Self::Bsr(_) => "qbsr",
        }
    }

    /// Weight-store footprint in bytes (i8 payload + block indices).
    pub fn weight_bytes(&self) -> usize {
        match self {
            Self::Dense { pack, .. } => pack.len(),
            Self::Bsr(q) => q.weight_bytes(),
        }
    }
}

/// `Y = X · Wᵀ + b` computed in int8 with i32 accumulation.
#[derive(Clone, Debug)]
pub struct QuantizedAffine {
    in_dim: usize,
    out_dim: usize,
    store: QWeights,
    /// Calibrated activation scale for this layer's input.
    x_scale: f32,
    /// Precomputed `w_scale[o] · x_scale` (per-output-row symmetric weight
    /// scale `max|row| / 127`, 1.0 for all-zero rows, times the activation
    /// scale) — the one multiply per output element at dequantization.
    dq_scale: Vec<f32>,
    /// Bias stays f32 — it is added after dequantization.
    b: Vec<f32>,
}

impl QuantizedAffine {
    /// Quantize a dense layer (`dense.w` is `in_dim × out_dim`; apply any
    /// pruning mask *before* calling, zeros in place). `x_max` is the
    /// calibrated max-abs input activation; `tiled` selects the quantized
    /// BSR store (block-structured masks) over packed dense i8.
    pub fn from_affine(dense: &Affine, x_max: f32, tiled: bool) -> Self {
        let (in_dim, out_dim) = (dense.w.rows(), dense.w.cols());
        // Transpose while reading: serving wants output units on rows.
        let wt = Matrix::from_fn(out_dim, in_dim, |o, i| dense.w.get(i, o));
        let w_scale: Vec<f32> = (0..out_dim)
            .map(|o| {
                let m = wt.row(o).iter().fold(0.0f32, |m, v| m.max(v.abs()));
                if m > 0.0 {
                    m / 127.0
                } else {
                    1.0
                }
            })
            .collect();
        let x_scale = if x_max > 0.0 { x_max / 127.0 } else { 1.0 };
        let store = if tiled {
            QWeights::Bsr(QBsr::from_dense_rows(&wt, &w_scale))
        } else {
            let kpad = kpad_for(in_dim);
            let mut wq = vec![0i8; out_dim * in_dim];
            for o in 0..out_dim {
                for (i, q) in wq[o * in_dim..][..in_dim].iter_mut().enumerate() {
                    *q = quantize_value(wt.get(o, i), w_scale[o]);
                }
            }
            QWeights::Dense {
                pack: pack_weights_i8(out_dim, in_dim, &wq, kpad),
                kpad,
            }
        };
        let dq_scale = w_scale.iter().map(|ws| ws * x_scale).collect();
        Self {
            in_dim,
            out_dim,
            store,
            x_scale,
            dq_scale,
            b: dense.b.clone(),
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    pub fn store(&self) -> &QWeights {
        &self.store
    }

    /// Batched forward: fused quantize-and-pack over the activations (one
    /// vectorized pass), then the integer GEMM/SpMM on `Yᵀ = W · Xᵀ` with
    /// dequantization fused into the tile spill — each accumulator tile is
    /// transposed out of registers into the batch-major f32 output with
    /// the precomputed per-row scale and the bias applied. Everything
    /// around the kernel is one streaming pass — it has to stay cheap or
    /// it eats the int8 kernel's win (it did, before the fusion).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "QuantizedAffine: input dim");
        let batch = x.rows();
        let kpad = match &self.store {
            QWeights::Dense { kpad, .. } => *kpad,
            QWeights::Bsr(q) => q.kpad(),
        };
        let bpack = quantize_pack_activations(batch, self.in_dim, x.as_slice(), self.x_scale, kpad);
        let mut y = Matrix::zeros(batch, self.out_dim);
        match &self.store {
            QWeights::Dense { pack, kpad } => qgemm_dequant(
                self.out_dim,
                batch,
                self.in_dim,
                *kpad,
                pack,
                &bpack,
                &self.dq_scale,
                &self.b,
                y.as_mut_slice(),
            ),
            QWeights::Bsr(q) => {
                q.spmm_dequant(batch, &bpack, &self.dq_scale, &self.b, y.as_mut_slice())
            }
        }
        y
    }
}

/// One scoring layer of a [`QuantizedMlp`].
#[derive(Clone, Debug)]
enum QLayer {
    /// Kept f32 dense (LDA, nonlinearities, normalization).
    Dense(Layer),
    /// Int8-quantized affine.
    Quant(QuantizedAffine),
}

/// An [`Mlp`] with every affine layer quantized to int8 — the second-ever
/// [`FrameScorer`] backend.
#[derive(Clone, Debug)]
pub struct QuantizedMlp {
    layers: Vec<QLayer>,
    input_dim: usize,
    classes: usize,
}

impl QuantizedMlp {
    /// Quantize `mlp` with the activation ranges in `calib` (from
    /// [`crate::calibrate::calibrate_mlp`] on the *same* model). If
    /// `structure` is the 8×8 serving tile, affine weights go to quantized
    /// BSR — pass the already-masked model so dropped tiles are all-zero;
    /// any other structure (including unstructured masks and dense models)
    /// uses the packed dense i8 store.
    pub fn quantize(
        mlp: &Mlp,
        calib: &Calibration,
        structure: PruneStructure,
    ) -> Result<Self, Error> {
        if calib.num_layers() != mlp.layers.len() {
            return Err(Error::shape(
                "QuantizedMlp::quantize",
                format!(
                    "calibration covers {} layers, model has {}",
                    calib.num_layers(),
                    mlp.layers.len()
                ),
            ));
        }
        let tiled = structure.block_dims() == Some((8, 8));
        let mut layers = Vec::with_capacity(mlp.layers.len());
        for (idx, (layer, x_max)) in mlp.layers.iter().zip(&calib.layer_max).enumerate() {
            layers.push(match (layer, x_max) {
                (Layer::Affine(a), Some(x_max)) => {
                    QLayer::Quant(QuantizedAffine::from_affine(a, *x_max, tiled))
                }
                (Layer::Affine(_), None) => {
                    return Err(Error::shape(
                        "QuantizedMlp::quantize",
                        format!("layer {idx} is affine but has no calibrated range"),
                    ));
                }
                (other, _) => QLayer::Dense(other.clone()),
            });
        }
        Ok(Self {
            layers,
            input_dim: mlp.input_dim(),
            classes: mlp.output_dim(),
        })
    }

    /// Label of the quantized weight store in play (`qbsr` if any layer is
    /// block-sparse, else `qdense`).
    pub fn backend(&self) -> &'static str {
        for layer in &self.layers {
            if let QLayer::Quant(q) = layer {
                if matches!(q.store(), QWeights::Bsr(_)) {
                    return "qbsr";
                }
            }
        }
        "qdense"
    }

    /// Quantized affine layers.
    pub fn num_quantized(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, QLayer::Quant(_)))
            .count()
    }

    /// Total int8 weight-store footprint across quantized layers — 4× less
    /// than the f32 equivalent, the bandwidth win the benches measure.
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Quant(q) => q.store().weight_bytes(),
                QLayer::Dense(_) => 0,
            })
            .sum()
    }

    fn forward(&self, mut x: Matrix) -> Matrix {
        for layer in &self.layers {
            x = match layer {
                QLayer::Dense(l) => l.forward(x),
                QLayer::Quant(q) => q.forward(&x),
            };
        }
        x
    }
}

impl FrameScorer for QuantizedMlp {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    /// Batched scoring: one integer GEMM per affine for the whole
    /// utterance, under the shared `nn.score_frames.*` timing hook.
    fn score_frames(&self, frames: &[Frame]) -> Scores {
        traced_score_frames(frames.len(), || Scores {
            probs: self.forward(stack_frames(frames, self.input_dim)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate_mlp;
    use darkside_nn::check::random_matrix;
    use darkside_nn::Rng;

    fn quantized_pair(seed: u64, structure: PruneStructure) -> (Mlp, QuantizedMlp, Matrix) {
        let mut rng = Rng::new(seed);
        let mlp = Mlp::kaldi_style(24, 32, 4, 2, 9, &mut rng);
        let feats = random_matrix(&mut rng, 12, 24, 1.0);
        let calib = calibrate_mlp(&mlp, &feats);
        let q = QuantizedMlp::quantize(&mlp, &calib, structure).unwrap();
        (mlp, q, feats)
    }

    #[test]
    fn quantized_scoring_tracks_f32_scoring() {
        let (mlp, q, feats) = quantized_pair(0x51, PruneStructure::Unstructured);
        assert_eq!(q.backend(), "qdense");
        assert_eq!(q.num_quantized(), 3);
        assert_eq!(FrameScorer::input_dim(&q), 24);
        assert_eq!(q.num_classes(), 9);
        let frames: Vec<Frame> = (0..feats.rows())
            .map(|i| Frame(feats.row(i).to_vec()))
            .collect();
        let fs = mlp.score_frames(&frames);
        let qs = q.score_frames(&frames);
        // Softmax rows stay distributions and stay close to f32: int8 with
        // calibrated clips is a small perturbation, not a different model.
        for i in 0..frames.len() {
            let (fr, qr) = (fs.probs.row(i), qs.probs.row(i));
            let sum: f32 = qr.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
            let linf = fr
                .iter()
                .zip(qr)
                .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
            assert!(linf < 0.05, "row {i} drifted by {linf}");
        }
    }

    #[test]
    fn tiled_quantization_uses_the_bsr_store() {
        let (_, q, _) = quantized_pair(0x52, PruneStructure::tile());
        assert_eq!(q.backend(), "qbsr");
        assert!(q.weight_bytes() > 0);
    }

    #[test]
    fn calibration_shape_mismatch_is_rejected() {
        let mut rng = Rng::new(3);
        let mlp = Mlp::kaldi_style(16, 24, 4, 1, 5, &mut rng);
        let calib = Calibration {
            layer_max: vec![None; 2],
        };
        assert!(QuantizedMlp::quantize(&mlp, &calib, PruneStructure::Unstructured).is_err());
        let bad = Calibration {
            layer_max: vec![None; mlp.layers.len()],
        };
        assert!(QuantizedMlp::quantize(&mlp, &bad, PruneStructure::Unstructured).is_err());
    }
}
