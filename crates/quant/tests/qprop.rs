//! Property tests (ISSUE 10): the packed int8 kernels are **bit-exact**
//! against the scalar fixed-point oracle — not close, equal — over random
//! shapes (including `n = 0`, non-multiple-of-8 dims, and empty
//! block-rows), at the saturation edges (weights at ±127, activations at
//! the clip boundaries), and calibration is deterministic to the bit.

use darkside_nn::check::{random_matrix, run_cases};
use darkside_nn::{Matrix, Mlp, Rng};
use darkside_quant::{
    calibrate_mlp, kpad_for, pack_activations_i8, pack_weights_i8, qgemm, qgemm_dequant, qgemm_ref,
    quantize_activations_i16, quantize_pack_activations, quantize_value, QBsr,
};

fn random_i8(rng: &mut Rng, len: usize) -> Vec<i8> {
    (0..len).map(|_| rng.uniform(-127.4, 127.4) as i8).collect()
}

/// Oracle for the quantized-BSR path: quantize kept tiles elementwise with
/// the same per-row scales (any-f32-nonzero keep rule), then run the naive
/// i32 reference.
fn qbsr_oracle(wt: &Matrix, w_scale: &[f32], xq: &[i8], n: usize) -> Vec<i32> {
    let (rows, cols) = (wt.rows(), wt.cols());
    let mut wq = vec![0i8; rows * cols];
    for ib in 0..rows.div_ceil(8) {
        for jb in 0..cols.div_ceil(8) {
            let rs = ib * 8..rows.min(ib * 8 + 8);
            let cs = jb * 8..cols.min(jb * 8 + 8);
            let keep = rs.clone().any(|o| cs.clone().any(|i| wt.get(o, i) != 0.0));
            if !keep {
                continue;
            }
            for o in rs {
                for i in cs.clone() {
                    wq[o * cols + i] = quantize_value(wt.get(o, i), w_scale[o]);
                }
            }
        }
    }
    let mut want = vec![0i32; rows * n];
    qgemm_ref(rows, n, cols, &wq, xq, &mut want);
    want
}

#[test]
fn qgemm_is_bit_exact_over_random_shapes() {
    run_cases(0xDA2C_0010, 60, |rng, case| {
        // Deliberately off-tile shapes most of the time; every ~8th case
        // degenerates (n = 0, or single row/col).
        let (m, n, k) = if case % 8 == 7 {
            (1 + rng.below(16), 0, 1 + rng.below(16))
        } else {
            (1 + rng.below(40), 1 + rng.below(24), 1 + rng.below(70))
        };
        let a = random_i8(rng, m * k);
        let bt = random_i8(rng, n * k);
        let kpad = kpad_for(k);
        let apack = pack_weights_i8(m, k, &a, kpad);
        let bpack = pack_activations_i8(n, k, &bt, kpad);
        let mut want = vec![0i32; m * n];
        qgemm_ref(m, n, k, &a, &bt, &mut want);
        let mut got = vec![-1i32; m * n];
        qgemm(m, n, k, kpad, &apack, &bpack, &mut got);
        assert_eq!(got, want, "qgemm {m}x{k}x{n}");
    });
}

#[test]
fn qgemm_is_bit_exact_at_saturation_edges() {
    // All-extreme operands: every product is ±16129, every madd pair sum
    // ±32258 — the worst case for any i16 intermediate. Bit-equality here
    // proves the widening happens before accumulation on every path.
    run_cases(0xDA2C_0011, 20, |rng, _| {
        let (m, n, k) = (1 + rng.below(24), 1 + rng.below(16), 1 + rng.below(64));
        let edge = |rng: &mut Rng| -> i8 {
            match rng.below(4) {
                0 => 127,
                1 => -127,
                2 => 126,
                _ => -126,
            }
        };
        let a: Vec<i8> = (0..m * k).map(|_| edge(rng)).collect();
        let bt: Vec<i8> = (0..n * k).map(|_| edge(rng)).collect();
        let kpad = kpad_for(k);
        let apack = pack_weights_i8(m, k, &a, kpad);
        let bpack = pack_activations_i8(n, k, &bt, kpad);
        let mut want = vec![0i32; m * n];
        qgemm_ref(m, n, k, &a, &bt, &mut want);
        let mut got = vec![0i32; m * n];
        qgemm(m, n, k, kpad, &apack, &bpack, &mut got);
        assert_eq!(got, want, "saturated qgemm {m}x{k}x{n}");
    });
}

#[test]
fn activation_quantization_saturates_at_clip_boundaries() {
    // Values at, just inside, and far beyond the calibrated clip range.
    let scale = 0.25f32; // clip range ±31.75
    for (v, want) in [
        (31.75, 127),
        (-31.75, -127),
        (31.74, 127), // rounds to 127, still in range
        (1e6, 127),   // saturate, never wrap
        (-1e6, -127),
        (0.0, 0),
        (0.124, 0),
        (0.126, 1),
    ] {
        assert_eq!(quantize_value(v, scale), want, "quantize({v})");
    }
}

#[test]
fn vectorized_quantization_matches_the_scalar_path_bitwise() {
    // The fused serving path quantizes with the AVX2 kernel (where
    // available); it must agree with `quantize_value` on every finite
    // input — including exact `.5` fractions, where nearest-even rounding
    // (the naive `vroundps` mode) would diverge from `f32::round`.
    run_cases(0xDA2C_0015, 30, |rng, case| {
        let len = rng.below(200); // exercises the 16-lane body and tails
        let scale = [0.25f32, 1.0, 0.037][case % 3];
        let x: Vec<f32> = (0..len)
            .map(|i| match i % 5 {
                // Exact half fractions, both signs, at and past the clip.
                0 => (rng.below(600) as f32 - 300.0 + 0.5) * scale,
                1 => -(rng.below(300) as f32 + 0.5) * scale,
                _ => rng.uniform(-200.0, 200.0) * scale,
            })
            .collect();
        let mut got = vec![0i16; len];
        quantize_activations_i16(&x, scale, &mut got);
        for (i, (&g, &v)) in got.iter().zip(&x).enumerate() {
            assert_eq!(g, quantize_value(v, scale) as i16, "elem {i} of {v}");
        }
    });
}

#[test]
fn fused_quantize_pack_matches_the_two_pass_reference() {
    // quantize_pack_activations must produce exactly the
    // pack_activations_i8 layout of the elementwise-quantized batch —
    // same strips, same pair interleave, same zero padding — over odd
    // k, non-multiple-of-8 n, and empty batches.
    run_cases(0xDA2C_0016, 30, |rng, case| {
        let n = if case % 9 == 8 { 0 } else { rng.below(20) };
        let k = 1 + rng.below(70);
        let kpad = kpad_for(k);
        let scale = 0.125f32;
        let x: Vec<f32> = (0..n * k).map(|_| rng.uniform(-20.0, 20.0)).collect();
        let xq: Vec<i8> = x.iter().map(|&v| quantize_value(v, scale)).collect();
        let want = pack_activations_i8(n, k, &xq, kpad);
        let got = quantize_pack_activations(n, k, &x, scale, kpad);
        assert_eq!(got, want, "fused pack {n}x{k}");
    });
}

#[test]
fn fused_dequant_gemm_matches_the_two_pass_path_bitwise() {
    // qgemm_dequant (transpose + dequantize in the tile spill, AVX2 fast
    // path on full tiles) must equal qgemm followed by the scalar
    // `acc as f32 * scale + bias` — the same f32 operations in the same
    // order, so to the bit, across full, ragged, and sub-tile shapes.
    run_cases(0xDA2C_0017, 30, |rng, case| {
        let (m, n, k) = if case % 4 == 0 {
            (16, 24, 32) // tile-aligned: exercises the AVX2 spill
        } else {
            (1 + rng.below(30), 1 + rng.below(20), 1 + rng.below(50))
        };
        let a = random_i8(rng, m * k);
        let bt = random_i8(rng, n * k);
        let kpad = kpad_for(k);
        let apack = pack_weights_i8(m, k, &a, kpad);
        let bpack = pack_activations_i8(n, k, &bt, kpad);
        let scale: Vec<f32> = (0..m).map(|_| rng.uniform(0.001, 0.2)).collect();
        let bias: Vec<f32> = (0..m).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let mut acc = vec![0i32; m * n];
        qgemm(m, n, k, kpad, &apack, &bpack, &mut acc);
        let mut want = vec![0f32; m * n];
        for j in 0..n {
            for i in 0..m {
                want[j * m + i] = acc[i * n + j] as f32 * scale[i] + bias[i];
            }
        }
        let mut got = vec![-1f32; m * n];
        qgemm_dequant(m, n, k, kpad, &apack, &bpack, &scale, &bias, &mut got);
        let (gb, wb): (Vec<u32>, Vec<u32>) = (
            got.iter().map(|v| v.to_bits()).collect(),
            want.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(gb, wb, "qgemm_dequant {m}x{k}x{n}");
    });
}

#[test]
fn fused_dequant_spmm_matches_and_empty_rows_read_as_bias() {
    run_cases(0xDA2C_0018, 20, |rng, _| {
        let rows = 8 * (1 + rng.below(5));
        let cols = 8 * (1 + rng.below(5));
        let n = 1 + rng.below(18);
        let bcols = cols / 8;
        // Low keep rate so empty block-rows occur often.
        let kept: Vec<bool> = (0..(rows / 8) * bcols)
            .map(|_| rng.next_f64() < 0.3)
            .collect();
        let wt = Matrix::from_fn(rows, cols, |o, i| {
            if kept[(o / 8) * bcols + i / 8] {
                rng.uniform(-2.0, 2.0)
            } else {
                0.0
            }
        });
        let w_scale: Vec<f32> = (0..rows).map(|_| rng.uniform(0.005, 0.05)).collect();
        let bias: Vec<f32> = (0..rows).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let xq = random_i8(rng, n * cols);
        let q = QBsr::from_dense_rows(&wt, &w_scale);
        let bpack = pack_activations_i8(n, cols, &xq, q.kpad());
        let mut acc = vec![0i32; rows * n];
        q.spmm(n, &bpack, &mut acc);
        let mut want = vec![0f32; rows * n];
        for j in 0..n {
            for i in 0..rows {
                want[j * rows + i] = acc[i * n + j] as f32 * w_scale[i] + bias[i];
            }
        }
        let mut got = vec![-9f32; rows * n];
        q.spmm_dequant(n, &bpack, &w_scale, &bias, &mut got);
        let (gb, wb): (Vec<u32>, Vec<u32>) = (
            got.iter().map(|v| v.to_bits()).collect(),
            want.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(gb, wb, "spmm_dequant {rows}x{cols} n={n}");
    });
}

#[test]
fn qbsr_spmm_is_bit_exact_over_random_topologies() {
    run_cases(0xDA2C_0012, 50, |rng, case| {
        let rows = 1 + rng.below(48);
        let cols = 1 + rng.below(48);
        let n = if case % 7 == 6 { 0 } else { 1 + rng.below(20) };
        // keep = 0 forces fully empty matrices; low keeps force empty
        // block-rows with high probability.
        let keep = [0.0, 0.1, 0.3, 0.7][case % 4];
        let bcols = cols.div_ceil(8);
        let kept: Vec<bool> = (0..rows.div_ceil(8) * bcols)
            .map(|_| rng.next_f64() < keep)
            .collect();
        let wt = Matrix::from_fn(rows, cols, |o, i| {
            if kept[(o / 8) * bcols + i / 8] {
                rng.uniform(-3.0, 3.0)
            } else {
                0.0
            }
        });
        let w_scale: Vec<f32> = (0..rows).map(|_| rng.uniform(0.005, 0.05)).collect();
        let xq = random_i8(rng, n * cols);
        let q = QBsr::from_dense_rows(&wt, &w_scale);
        let bpack = pack_activations_i8(n, cols, &xq, q.kpad());
        let mut got = vec![-1i32; rows * n];
        q.spmm(n, &bpack, &mut got);
        let want = qbsr_oracle(&wt, &w_scale, &xq, n);
        assert_eq!(got, want, "qbsr {rows}x{cols} n={n} keep={keep}");
    });
}

#[test]
fn qbsr_handles_empty_block_rows_exactly() {
    // Construct a matrix whose middle block-row is entirely dropped; its
    // output band must be exactly zero, and the bands around it exact.
    let mut rng = Rng::new(0xDA2C_0013);
    let (rows, cols, n) = (24, 16, 5);
    let wt = Matrix::from_fn(rows, cols, |o, _| {
        if (8..16).contains(&o) {
            0.0
        } else {
            rng.uniform(-1.0, 1.0)
        }
    });
    let w_scale = vec![0.01f32; rows];
    let xq = random_i8(&mut rng, n * cols);
    let q = QBsr::from_dense_rows(&wt, &w_scale);
    let bpack = pack_activations_i8(n, cols, &xq, q.kpad());
    let mut got = vec![-1i32; rows * n];
    q.spmm(n, &bpack, &mut got);
    assert_eq!(&got[8 * n..16 * n], &vec![0i32; 8 * n][..]);
    let want = qbsr_oracle(&wt, &w_scale, &xq, n);
    assert_eq!(got, want);
}

#[test]
fn weights_at_extremes_round_trip_through_qbsr() {
    // A block of all ±max weights quantizes to exactly ±127 and the SpMM
    // stays bit-exact — the weight-side saturation edge.
    let (rows, cols, n) = (8, 8, 3);
    let wt = Matrix::from_fn(rows, cols, |o, i| if (o + i) % 2 == 0 { 2.0 } else { -2.0 });
    let w_scale: Vec<f32> = (0..rows).map(|_| 2.0 / 127.0).collect();
    let mut rng = Rng::new(7);
    let xq = random_i8(&mut rng, n * cols);
    let q = QBsr::from_dense_rows(&wt, &w_scale);
    let bpack = pack_activations_i8(n, cols, &xq, q.kpad());
    let mut got = vec![0i32; rows * n];
    q.spmm(n, &bpack, &mut got);
    let want = qbsr_oracle(&wt, &w_scale, &xq, n);
    assert_eq!(got, want);
    // And the quantized weights really are at the rails.
    let mut hit_rail = false;
    for &v in &want {
        hit_rail |= v != 0;
    }
    assert!(hit_rail);
}

#[test]
fn calibration_same_seed_means_identical_scales_to_the_bit() {
    run_cases(0xDA2C_0014, 8, |rng, _| {
        let seed = rng.next_u64();
        let build = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mlp = Mlp::kaldi_style(20, 24, 4, 2, 7, &mut rng);
            let feats = random_matrix(&mut rng, 10, 20, 1.5);
            calibrate_mlp(&mlp, &feats)
        };
        let (a, b) = (build(seed), build(seed));
        assert_eq!(a.num_layers(), b.num_layers());
        for (x, y) in a.layer_max.iter().zip(&b.layer_max) {
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "scale drifted between runs")
                }
                (None, None) => {}
                _ => panic!("layer coverage differs between runs"),
            }
        }
    });
}
