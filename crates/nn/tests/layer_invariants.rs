//! Numerical invariants of the normalization layers (ISSUE 1 satellite):
//! softmax rows are probability distributions with no NaN even at extreme
//! logits; renormalize fixes row RMS at 1.

use darkside_nn::check::{random_matrix, run_cases};
use darkside_nn::{renormalize_in_place, softmax_in_place, Matrix};

#[test]
fn softmax_rows_sum_to_one_on_random_input() {
    run_cases(0x50F7, 30, |rng, _| {
        let rows = 1 + rng.below(20);
        let cols = 1 + rng.below(200);
        let mut x = random_matrix(rng, rows, cols, 30.0);
        softmax_in_place(&mut x);
        for i in 0..rows {
            let row = x.row(i);
            assert!(row.iter().all(|v| v.is_finite() && *v >= 0.0));
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
    });
}

#[test]
fn softmax_survives_extreme_logits() {
    // ±1e4 logits overflow exp() without the max-subtraction; mixed ±∞-ish
    // magnitudes are exactly what a collapsing pruned model produces.
    let mut x = Matrix::new(
        4,
        3,
        vec![
            1e4, 0.0, -1e4, //
            1e4, 1e4, 1e4, //
            -1e4, -1e4, -1e4, //
            3.4e38, 0.0, -3.4e38,
        ],
    )
    .unwrap();
    softmax_in_place(&mut x);
    for i in 0..4 {
        let row = x.row(i);
        assert!(
            row.iter().all(|v| v.is_finite() && !v.is_nan()),
            "row {i}: {row:?}"
        );
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
    }
    // The dominant logit takes essentially all the mass.
    assert!(x.get(0, 0) > 0.999);
    // Uniform logits give the uniform distribution.
    assert!((x.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
}

#[test]
fn renormalize_sets_rms_to_one_on_random_input() {
    run_cases(0x4E40, 30, |rng, _| {
        let rows = 1 + rng.below(20);
        let cols = 1 + rng.below(200);
        let mut x = random_matrix(rng, rows, cols, 50.0);
        renormalize_in_place(&mut x);
        for i in 0..rows {
            let row = x.row(i);
            let sumsq: f32 = row.iter().map(|v| v * v).sum();
            let rms = (sumsq / cols as f32).sqrt();
            assert!(rms.is_finite());
            // All-zero rows stay zero; anything else lands on RMS 1.
            assert!(
                rms == 0.0 || (rms - 1.0).abs() < 1e-4,
                "row {i} has rms {rms}"
            );
        }
    });
}
