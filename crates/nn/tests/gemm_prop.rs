//! Property tests: the blocked/parallel GEMM is elementwise-close (1e-4
//! relative, the ISSUE 1 acceptance tolerance) to the naive triple-loop
//! oracle over random shapes — including empty, 1×N, and
//! non-multiple-of-tile sizes.

use darkside_nn::check::{assert_matrices_close, random_matrix, run_cases};
use darkside_nn::gemm::{MR, NR};
use darkside_nn::{gemm_naive, gemm_with_threads, Matrix};

fn gemm_blocked(m: usize, n: usize, k: usize, a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    let mut c = Matrix::zeros(m, n);
    gemm_with_threads(
        m,
        n,
        k,
        a.as_slice(),
        b.as_slice(),
        c.as_mut_slice(),
        threads,
    );
    c
}

fn check_shape(m: usize, n: usize, k: usize, threads: usize, rng: &mut darkside_nn::Rng) {
    let a = random_matrix(rng, m, k, 2.0);
    let b = random_matrix(rng, k, n, 2.0);
    let mut want = Matrix::zeros(m, n);
    gemm_naive(m, n, k, a.as_slice(), b.as_slice(), want.as_mut_slice());
    let got = gemm_blocked(m, n, k, &a, &b, threads);
    assert_matrices_close(
        &got,
        &want,
        1e-4,
        &format!("gemm {m}x{n}x{k}, {threads} threads"),
    );
}

#[test]
fn random_shapes_match_oracle() {
    run_cases(0xA11CE, 60, |rng, _| {
        let m = rng.below(70);
        let n = rng.below(70);
        let k = rng.below(70);
        let threads = 1 + rng.below(4);
        check_shape(m, n, k, threads, rng);
    });
}

#[test]
fn degenerate_and_tile_edge_shapes_match_oracle() {
    // (m, n, k) triples that historically break blocked kernels: empties,
    // single rows/cols, exact tile multiples, one-off-from-tile sizes.
    let edge = [0, 1, 2, MR - 1, MR, MR + 1, NR, 2 * NR + 1, 33];
    run_cases(0xED6E, 1, |rng, _| {
        for &m in &edge {
            for &n in &edge {
                for &k in &[0usize, 1, 7, 33] {
                    check_shape(m, n, k, 2, rng);
                }
            }
        }
    });
}

#[test]
fn cache_block_boundaries_match_oracle() {
    // Shapes straddling the MC/KC/NC blocking constants (128/256/1024):
    // exercises multi-panel packing and the multi-(jc,pc) accumulation path.
    run_cases(0xB10C, 1, |rng, _| {
        for (m, n, k) in [
            (129, 65, 257),
            (257, 40, 300),
            (64, 1030, 37),
            (300, 129, 513),
        ] {
            check_shape(m, n, k, 3, rng);
        }
    });
}

#[test]
fn thread_counts_agree_bitwise() {
    // Threading only partitions rows; every worker sums in the same k-order,
    // so results must be *identical* across thread counts, not just close.
    run_cases(0x7EAD, 10, |rng, _| {
        let m = 1 + rng.below(150);
        let n = 1 + rng.below(90);
        let k = 1 + rng.below(120);
        let a = random_matrix(rng, m, k, 1.0);
        let b = random_matrix(rng, k, n, 1.0);
        let c1 = gemm_blocked(m, n, k, &a, &b, 1);
        for threads in [2, 5, 16] {
            let ct = gemm_blocked(m, n, k, &a, &b, threads);
            assert_eq!(
                c1.as_slice(),
                ct.as_slice(),
                "threads={threads} changed results at {m}x{n}x{k}"
            );
        }
    });
}
