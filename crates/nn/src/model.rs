//! The acoustic-model MLP (ISSUE 1) and its scored-batch output type.
//!
//! Scoring goes through the [`crate::FrameScorer`] trait (ISSUE 2 API
//! redesign): `Mlp` implements it with one GEMM per layer for the whole
//! utterance, so every weight matrix is traversed **once per utterance**
//! instead of once per frame — the batching win `darkside-bench`'s
//! `batched_score` bench measures.

use crate::layers::{Affine, Layer};
use crate::matrix::Matrix;
use crate::rng::Rng;

/// One feature frame (e.g. 40-dim filterbank × 9-frame context = 360 values).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame(pub Vec<f32>);

impl Frame {
    pub fn dim(&self) -> usize {
        self.0.len()
    }
}

/// Softmax outputs for a batch of frames: `frames × classes`, rows sum to 1.
#[derive(Clone, Debug)]
pub struct Scores {
    pub probs: Matrix,
}

impl Scores {
    pub fn num_frames(&self) -> usize {
        self.probs.rows()
    }

    pub fn num_classes(&self) -> usize {
        self.probs.cols()
    }

    /// Arg-max class and its probability for frame `i`.
    pub fn top1(&self, i: usize) -> (usize, f32) {
        let row = self.probs.row(i);
        let mut best = (0usize, f32::NEG_INFINITY);
        for (c, &p) in row.iter().enumerate() {
            if p > best.1 {
                best = (c, p);
            }
        }
        best
    }

    /// The paper's confidence metric: probability of the top-1 class
    /// (this is what collapses under pruning — DESIGN.md §1).
    pub fn confidence(&self, i: usize) -> f32 {
        self.top1(i).1
    }

    /// Mean confidence over the batch (Fig. 3's y-axis).
    pub fn mean_confidence(&self) -> f32 {
        if self.num_frames() == 0 {
            return 0.0;
        }
        (0..self.num_frames())
            .map(|i| self.confidence(i))
            .sum::<f32>()
            / self.num_frames() as f32
    }
}

/// The Kaldi-style acoustic MLP: fixed LDA input, `affine → p-norm →
/// renormalize` hidden blocks, affine + softmax output (DESIGN.md Table I).
#[derive(Clone, Debug)]
pub struct Mlp {
    pub layers: Vec<Layer>,
    input_dim: usize,
}

impl Mlp {
    /// Build from an explicit layer stack.
    pub fn new(input_dim: usize, layers: Vec<Layer>) -> Self {
        Self { layers, input_dim }
    }

    /// The paper-shape architecture at a configurable scale:
    /// `input → [affine(hidden) → pnorm(group) → renorm] × blocks → classes`,
    /// preceded by a fixed square LDA transform.
    pub fn kaldi_style(
        input_dim: usize,
        hidden_dim: usize,
        pnorm_group: usize,
        blocks: usize,
        classes: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(hidden_dim.is_multiple_of(pnorm_group));
        let pooled = hidden_dim / pnorm_group;
        let mut layers = vec![Layer::Lda(Affine::new_random(input_dim, input_dim, rng))];
        let mut dim = input_dim;
        for _ in 0..blocks {
            layers.push(Layer::Affine(Affine::new_random(dim, hidden_dim, rng)));
            layers.push(Layer::PNorm(crate::layers::PNorm { group: pnorm_group }));
            layers.push(Layer::Renormalize);
            dim = pooled;
        }
        layers.push(Layer::Affine(Affine::new_random(dim, classes, rng)));
        layers.push(Layer::Softmax);
        Self { layers, input_dim }
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    pub fn output_dim(&self) -> usize {
        self.layers.iter().fold(self.input_dim, |d, l| l.out_dim(d))
    }

    /// Run the stack on a pre-built `batch × input_dim` matrix.
    pub fn forward(&self, x: Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim, "Mlp::forward: input dim");
        self.layers.iter().fold(x, |x, layer| layer.forward(x))
    }

    /// Total parameter count (weights + biases), for Table I-style reporting.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Lda(a) | Layer::Affine(a) => a.w.rows() * a.w.cols() + a.b.len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::FrameScorer;

    #[test]
    fn shapes_propagate() {
        let mut rng = Rng::new(1);
        let mlp = Mlp::kaldi_style(36, 64, 4, 2, 9, &mut rng);
        assert_eq!(mlp.input_dim(), 36);
        assert_eq!(mlp.output_dim(), 9);
        let frames: Vec<Frame> = (0..5)
            .map(|_| Frame((0..36).map(|_| rng.normal()).collect()))
            .collect();
        let scores = mlp.score_frames(&frames);
        assert_eq!(scores.num_frames(), 5);
        assert_eq!(scores.num_classes(), 9);
    }

    #[test]
    fn batched_equals_per_frame() {
        let mut rng = Rng::new(2);
        let mlp = Mlp::kaldi_style(24, 32, 4, 2, 7, &mut rng);
        let frames: Vec<Frame> = (0..17)
            .map(|_| Frame((0..24).map(|_| rng.normal()).collect()))
            .collect();
        let batched = mlp.score_frames(&frames);
        for (i, f) in frames.iter().enumerate() {
            let single = mlp.score_frame(f);
            crate::check::assert_slices_close(
                batched.probs.row(i),
                single.probs.row(0),
                1e-5,
                "batched vs single",
            );
        }
    }
}
