//! Sparse matrix–matrix kernels for pruned layers (ISSUE 6 tentpole).
//!
//! Two kernels, both `C = S · B` for a sparse `S` (`m×k`) and a dense
//! row-major `B` (`k×n`), sharing [`gemm`](crate::gemm)'s machinery:
//!
//! * [`csr_spmm`] — unstructured CSR. The pre-PR 6 implementation was a
//!   scalar single-threaded axpy per nonzero; this one processes nonzeros
//!   four at a time (one pass over the C row per quad, 4× less C traffic,
//!   enough independent streams for the vectorizer) and deals contiguous
//!   row bands onto `std::thread::scope` workers exactly like `gemm`.
//! * [`bsr_spmm`] — block-sparse-row with `r×c` blocks. When `r == MR`
//!   (the GEMM micro-tile height) every nonzero block is fed straight into
//!   the same register-tile accumulation body the dense micro-kernel uses
//!   ([`gemm::accumulate_tile`]): B is packed once into NR-column strips
//!   (the `pack_b` layout, full-k), each block is stored `k`-major so it
//!   *is* an `MR`-wide packed A strip, and a whole block-row accumulates
//!   into one MR×NR register tile before touching C. Sparsity then skips
//!   work without abandoning the dense inner loop — the software analogue
//!   of accelerator-aware pruning (Kang, PAPERS.md).
//!
//! **Bit-exactness contract.** Every kernel here accumulates each output
//! element in strictly ascending `k` order with separately-rounded
//! multiply-then-add (no FMA contraction, even in the AVX2 instantiation —
//! `bsr_tile_avx2` spells the tile out as `vmulps` + `vaddps` intrinsics,
//! never `vfmadd`). A stored zero inside a kept block
//! contributes `±0.0`, which never changes a finite accumulation. The
//! result: CSR, BSR, and a masked-dense reference that skips pruned
//! weights produce **bit-identical** outputs (`f32::to_bits`), so a served
//! hypothesis stream is provably independent of the storage format — the
//! property `darkside-pruning`'s `bsr_prop` tests pin.

use crate::gemm::{accumulate_tile, timed_kernel, MR, NR, PARALLEL_FLOP_THRESHOLD};

/// Threads to use for `flops` of sparse work: 1 below the spawn-amortization
/// threshold, the host parallelism above it, never more than `bands`.
fn sparse_threads(flops: usize, bands: usize) -> usize {
    if flops >= PARALLEL_FLOP_THRESHOLD {
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .clamp(1, bands.max(1))
    } else {
        1
    }
}

// ---------------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------------

/// Unstructured CSR SpMM: `C = S · B` where `S` is `rows×cols` in CSR form
/// (`row_ptr`/`col_idx`/`vals`), `B` is `cols×n` row-major, `C` is `rows×n`.
///
/// Row bands are dealt to `std::thread::scope` workers (rows are
/// independent, so threading cannot change results); within a row, nonzeros
/// are processed four at a time with a single left-to-right rounded update
/// per C element, which preserves the ascending-column accumulation order
/// of the scalar loop bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn csr_spmm(
    rows: usize,
    cols: usize,
    n: usize,
    row_ptr: &[u32],
    col_idx: &[u32],
    vals: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    assert_eq!(row_ptr.len(), rows + 1, "csr_spmm: row_ptr length");
    assert_eq!(col_idx.len(), vals.len(), "csr_spmm: index/value lengths");
    assert_eq!(b.len(), cols * n, "csr_spmm: B is not {cols}x{n}");
    assert_eq!(out.len(), rows * n, "csr_spmm: C is not {rows}x{n}");
    let flops = 2usize.saturating_mul(vals.len()).saturating_mul(n);
    timed_kernel("csr_spmm", flops as u64, || {
        out.fill(0.0);
        if rows == 0 || n == 0 {
            return;
        }
        let threads = sparse_threads(flops, rows);
        if threads == 1 {
            csr_band(0, out, row_ptr, col_idx, vals, b, n);
            return;
        }
        let band_rows = rows.div_ceil(threads);
        std::thread::scope(|scope| {
            for (band_idx, band) in out.chunks_mut(band_rows * n).enumerate() {
                scope.spawn(move || {
                    csr_band(band_idx * band_rows, band, row_ptr, col_idx, vals, b, n);
                });
            }
        });
    });
}

/// One contiguous band of CSR output rows, starting at absolute row `row0`.
fn csr_band(
    row0: usize,
    band: &mut [f32],
    row_ptr: &[u32],
    col_idx: &[u32],
    vals: &[f32],
    b: &[f32],
    n: usize,
) {
    for (i, crow) in band.chunks_exact_mut(n).enumerate() {
        let lo = row_ptr[row0 + i] as usize;
        let hi = row_ptr[row0 + i + 1] as usize;
        csr_row(crow, &col_idx[lo..hi], &vals[lo..hi], b, n);
    }
}

/// One output row: quad-unrolled axpy over the row's nonzeros. The fused
/// four-term update rounds left-to-right, matching four sequential axpys.
fn csr_row(crow: &mut [f32], cols: &[u32], vals: &[f32], b: &[f32], n: usize) {
    let quads = cols.len() - cols.len() % 4;
    for (jq, vq) in cols[..quads]
        .chunks_exact(4)
        .zip(vals[..quads].chunks_exact(4))
    {
        let b0 = &b[jq[0] as usize * n..][..n];
        let b1 = &b[jq[1] as usize * n..][..n];
        let b2 = &b[jq[2] as usize * n..][..n];
        let b3 = &b[jq[3] as usize * n..][..n];
        let (v0, v1, v2, v3) = (vq[0], vq[1], vq[2], vq[3]);
        for l in 0..n {
            crow[l] = crow[l] + v0 * b0[l] + v1 * b1[l] + v2 * b2[l] + v3 * b3[l];
        }
    }
    for (&j, &v) in cols[quads..].iter().zip(&vals[quads..]) {
        let brow = &b[j as usize * n..][..n];
        for (cv, &bv) in crow.iter_mut().zip(brow) {
            *cv += v * bv;
        }
    }
}

// ---------------------------------------------------------------------------
// BSR
// ---------------------------------------------------------------------------

/// Block-sparse-row SpMM: `C = S · B` where `S` is `rows×cols` stored as
/// `r×c` blocks. `row_ptr` has `rows.div_ceil(r) + 1` offsets over nonzero
/// blocks, `col_idx[bi]` is block `bi`'s block-column, and `blocks` holds
/// `r*c` values per block in **`k`-major** layout: `block[p * r + row]` is
/// the element at block-local `(row, p)`. Edge blocks (when `r`/`c` do not
/// divide `rows`/`cols`) are zero-padded to full `r×c`.
///
/// With `r == MR` each block is exactly a packed-A strip of the dense
/// micro-kernel, so a block-row × NR-column tile accumulates entirely in
/// registers via [`accumulate_tile`] before one store to C. Other `r`
/// values take a fused-axpy path (specialised for `r == 1` row-vector
/// blocks). Both paths keep the ascending-`k` bit-exactness contract.
#[allow(clippy::too_many_arguments)]
pub fn bsr_spmm(
    rows: usize,
    cols: usize,
    n: usize,
    r: usize,
    c: usize,
    row_ptr: &[u32],
    col_idx: &[u32],
    blocks: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    assert!(r > 0 && c > 0, "bsr_spmm: zero block dims");
    let block_rows = rows.div_ceil(r);
    let block_cols = cols.div_ceil(c);
    assert_eq!(row_ptr.len(), block_rows + 1, "bsr_spmm: row_ptr length");
    let nb = col_idx.len();
    assert_eq!(blocks.len(), nb * r * c, "bsr_spmm: block storage length");
    assert_eq!(b.len(), cols * n, "bsr_spmm: B is not {cols}x{n}");
    assert_eq!(out.len(), rows * n, "bsr_spmm: C is not {rows}x{n}");
    let flops = 2usize
        .saturating_mul(nb)
        .saturating_mul(r * c)
        .saturating_mul(n);
    timed_kernel("bsr_spmm", flops as u64, || {
        out.fill(0.0);
        if rows == 0 || n == 0 || nb == 0 {
            return;
        }
        let threads = sparse_threads(flops, block_rows);
        if r == MR {
            let kpad = block_cols * c;
            let bpack = pack_b_strips(b, cols, n, kpad);
            let kernel = select_bsr_kernel();
            let run_band = |ib: usize, band: &mut [f32]| {
                let lo = row_ptr[ib] as usize;
                let hi = row_ptr[ib + 1] as usize;
                if lo == hi {
                    return; // empty block-row: band stays zero
                }
                bsr_tiled_block_row(
                    &col_idx[lo..hi],
                    &blocks[lo * MR * c..hi * MR * c],
                    c,
                    &bpack,
                    kpad,
                    band,
                    n,
                    kernel,
                );
            };
            if threads == 1 {
                for (ib, band) in out.chunks_mut(MR * n).enumerate() {
                    run_band(ib, band);
                }
            } else {
                // Deal block-rows round-robin onto workers: disjoint &mut
                // bands, no synchronization beyond the scope join.
                let mut assignments: Vec<Vec<(usize, &mut [f32])>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (ib, band) in out.chunks_mut(MR * n).enumerate() {
                    assignments[ib % threads].push((ib, band));
                }
                std::thread::scope(|scope| {
                    for bands in assignments {
                        scope.spawn(|| {
                            for (ib, band) in bands {
                                run_band(ib, band);
                            }
                        });
                    }
                });
            }
        } else {
            let run_band = |ib: usize, band: &mut [f32]| {
                let lo = row_ptr[ib] as usize;
                let hi = row_ptr[ib + 1] as usize;
                bsr_generic_block_row(
                    &col_idx[lo..hi],
                    &blocks[lo * r * c..hi * r * c],
                    r,
                    c,
                    cols,
                    b,
                    band,
                    n,
                );
            };
            if threads == 1 {
                for (ib, band) in out.chunks_mut(r * n).enumerate() {
                    run_band(ib, band);
                }
            } else {
                let mut assignments: Vec<Vec<(usize, &mut [f32])>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (ib, band) in out.chunks_mut(r * n).enumerate() {
                    assignments[ib % threads].push((ib, band));
                }
                std::thread::scope(|scope| {
                    for bands in assignments {
                        scope.spawn(|| {
                            for (ib, band) in bands {
                                run_band(ib, band);
                            }
                        });
                    }
                });
            }
        }
    });
}

/// Pack all of B (`brows×n`, `brows <= kpad`) into NR-column strips, the
/// same `p`-major layout `gemm::pack_b` produces, but full-`k` (`kpad`
/// rows, zero-padded): strip `js` holds columns `js*NR ..`, and a block
/// with block-column `jb` reads the contiguous `c*NR` slice at
/// `js*kpad*NR + jb*c*NR`. Packed once per SpMM and shared by every
/// block-row (and every worker).
fn pack_b_strips(b: &[f32], brows: usize, n: usize, kpad: usize) -> Vec<f32> {
    let n_strips = n.div_ceil(NR);
    let mut pack = vec![0.0f32; n_strips * kpad * NR];
    for js in 0..n_strips {
        let col0 = js * NR;
        let ncols = NR.min(n - col0);
        let strip = &mut pack[js * kpad * NR..][..kpad * NR];
        for p in 0..brows {
            strip[p * NR..p * NR + ncols].copy_from_slice(&b[p * n + col0..p * n + col0 + ncols]);
        }
    }
    pack
}

/// `kernel(bcols, bvals, c, strip, c_tile, ldc, mr_eff, nr_eff)`: accumulate
/// every nonzero block of one block-row into an MR×NR register tile, then
/// store it (C was pre-zeroed, so a store, not an add).
type BsrKernel = unsafe fn(&[u32], &[f32], usize, &[f32], &mut [f32], usize, usize, usize);

/// The portable block-row × column-tile body (non-x86 / no-AVX2 fallback,
/// and the shape `bsr_tile_avx2` mirrors instruction-for-instruction).
/// `USE_FMA` is deliberately `false`: FMA contraction rounds once where the
/// CSR path rounds twice, and bit-exactness across storage formats is an
/// acceptance contract (see the module docs).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn bsr_tile_body<const USE_FMA: bool>(
    bcols: &[u32],
    bvals: &[f32],
    c: usize,
    strip: &[f32],
    ctile: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (bi, &jb) in bcols.iter().enumerate() {
        let ap = &bvals[bi * MR * c..][..MR * c];
        let bp = &strip[jb as usize * c * NR..][..c * NR];
        accumulate_tile::<USE_FMA>(c, ap, bp, &mut acc);
    }
    for (row, accr) in acc.iter().enumerate().take(mr_eff) {
        let crow = &mut ctile[row * ldc..row * ldc + nr_eff];
        for (cv, &av) in crow.iter_mut().zip(accr) {
            *cv = av;
        }
    }
}

#[allow(clippy::too_many_arguments)]
unsafe fn bsr_tile_generic(
    bcols: &[u32],
    bvals: &[f32],
    c: usize,
    strip: &[f32],
    ctile: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    bsr_tile_body::<false>(bcols, bvals, c, strip, ctile, ldc, mr_eff, nr_eff);
}

/// AVX2 instantiation with explicit intrinsics. Autovectorizing the no-FMA
/// `bsr_tile_body` fails in practice: without an `fma` target feature the
/// loop vectorizer gives up on the 8×8 accumulator and the SLP vectorizer
/// shreds it into cross-lane shuffles (measured ~4 GFLOP/s — scalar speed).
/// Spelling the tile out keeps each accumulator row in one YMM register:
/// per rank-1 update, one B load, then per row a broadcast of the A element
/// and a **separately rounded** `vmulps` + `vaddps` — the same ascending-`k`
/// mul-then-add the scalar body performs, so bit-exactness is preserved.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn bsr_tile_avx2(
    bcols: &[u32],
    bvals: &[f32],
    c: usize,
    strip: &[f32],
    ctile: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use core::arch::x86_64::*;
    const { assert!(MR == 8 && NR == 8) };
    let mut acc = [_mm256_setzero_ps(); MR];
    for (bi, &jb) in bcols.iter().enumerate() {
        debug_assert!((bi + 1) * MR * c <= bvals.len());
        debug_assert!((jb as usize + 1) * c * NR <= strip.len());
        let ap = bvals.as_ptr().add(bi * MR * c);
        let bp = strip.as_ptr().add(jb as usize * c * NR);
        for p in 0..c {
            let bv = _mm256_loadu_ps(bp.add(p * NR));
            let arow = ap.add(p * MR);
            for (row, accv) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*arow.add(row));
                *accv = _mm256_add_ps(_mm256_mul_ps(av, bv), *accv);
            }
        }
    }
    if nr_eff == NR {
        for (row, &accv) in acc.iter().enumerate().take(mr_eff) {
            debug_assert!(row * ldc + NR <= ctile.len());
            _mm256_storeu_ps(ctile.as_mut_ptr().add(row * ldc), accv);
        }
    } else {
        let mut spill = [0.0f32; NR];
        for (row, &accv) in acc.iter().enumerate().take(mr_eff) {
            _mm256_storeu_ps(spill.as_mut_ptr(), accv);
            ctile[row * ldc..row * ldc + nr_eff].copy_from_slice(&spill[..nr_eff]);
        }
    }
}

fn select_bsr_kernel() -> BsrKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return bsr_tile_avx2;
        }
    }
    bsr_tile_generic
}

/// One `r == MR` block-row: sweep the NR-column tiles of its C band.
#[allow(clippy::too_many_arguments)]
fn bsr_tiled_block_row(
    bcols: &[u32],
    bvals: &[f32],
    c: usize,
    bpack: &[f32],
    kpad: usize,
    band: &mut [f32],
    n: usize,
    kernel: BsrKernel,
) {
    let rows_eff = band.len() / n;
    for (js, jr) in (0..n).step_by(NR).enumerate() {
        let nr_eff = NR.min(n - jr);
        let strip = &bpack[js * kpad * NR..][..kpad * NR];
        // SAFETY: the kernel only requires its target features when it is
        // the AVX2 instantiation, which select_bsr_kernel() only returns
        // after runtime detection succeeded.
        unsafe { kernel(bcols, bvals, c, strip, &mut band[jr..], n, rows_eff, nr_eff) };
    }
}

/// One block-row for `r != MR`: fused axpys straight off the unpacked B.
/// `r == 1` (row-vector blocks) gets the same quad-unrolled single-pass
/// update as the CSR row kernel.
#[allow(clippy::too_many_arguments)]
fn bsr_generic_block_row(
    bcols: &[u32],
    bvals: &[f32],
    r: usize,
    c: usize,
    cols: usize,
    b: &[f32],
    band: &mut [f32],
    n: usize,
) {
    let rows_eff = band.len() / n;
    for (bi, &jb) in bcols.iter().enumerate() {
        let blk = &bvals[bi * r * c..][..r * c];
        let base = jb as usize * c;
        let p_max = c.min(cols - base);
        if r == 1 {
            let crow = &mut band[..n];
            let mut p = 0;
            while p + 4 <= p_max {
                let b0 = &b[(base + p) * n..][..n];
                let b1 = &b[(base + p + 1) * n..][..n];
                let b2 = &b[(base + p + 2) * n..][..n];
                let b3 = &b[(base + p + 3) * n..][..n];
                let (v0, v1, v2, v3) = (blk[p], blk[p + 1], blk[p + 2], blk[p + 3]);
                for l in 0..n {
                    crow[l] = crow[l] + v0 * b0[l] + v1 * b1[l] + v2 * b2[l] + v3 * b3[l];
                }
                p += 4;
            }
            for p in p..p_max {
                let brow = &b[(base + p) * n..][..n];
                let v = blk[p];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += v * bv;
                }
            }
        } else {
            for p in 0..p_max {
                let brow = &b[(base + p) * n..][..n];
                for row in 0..rows_eff {
                    let v = blk[p * r + row];
                    let crow = &mut band[row * n..row * n + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += v * bv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Masked-dense reference with the kernels' exact accumulation
    /// discipline: ascending k, skip zeros, separate mul and add.
    fn masked_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let v = a[i * k + p];
                if v == 0.0 {
                    continue;
                }
                for l in 0..n {
                    c[i * n + l] += v * b[p * n + l];
                }
            }
        }
        c
    }

    fn to_csr(m: usize, k: usize, a: &[f32]) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
        let mut row_ptr = vec![0u32];
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        for i in 0..m {
            for j in 0..k {
                if a[i * k + j] != 0.0 {
                    cols.push(j as u32);
                    vals.push(a[i * k + j]);
                }
            }
            row_ptr.push(vals.len() as u32);
        }
        (row_ptr, cols, vals)
    }

    /// Dense → BSR keeping blocks with any nonzero, k-major block storage.
    fn to_bsr(m: usize, k: usize, a: &[f32], r: usize, c: usize) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
        let (brows, bcols) = (m.div_ceil(r), k.div_ceil(c));
        let mut row_ptr = vec![0u32];
        let (mut cols, mut blocks) = (Vec::new(), Vec::<f32>::new());
        for ib in 0..brows {
            for jb in 0..bcols {
                let mut blk = vec![0.0f32; r * c];
                let mut any = false;
                for p in 0..c {
                    for row in 0..r {
                        let (i, j) = (ib * r + row, jb * c + p);
                        if i < m && j < k && a[i * k + j] != 0.0 {
                            blk[p * r + row] = a[i * k + j];
                            any = true;
                        }
                    }
                }
                if any {
                    cols.push(jb as u32);
                    blocks.extend_from_slice(&blk);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        (row_ptr, cols, blocks)
    }

    #[test]
    fn csr_and_bsr_match_masked_reference_bitwise() {
        let mut rng = crate::Rng::new(0xB5B);
        for (m, k, n, r, c) in [
            (16, 24, 9, 8, 8),
            (17, 25, 11, 8, 8), // ragged everywhere
            (8, 8, 1, 8, 8),
            (5, 12, 7, 1, 8), // row-vector blocks
            (9, 10, 3, 4, 4), // generic r
        ] {
            let a: Vec<f32> = (0..m * k)
                .map(|_| {
                    if rng.next_f64() < 0.8 {
                        0.0
                    } else {
                        rng.normal()
                    }
                })
                .collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let want = masked_ref(m, k, n, &a, &b);

            let (rp, ci, vals) = to_csr(m, k, &a);
            let mut got = vec![1.0f32; m * n];
            csr_spmm(m, k, n, &rp, &ci, &vals, &b, &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "csr {m}x{k}x{n}"
            );

            let (rp, ci, blocks) = to_bsr(m, k, &a, r, c);
            let mut got = vec![1.0f32; m * n];
            bsr_spmm(m, k, n, r, c, &rp, &ci, &blocks, &b, &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "bsr {m}x{k}x{n} blocks {r}x{c}"
            );
        }
    }

    #[test]
    fn empty_and_zero_shapes() {
        // Zero-column batch: nothing to do, nothing read out of bounds.
        csr_spmm(3, 4, 0, &[0, 0, 0, 0], &[], &[], &[], &mut []);
        bsr_spmm(3, 4, 0, 8, 8, &[0, 0], &[], &[], &[], &mut []);
        // All-zero matrix: output must be cleared, not left stale.
        let b = vec![1.0f32; 4 * 3];
        let mut out = vec![7.0f32; 2 * 3];
        csr_spmm(2, 4, 3, &[0, 0, 0], &[], &[], &b, &mut out);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![7.0f32; 2 * 3];
        bsr_spmm(2, 4, 3, 8, 8, &[0, 0], &[], &[], &b, &mut out);
        assert_eq!(out, vec![0.0; 6]);
    }
}
