//! # darkside-nn — the dense compute substrate
//!
//! Implements DESIGN.md §2/§3 (`crates/nn`): an `f32` row-major [`Matrix`],
//! a cache-blocked, register-tiled, thread-parallel [`gemm`], the Kaldi-style
//! layer set (affine / p-norm pooling / renormalize / softmax / fixed LDA),
//! and a batched [`Mlp::score_frames`] API so decoders amortize weight
//! traversal over a whole utterance instead of paying one GEMV per frame.
//!
//! The naive triple-loop kernels ([`gemm_naive`], [`gemv_naive`]) are kept
//! in-tree permanently as the correctness oracle and the perf baseline that
//! `darkside-bench` measures speedups against.
//!
//! No external dependencies: [`rng`] is a seeded SplitMix64 (the `rand`
//! stand-in of DESIGN.md §6) and [`check`] is the randomized-case test
//! support used across the workspace.

pub mod check;
pub mod gemm;
pub mod layers;
pub mod matrix;
pub mod model;
pub mod rng;

pub use gemm::{gemm, gemm_naive, gemm_with_threads, gemv_naive};
pub use layers::{renormalize_in_place, softmax_in_place, Affine, Layer, PNorm};
pub use matrix::Matrix;
pub use model::{Frame, Mlp, Scores};
pub use rng::Rng;
