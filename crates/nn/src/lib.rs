//! # darkside-nn — the dense compute substrate
//!
//! Implements DESIGN.md §2/§3 (`crates/nn`): an `f32` row-major [`Matrix`],
//! a cache-blocked, register-tiled, thread-parallel [`gemm`], the Kaldi-style
//! layer set (affine / p-norm pooling / renormalize / softmax / fixed LDA),
//! mini-batch SGD [`train`]ing with momentum + cross-entropy and masked
//! retraining hooks, and the batched [`FrameScorer`] trait — the single
//! scoring entry point every consumer (decoder, benches, accelerator sims)
//! uses, so dense and pruned models are interchangeable downstream.
//!
//! The naive triple-loop kernels ([`gemm_naive`], [`gemv_naive`]) are kept
//! in-tree permanently as the correctness oracle and the perf baseline that
//! `darkside-bench` measures speedups against.
//!
//! No external dependencies: [`rng`] is a seeded SplitMix64 (the `rand`
//! stand-in of DESIGN.md §6) and [`check`] is the randomized-case test
//! support used across the workspace.

pub mod check;
pub mod gemm;
pub mod layers;
pub mod matrix;
pub mod model;
pub mod rng;
pub mod scorer;
pub mod sparse;
pub mod train;

pub use darkside_error::Error;
pub use gemm::{gemm, gemm_naive, gemm_with_threads, gemv_naive};
pub use layers::{renormalize_in_place, softmax_in_place, Affine, Layer, PNorm};
pub use matrix::Matrix;
pub use model::{Frame, Mlp, Scores};
pub use rng::Rng;
pub use scorer::{stack_frames, traced_score_frames, FrameScorer, Precision};
pub use sparse::{bsr_spmm, csr_spmm};
pub use train::{evaluate, SgdConfig, TrainStats, Trainer};
