//! [`FrameScorer`] — the one acoustic-scoring entry point (ISSUE 2 API
//! redesign).
//!
//! The decoder, the pipeline, the benches, and the future accelerator
//! simulators all consume acoustic models through this trait, so a dense
//! [`Mlp`] and a CSR-served pruned model (`darkside_pruning::PrunedMlp`) are
//! interchangeable at every call site — no `Mlp`-vs-pruned branching
//! downstream. The contract is batched: one call scores a whole utterance so
//! every weight matrix is traversed once (the ISSUE 1 batching win).

use crate::matrix::Matrix;
use crate::model::{Frame, Mlp, Scores};
use darkside_trace as trace;

/// An acoustic model that maps feature frames to per-class posteriors.
pub trait FrameScorer {
    /// Expected feature dimensionality of every input frame.
    fn input_dim(&self) -> usize;

    /// Width of the posterior rows (the sub-phoneme class count).
    fn num_classes(&self) -> usize;

    /// Score a whole utterance: `frames.len() × num_classes()` softmax rows.
    fn score_frames(&self, frames: &[Frame]) -> Scores;

    /// Single-frame convenience wrapper (the slow path batching replaces).
    fn score_frame(&self, frame: &Frame) -> Scores {
        self.score_frames(std::slice::from_ref(frame))
    }
}

/// Kernel-timing hook for [`FrameScorer::score_frames`] implementations
/// (ISSUE 4): one whole-utterance timing sample plus frame/call counters
/// under `nn.score_frames.*`, shared by the dense [`Mlp`] and the CSR-backed
/// `darkside_pruning::PrunedMlp` so dense-vs-pruned scoring cost lands in
/// one comparable metric. Inactive trace costs a thread-local flag read.
pub fn traced_score_frames(num_frames: usize, f: impl FnOnce() -> Scores) -> Scores {
    if !trace::active() {
        return f();
    }
    let t0 = trace::now_ns();
    let out = f();
    trace::sample(
        "nn.score_frames.ns",
        trace::now_ns().saturating_sub(t0) as f64,
    );
    trace::counter("nn.score_frames.calls", 1);
    trace::counter("nn.score_frames.frames", num_frames as u64);
    out
}

/// Stack an utterance's frames into the `batch × dim` matrix the batched
/// forward passes consume. Shared by every [`FrameScorer`] implementation.
///
/// # Panics
/// If any frame's dimensionality differs from `dim`.
pub fn stack_frames(frames: &[Frame], dim: usize) -> Matrix {
    let mut x = Matrix::zeros(frames.len(), dim);
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(
            f.dim(),
            dim,
            "frame {i} has dim {} instead of {dim}",
            f.dim()
        );
        x.row_mut(i).copy_from_slice(&f.0);
    }
    x
}

impl FrameScorer for Mlp {
    fn input_dim(&self) -> usize {
        Mlp::input_dim(self)
    }

    fn num_classes(&self) -> usize {
        self.output_dim()
    }

    /// Batched scoring: one GEMM per layer for the whole utterance.
    fn score_frames(&self, frames: &[Frame]) -> Scores {
        traced_score_frames(frames.len(), || Scores {
            probs: self.forward(stack_frames(frames, Mlp::input_dim(self))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn mlp_scores_through_the_trait_object() {
        let mut rng = Rng::new(5);
        let mlp = Mlp::kaldi_style(24, 32, 4, 2, 7, &mut rng);
        let scorer: &dyn FrameScorer = &mlp;
        assert_eq!(scorer.input_dim(), 24);
        assert_eq!(scorer.num_classes(), 7);
        let frames: Vec<Frame> = (0..3)
            .map(|_| Frame((0..24).map(|_| rng.normal()).collect()))
            .collect();
        let scores = scorer.score_frames(&frames);
        assert_eq!(scores.num_frames(), 3);
        let single = scorer.score_frame(&frames[0]);
        crate::check::assert_slices_close(
            single.probs.row(0),
            scores.probs.row(0),
            1e-5,
            "trait single vs batched",
        );
    }
}
