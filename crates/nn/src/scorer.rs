//! [`FrameScorer`] — the one acoustic-scoring entry point (ISSUE 2 API
//! redesign).
//!
//! The decoder, the pipeline, the benches, and the future accelerator
//! simulators all consume acoustic models through this trait, so a dense
//! [`Mlp`] and a CSR-served pruned model (`darkside_pruning::PrunedMlp`) are
//! interchangeable at every call site — no `Mlp`-vs-pruned branching
//! downstream. The contract is batched: one call scores a whole utterance so
//! every weight matrix is traversed once (the ISSUE 1 batching win).

use crate::matrix::Matrix;
use crate::model::{Frame, Mlp, Scores};
use darkside_error::Error;
use darkside_trace as trace;

/// Numeric precision a [`FrameScorer`] backend computes in (ISSUE 10).
///
/// Defined here, next to the trait it qualifies, because every layer of the
/// stack needs it: `darkside-quant` implements the `Int8` backend, the core
/// pipeline and servable specs select it, and serving checkpoints stamp it
/// so a session is never restored onto a scorer of a different precision
/// (quantized and f32 scorers produce different posteriors, so mixing them
/// mid-utterance would silently corrupt the decode).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full-precision f32 scoring (every backend before ISSUE 10).
    #[default]
    F32,
    /// Symmetric int8 scoring with per-row weight scales
    /// (`darkside-quant`).
    Int8,
}

impl Precision {
    /// Stable wire tag (checkpoint codec).
    pub fn tag(self) -> u32 {
        match self {
            Precision::F32 => 0,
            Precision::Int8 => 1,
        }
    }

    /// Inverse of [`Precision::tag`]; unknown tags are an error, never a
    /// default.
    pub fn from_tag(tag: u32) -> Result<Self, Error> {
        match tag {
            0 => Ok(Precision::F32),
            1 => Ok(Precision::Int8),
            other => Err(Error::shape(
                "Precision",
                format!("unknown precision tag {other}"),
            )),
        }
    }

    /// Report/bench label ("f32" / "int8").
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// An acoustic model that maps feature frames to per-class posteriors.
pub trait FrameScorer {
    /// Expected feature dimensionality of every input frame.
    fn input_dim(&self) -> usize;

    /// Width of the posterior rows (the sub-phoneme class count).
    fn num_classes(&self) -> usize;

    /// Score a whole utterance: `frames.len() × num_classes()` softmax rows.
    fn score_frames(&self, frames: &[Frame]) -> Scores;

    /// Single-frame convenience wrapper (the slow path batching replaces).
    fn score_frame(&self, frame: &Frame) -> Scores {
        self.score_frames(std::slice::from_ref(frame))
    }
}

/// Kernel-timing hook for [`FrameScorer::score_frames`] implementations
/// (ISSUE 4): one whole-utterance timing sample plus frame/call counters
/// under `nn.score_frames.*`, shared by the dense [`Mlp`] and the CSR-backed
/// `darkside_pruning::PrunedMlp` so dense-vs-pruned scoring cost lands in
/// one comparable metric. Inactive trace costs a thread-local flag read.
pub fn traced_score_frames(num_frames: usize, f: impl FnOnce() -> Scores) -> Scores {
    if !trace::active() {
        return f();
    }
    let t0 = trace::now_ns();
    let out = f();
    trace::sample(
        "nn.score_frames.ns",
        trace::now_ns().saturating_sub(t0) as f64,
    );
    trace::counter("nn.score_frames.calls", 1);
    trace::counter("nn.score_frames.frames", num_frames as u64);
    out
}

/// Stack an utterance's frames into the `batch × dim` matrix the batched
/// forward passes consume. Shared by every [`FrameScorer`] implementation.
///
/// # Panics
/// If any frame's dimensionality differs from `dim`.
pub fn stack_frames(frames: &[Frame], dim: usize) -> Matrix {
    let mut x = Matrix::zeros(frames.len(), dim);
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(
            f.dim(),
            dim,
            "frame {i} has dim {} instead of {dim}",
            f.dim()
        );
        x.row_mut(i).copy_from_slice(&f.0);
    }
    x
}

impl FrameScorer for Mlp {
    fn input_dim(&self) -> usize {
        Mlp::input_dim(self)
    }

    fn num_classes(&self) -> usize {
        self.output_dim()
    }

    /// Batched scoring: one GEMM per layer for the whole utterance.
    fn score_frames(&self, frames: &[Frame]) -> Scores {
        traced_score_frames(frames.len(), || Scores {
            probs: self.forward(stack_frames(frames, Mlp::input_dim(self))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn precision_tags_round_trip() {
        for p in [Precision::F32, Precision::Int8] {
            assert_eq!(Precision::from_tag(p.tag()).unwrap(), p);
        }
        assert!(Precision::from_tag(7).is_err());
        assert_eq!(Precision::F32.label(), "f32");
        assert_eq!(Precision::Int8.label(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn mlp_scores_through_the_trait_object() {
        let mut rng = Rng::new(5);
        let mlp = Mlp::kaldi_style(24, 32, 4, 2, 7, &mut rng);
        let scorer: &dyn FrameScorer = &mlp;
        assert_eq!(scorer.input_dim(), 24);
        assert_eq!(scorer.num_classes(), 7);
        let frames: Vec<Frame> = (0..3)
            .map(|_| Frame((0..24).map(|_| rng.normal()).collect()))
            .collect();
        let scores = scorer.score_frames(&frames);
        assert_eq!(scores.num_frames(), 3);
        let single = scorer.score_frame(&frames[0]);
        crate::check::assert_slices_close(
            single.probs.row(0),
            scores.probs.row(0),
            1e-5,
            "trait single vs batched",
        );
    }
}
