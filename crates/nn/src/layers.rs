//! Kaldi-style MLP layers on the GEMM substrate (DESIGN.md §2, Table I).
//!
//! The acoustic model is a stack of `affine → p-norm → renormalize` blocks
//! with a fixed LDA-like input transform and a softmax output — the layer
//! inventory of the paper's Kaldi nnet2 MLP. Every layer maps a
//! `batch × in_dim` matrix to `batch × out_dim`, so one utterance's frames
//! flow through each weight matrix in a single GEMM.

use crate::matrix::Matrix;
use crate::rng::Rng;

/// Fully-connected layer: `Y = X · W + b` with `W` stored `in_dim × out_dim`
/// so the batched forward is one row-major GEMM, no transposition.
#[derive(Clone, Debug)]
pub struct Affine {
    /// `in_dim × out_dim` weights.
    pub w: Matrix,
    /// `out_dim` bias.
    pub b: Vec<f32>,
}

impl Affine {
    /// Glorot-style init: N(0, sqrt(2 / (in + out))).
    pub fn new_random(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let std = (2.0 / (in_dim + out_dim) as f32).sqrt();
        Self {
            w: Matrix::from_fn(in_dim, out_dim, |_, _| rng.normal_scaled(0.0, std)),
            b: vec![0.0; out_dim],
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Batched forward: `batch × in_dim` → `batch × out_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for i in 0..y.rows() {
            for (v, &bias) in y.row_mut(i).iter_mut().zip(&self.b) {
                *v += bias;
            }
        }
        y
    }
}

/// p-norm pooling (Kaldi `PnormComponent`, p = 2): groups of `group` inputs
/// collapse to their Euclidean norm, `out_dim = in_dim / group`.
#[derive(Clone, Copy, Debug)]
pub struct PNorm {
    pub group: usize,
}

impl PNorm {
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert!(self.group > 0 && x.cols().is_multiple_of(self.group));
        let out_cols = x.cols() / self.group;
        Matrix::from_fn(x.rows(), out_cols, |i, j| {
            x.row(i)[j * self.group..(j + 1) * self.group]
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt()
        })
    }
}

/// Kaldi `NormalizeComponent`: scale each row so its root-mean-square is 1
/// (`x * sqrt(d / Σx²)`). All-zero rows are left at zero.
pub fn renormalize_in_place(x: &mut Matrix) {
    let d = x.cols() as f32;
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        let sumsq: f32 = row.iter().map(|v| v * v).sum();
        if sumsq > 0.0 {
            let scale = (d / sumsq).sqrt();
            for v in row {
                *v *= scale;
            }
        }
    }
}

/// Numerically stable row softmax: subtract the row max before
/// exponentiating, so logits of any magnitude produce finite probabilities.
pub fn softmax_in_place(x: &mut Matrix) {
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        if row.is_empty() {
            continue;
        }
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        // sum >= 1 because the max element contributes exp(0) = 1.
        for v in row {
            *v /= sum;
        }
    }
}

/// One layer of the MLP. An enum (not a trait object) keeps the model
/// serializable-by-hand and the dispatch branch-predictable.
#[derive(Clone, Debug)]
pub enum Layer {
    /// Fixed LDA-like input transform — excluded from pruning (Table I, FC0).
    Lda(Affine),
    Affine(Affine),
    PNorm(PNorm),
    Renormalize,
    Softmax,
}

impl Layer {
    pub fn forward(&self, x: Matrix) -> Matrix {
        match self {
            Layer::Lda(a) | Layer::Affine(a) => a.forward(&x),
            Layer::PNorm(p) => p.forward(&x),
            Layer::Renormalize => {
                let mut x = x;
                renormalize_in_place(&mut x);
                x
            }
            Layer::Softmax => {
                let mut x = x;
                softmax_in_place(&mut x);
                x
            }
        }
    }

    /// Output width given an input width (shape propagation).
    pub fn out_dim(&self, in_dim: usize) -> usize {
        match self {
            Layer::Lda(a) | Layer::Affine(a) => a.out_dim(),
            Layer::PNorm(p) => in_dim / p.group,
            Layer::Renormalize | Layer::Softmax => in_dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_slices_close;

    #[test]
    fn affine_matches_manual_dot() {
        let w = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let layer = Affine {
            w,
            b: vec![0.5, -0.5, 0.0],
        };
        let x = Matrix::new(1, 2, vec![2.0, -1.0]).unwrap();
        let y = layer.forward(&x);
        // [2, -1] · [[1,2,3],[4,5,6]] = [-2, -1, 0]; + bias
        assert_slices_close(y.as_slice(), &[-1.5, -1.5, 0.0], 1e-6, "affine");
    }

    #[test]
    fn pnorm_is_group_euclidean_norm() {
        let x = Matrix::new(1, 4, vec![3.0, 4.0, 0.0, -2.0]).unwrap();
        let y = PNorm { group: 2 }.forward(&x);
        assert_slices_close(y.as_slice(), &[5.0, 2.0], 1e-6, "pnorm");
    }

    #[test]
    fn renormalize_sets_rms_to_one() {
        let mut x = Matrix::new(2, 4, vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        renormalize_in_place(&mut x);
        let rms: f32 = (x.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-6);
        assert_eq!(x.row(1), &[0.0; 4]); // zero row untouched
    }
}
