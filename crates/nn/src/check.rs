//! Randomized-case test support — the in-tree stand-in for `proptest`
//! (DESIGN.md §6; the build environment is offline).
//!
//! [`run_cases`] drives a closure over `n` seeded cases and, on panic,
//! re-raises with the case index and derived seed in the message so a failure
//! reproduces with a one-line unit test. No shrinking — shapes in this
//! workspace are small enough that the failing case is the minimal one.

use crate::matrix::Matrix;
use crate::rng::Rng;

/// Relative closeness: `|a-b| <= tol * max(1, |a|, |b|)`.
///
/// The `1` floor makes the comparison absolute for values near zero, where
/// cancellation makes relative error meaningless. NaN compares unequal.
pub fn rel_close(a: f32, b: f32, tol: f32) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Assert two slices elementwise [`rel_close`], with located diagnostics.
pub fn assert_slices_close(got: &[f32], want: &[f32], tol: f32, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            rel_close(g, w, tol),
            "{what}: element {i}: got {g}, want {w} (tol {tol})"
        );
    }
}

/// Assert two matrices have equal shape and elementwise-close contents.
pub fn assert_matrices_close(got: &Matrix, want: &Matrix, tol: f32, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}: shape mismatch"
    );
    assert_slices_close(got.as_slice(), want.as_slice(), tol, what);
}

/// A matrix of i.i.d. uniform values in `[-scale, scale)`.
pub fn random_matrix(rng: &mut Rng, rows: usize, cols: usize, scale: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-scale, scale))
}

/// Run `n` randomized cases. Each case gets its own [`Rng`] derived from
/// `seed` and the case index, so any single case replays in isolation as
/// `f(&mut Rng::new(seed ^ (i as u64) << 32 ...), i)` — the panic message
/// spells out the exact derived seed.
pub fn run_cases(seed: u64, n: usize, mut f: impl FnMut(&mut Rng, usize)) {
    for case in 0..n {
        let case_seed = derive_seed(seed, case);
        let mut rng = Rng::new(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, case)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("case {case}/{n} (derived seed {case_seed:#x}) failed: {msg}");
        }
    }
}

/// Seed for case `i` of a run seeded with `seed` (exposed for replaying).
pub fn derive_seed(seed: u64, case: usize) -> u64 {
    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_close_semantics() {
        assert!(rel_close(1.0, 1.0 + 5e-5, 1e-4));
        assert!(!rel_close(1.0, 1.01, 1e-4));
        assert!(rel_close(1e-9, 0.0, 1e-4)); // absolute floor near zero
        assert!(!rel_close(f32::NAN, f32::NAN, 1e-4));
        assert!(rel_close(2e6, 2e6 * (1.0 + 5e-5), 1e-4)); // relative at scale
    }

    #[test]
    fn run_cases_reports_case_and_seed() {
        let err = std::panic::catch_unwind(|| {
            run_cases(99, 10, |_, case| assert!(case < 3, "boom"));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("case 3/10"), "got: {msg}");
        assert!(msg.contains("boom"), "got: {msg}");
    }
}
