//! Mini-batch SGD with momentum + cross-entropy for the acoustic MLP
//! (ISSUE 2 tentpole, DESIGN.md §2).
//!
//! The backward pass mirrors the forward layer inventory: affine layers
//! backprop through their GEMM (and accumulate weight/bias gradients),
//! p-norm and renormalize backprop through their closed-form Jacobians, and
//! the final softmax is fused with the cross-entropy loss so the gradient at
//! the logits is just `probs − onehot`. The fixed LDA input layer propagates
//! gradient but is never updated (Table I: FC0 is unprunable and untrained).
//!
//! Masked retraining (`darkside-pruning`) plugs in through the `after_step`
//! hook of [`Trainer::train_epoch`]: the pruning crate re-applies its keep
//! masks after every update, which is exactly Han et al.'s retraining loop,
//! without this crate depending on the pruning crate.

use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::model::Mlp;
use crate::rng::Rng;

/// SGD hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SgdConfig {
    pub learning_rate: f32,
    pub momentum: f32,
    pub batch_size: usize,
    /// Multiplier applied to the learning rate after each epoch.
    pub lr_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.02,
            momentum: 0.9,
            batch_size: 128,
            lr_decay: 0.92,
        }
    }
}

/// Loss/accuracy summary of one pass over a frame set.
#[derive(Clone, Copy, Debug)]
pub struct TrainStats {
    /// Mean cross-entropy (nats per frame).
    pub mean_loss: f32,
    /// Frame-level top-1 accuracy.
    pub accuracy: f32,
}

/// Mini-batch SGD driver holding per-layer momentum state.
#[derive(Clone, Debug)]
pub struct Trainer {
    pub config: SgdConfig,
    /// Momentum buffers, indexed like `Mlp::layers`; `None` for layers
    /// without trainable parameters (LDA included — it is fixed).
    velocity: Vec<Option<(Matrix, Vec<f32>)>>,
}

impl Trainer {
    pub fn new(config: SgdConfig, mlp: &Mlp) -> Self {
        let velocity = mlp
            .layers
            .iter()
            .map(|l| match l {
                Layer::Affine(a) => {
                    Some((Matrix::zeros(a.w.rows(), a.w.cols()), vec![0.0; a.b.len()]))
                }
                _ => None,
            })
            .collect();
        Self { config, velocity }
    }

    /// Decay the learning rate by the configured per-epoch factor.
    pub fn end_epoch(&mut self) {
        self.config.learning_rate *= self.config.lr_decay;
    }

    /// One shuffled pass over `(features, labels)`; returns the epoch's mean
    /// loss/accuracy. `after_step` runs after every parameter update — the
    /// masked-retraining hook (`|_| {}` for plain training).
    pub fn train_epoch(
        &mut self,
        mlp: &mut Mlp,
        features: &Matrix,
        labels: &[u32],
        rng: &mut Rng,
        mut after_step: impl FnMut(&mut Mlp),
    ) -> TrainStats {
        assert_eq!(features.rows(), labels.len(), "train_epoch: label count");
        assert!(!labels.is_empty(), "train_epoch: empty frame set");
        let n = features.rows();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates with the workspace Rng keeps epochs reproducible.
        for i in (1..n).rev() {
            order.swap(i, rng.below(i + 1));
        }
        let (mut loss_sum, mut correct) = (0.0f64, 0usize);
        for chunk in order.chunks(self.config.batch_size.max(1)) {
            let mut x = Matrix::zeros(chunk.len(), features.cols());
            let mut y = Vec::with_capacity(chunk.len());
            for (r, &idx) in chunk.iter().enumerate() {
                x.row_mut(r).copy_from_slice(features.row(idx));
                y.push(labels[idx]);
            }
            let (loss, hits) = self.step(mlp, x, &y);
            loss_sum += loss as f64 * chunk.len() as f64;
            correct += hits;
            after_step(mlp);
        }
        TrainStats {
            mean_loss: (loss_sum / n as f64) as f32,
            accuracy: correct as f32 / n as f32,
        }
    }

    /// Forward, fused softmax/cross-entropy, backward, momentum update.
    /// Returns (mean batch loss, top-1 hits).
    fn step(&mut self, mlp: &mut Mlp, x: Matrix, labels: &[u32]) -> (f32, usize) {
        assert!(
            matches!(mlp.layers.last(), Some(Layer::Softmax)),
            "Trainer: the model must end in Softmax for the fused CE loss"
        );
        let batch = x.rows();
        // Forward with cached layer inputs: acts[i] is the input to layer i,
        // acts[last] is the softmax output.
        let mut acts: Vec<Matrix> = Vec::with_capacity(mlp.layers.len() + 1);
        acts.push(x);
        for layer in &mlp.layers {
            let next = layer.forward(acts.last().unwrap().clone());
            acts.push(next);
        }
        let probs = acts.last().unwrap();
        let (mut loss, mut hits) = (0.0f64, 0usize);
        // Gradient at the logits: (probs − onehot) / batch.
        let mut grad = probs.clone();
        for (i, &label) in labels.iter().enumerate() {
            let row = grad.row_mut(i);
            let p = row[label as usize];
            loss += -(p.max(f32::MIN_POSITIVE) as f64).ln();
            row[label as usize] -= 1.0;
            for v in row.iter_mut() {
                *v /= batch as f32;
            }
            let best = probs
                .row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c as u32);
            if best == Some(label) {
                hits += 1;
            }
        }
        // Backward, skipping the softmax layer (its gradient is fused above).
        for li in (0..mlp.layers.len() - 1).rev() {
            let input = &acts[li];
            let output = &acts[li + 1];
            grad = match &mut mlp.layers[li] {
                Layer::Affine(a) => {
                    let gx = grad.matmul(&a.w.transpose());
                    let gw = input.transpose().matmul(&grad);
                    let gb: Vec<f32> = (0..a.b.len())
                        .map(|j| (0..grad.rows()).map(|i| grad.get(i, j)).sum())
                        .collect();
                    let (vw, vb) = self.velocity[li]
                        .as_mut()
                        .expect("affine layer has momentum state");
                    let (lr, mom) = (self.config.learning_rate, self.config.momentum);
                    for ((w, v), g) in
                        a.w.as_mut_slice()
                            .iter_mut()
                            .zip(vw.as_mut_slice())
                            .zip(gw.as_slice())
                    {
                        *v = mom * *v - lr * g;
                        *w += *v;
                    }
                    for ((b, v), g) in a.b.iter_mut().zip(vb).zip(&gb) {
                        *v = mom * *v - lr * g;
                        *b += *v;
                    }
                    gx
                }
                // Fixed input transform: propagate nothing further (it is
                // the first layer) and never update.
                Layer::Lda(_) => break,
                Layer::PNorm(p) => {
                    let group = p.group;
                    Matrix::from_fn(input.rows(), input.cols(), |i, k| {
                        let j = k / group;
                        let y = output.get(i, j);
                        if y > 0.0 {
                            grad.get(i, j) * input.get(i, k) / y
                        } else {
                            0.0
                        }
                    })
                }
                Layer::Renormalize => {
                    let d = input.cols() as f32;
                    let mut gx = Matrix::zeros(input.rows(), input.cols());
                    for i in 0..input.rows() {
                        let xr = input.row(i);
                        let gr = grad.row(i);
                        let sumsq: f32 = xr.iter().map(|v| v * v).sum();
                        if sumsq == 0.0 {
                            continue;
                        }
                        let scale = (d / sumsq).sqrt();
                        let dot: f32 = xr.iter().zip(gr).map(|(x, g)| x * g).sum();
                        for (k, out) in gx.row_mut(i).iter_mut().enumerate() {
                            *out = scale * (gr[k] - xr[k] * dot / sumsq);
                        }
                    }
                    gx
                }
                Layer::Softmax => unreachable!("softmax only terminates the stack"),
            };
        }
        ((loss / batch as f64) as f32, hits)
    }
}

/// Cross-entropy / top-1 accuracy of `mlp` on a labeled frame set, without
/// touching parameters (held-out evaluation and convergence tracking).
pub fn evaluate(mlp: &Mlp, features: &Matrix, labels: &[u32]) -> TrainStats {
    assert_eq!(features.rows(), labels.len(), "evaluate: label count");
    let probs = mlp.forward(features.clone());
    let (mut loss, mut hits) = (0.0f64, 0usize);
    for (i, &label) in labels.iter().enumerate() {
        let row = probs.row(i);
        loss += -(row[label as usize].max(f32::MIN_POSITIVE) as f64).ln();
        let best = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c as u32);
        if best == Some(label) {
            hits += 1;
        }
    }
    TrainStats {
        mean_loss: (loss / labels.len().max(1) as f64) as f32,
        accuracy: hits as f32 / labels.len().max(1) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_slices_close;
    use crate::layers::Affine;

    /// Numerical-gradient check of the full backward pass: perturb a few
    /// weights of every trainable layer and compare the loss delta with the
    /// analytic gradient implied by a single SGD step at momentum 0.
    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let mut rng = Rng::new(0x9A);
        let mut mlp = Mlp::kaldi_style(6, 8, 2, 2, 5, &mut rng);
        let x = crate::check::random_matrix(&mut rng, 4, 6, 1.0);
        let labels = [0u32, 3, 1, 4];
        let loss_of = |m: &Mlp| evaluate(m, &x, &labels).mean_loss;

        // Analytic gradient via one lr=1, momentum=0 step: w' − w = −grad.
        let cfg = SgdConfig {
            learning_rate: 1.0,
            momentum: 0.0,
            batch_size: 4,
            lr_decay: 1.0,
        };
        let mut stepped = mlp.clone();
        let mut trainer = Trainer::new(cfg, &stepped);
        let x2 = x.clone();
        trainer.step(&mut stepped, x2, &labels);

        let eps = 1e-3f32;
        for li in 0..mlp.layers.len() {
            let (Layer::Affine(_), Layer::Affine(after)) = (&mlp.layers[li], &stepped.layers[li])
            else {
                continue;
            };
            let after = after.clone();
            for &(i, j) in &[(0usize, 0usize), (1, 2), (3, 1)] {
                let Layer::Affine(a) = &mut mlp.layers[li] else {
                    unreachable!()
                };
                if i >= a.w.rows() || j >= a.w.cols() {
                    continue;
                }
                let orig = a.w.get(i, j);
                let analytic = orig - after.w.get(i, j);
                a.w.set(i, j, orig + eps);
                let up = loss_of(&mlp);
                let Layer::Affine(a) = &mut mlp.layers[li] else {
                    unreachable!()
                };
                a.w.set(i, j, orig - eps);
                let down = loss_of(&mlp);
                let Layer::Affine(a) = &mut mlp.layers[li] else {
                    unreachable!()
                };
                a.w.set(i, j, orig);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() <= 2e-2 * numeric.abs().max(0.05),
                    "layer {li} w[{i},{j}]: analytic {analytic}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_a_separable_task() {
        // Two Gaussian blobs in 4-D, labels 0/1: a few epochs should crush
        // the loss and reach high accuracy.
        let mut rng = Rng::new(0x77);
        let n = 200;
        let mut feats = Matrix::zeros(n, 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % 2) as u32;
            let center = if class == 0 { 1.5 } else { -1.5 };
            for v in feats.row_mut(i) {
                *v = rng.normal_scaled(center, 0.7);
            }
            labels.push(class);
        }
        let mut mlp = Mlp::kaldi_style(4, 8, 2, 1, 2, &mut rng);
        let before = evaluate(&mlp, &feats, &labels);
        let mut trainer = Trainer::new(
            SgdConfig {
                learning_rate: 0.05,
                momentum: 0.9,
                batch_size: 32,
                lr_decay: 1.0,
            },
            &mlp,
        );
        for _ in 0..12 {
            trainer.train_epoch(&mut mlp, &feats, &labels, &mut rng, |_| {});
        }
        let after = evaluate(&mlp, &feats, &labels);
        assert!(
            after.mean_loss < 0.5 * before.mean_loss,
            "loss {} -> {}",
            before.mean_loss,
            after.mean_loss
        );
        assert!(after.accuracy > 0.9, "accuracy {}", after.accuracy);
    }

    #[test]
    fn lda_layer_is_never_updated_and_hook_runs_per_step() {
        let mut rng = Rng::new(0x31);
        let mut mlp = Mlp::kaldi_style(5, 8, 2, 1, 3, &mut rng);
        let Layer::Lda(before) = &mlp.layers[0] else {
            panic!("layer 0 is LDA")
        };
        let lda_before: Affine = before.clone();
        let feats = crate::check::random_matrix(&mut rng, 40, 5, 1.0);
        let labels: Vec<u32> = (0..40).map(|i| (i % 3) as u32).collect();
        let mut trainer = Trainer::new(
            SgdConfig {
                batch_size: 16,
                ..SgdConfig::default()
            },
            &mlp,
        );
        let mut steps = 0;
        trainer.train_epoch(&mut mlp, &feats, &labels, &mut rng, |_| steps += 1);
        assert_eq!(steps, 40usize.div_ceil(16));
        let Layer::Lda(after) = &mlp.layers[0] else {
            panic!("layer 0 is LDA")
        };
        assert_slices_close(after.w.as_slice(), lda_before.w.as_slice(), 0.0, "LDA w");
        assert_slices_close(&after.b, &lda_before.b, 0.0, "LDA b");
    }
}
