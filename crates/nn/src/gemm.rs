//! Cache-blocked, register-tiled, thread-parallel GEMM (DESIGN.md §2, ISSUE 1).
//!
//! `C = A · B` for row-major `f32` slices, in the classic three-level
//! BLIS/GotoBLAS blocking scheme:
//!
//! * **NC × KC** panels of `B` are packed into contiguous `NR`-column strips
//!   (shared by every thread),
//! * **MC × KC** panels of `A` are packed into `MR`-row strips (one buffer
//!   per thread),
//! * an **MR × NR** register-tiled micro-kernel accumulates `KC` rank-1
//!   updates entirely in registers before touching `C`.
//!
//! Parallelism: the `MC` row-panels of each `(NC, KC)` iteration are dealt
//! round-robin to `std::thread::scope` workers, which write disjoint row
//! bands of `C` (no locks, no atomics — crossbeam/parking_lot are
//! deliberately *not* dependencies, see DESIGN.md §6).
//!
//! On x86-64 the micro-kernel is instantiated twice — a baseline build and an
//! AVX2+FMA build selected once per call via `is_x86_feature_detected!` — so
//! the same binary runs on any machine and still uses 256-bit FMAs where the
//! hardware has them.
//!
//! [`gemm_naive`] / [`gemv_naive`] are the permanent correctness oracle and
//! perf baseline (`darkside-bench` reports speedups against them). Floating
//! point caveat: the blocked kernel sums strictly in `k` order per output
//! element, like the naive loop, but the FMA path contracts multiply+add, so
//! results agree to ~1e-6 relative, not bitwise — tests use the 1e-4 relative
//! tolerance from the acceptance criteria.

use darkside_trace as trace;

/// Micro-tile rows (register blocking in `m`).
pub const MR: usize = 8;
/// Micro-tile columns (register blocking in `n`; one AVX2 vector of f32).
pub const NR: usize = 8;
/// Cache-block size in `m`: an MC×KC packed A panel stays L2-resident.
const MC: usize = 128;
/// Cache-block size in `k`: MR×KC and KC×NR strips stay L1-resident.
const KC: usize = 256;
/// Cache-block size in `n`: a KC×NC packed B panel stays L2/L3-resident.
const NC: usize = 1024;

/// Work (in multiply-adds) below which spawning threads costs more than it
/// buys. Shared with the sparse kernels (`crate::sparse`).
pub(crate) const PARALLEL_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// Naive textbook triple loop, `C = A · B`. The correctness oracle and the
/// single-thread perf baseline — do not "optimize" this.
///
/// `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all row-major.
pub fn gemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_shapes(m, n, k, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = sum;
        }
    }
}

/// Dense mat-vec `y = A · x` (`A` is `m×n` row-major). This is the dense
/// baseline the CSR SpMV in `darkside-pruning` must beat at high sparsity.
pub fn gemv_naive(m: usize, n: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "gemv: A shape mismatch");
    assert_eq!(x.len(), n, "gemv: x length mismatch");
    assert_eq!(y.len(), m, "gemv: y length mismatch");
    for (yi, row) in y.iter_mut().zip(a.chunks_exact(n.max(1)).take(m)) {
        *yi = row.iter().zip(x).map(|(&w, &v)| w * v).sum();
    }
}

/// Blocked, packed, register-tiled, multi-threaded `C = A · B`.
///
/// Thread count defaults to [`std::thread::available_parallelism`] for large
/// problems and 1 when the work would not amortize a spawn.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let threads = if m * n * k >= PARALLEL_FLOP_THRESHOLD {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        1
    };
    gemm_with_threads(m, n, k, a, b, c, threads);
}

/// Kernel-timing hook (ISSUE 4): time `f` as one whole call on the caller's
/// thread and charge it to the `nn.<kernel>` trace metrics. Inactive trace
/// costs one thread-local flag read.
#[inline]
pub(crate) fn timed_kernel<T>(kernel: &str, flops: u64, f: impl FnOnce() -> T) -> T {
    if !trace::active() {
        return f();
    }
    let t0 = trace::now_ns();
    let out = f();
    let ns = trace::now_ns().saturating_sub(t0);
    let mut name = String::with_capacity(3 + kernel.len() + 6);
    name.push_str("nn.");
    name.push_str(kernel);
    let base = name.len();
    name.push_str(".ns");
    trace::sample(&name, ns as f64);
    name.truncate(base);
    name.push_str(".calls");
    trace::counter(&name, 1);
    if flops > 0 {
        name.truncate(base);
        name.push_str(".flops");
        trace::counter(&name, flops);
    }
    out
}

/// [`gemm`] with an explicit worker count (`threads >= 1`).
pub fn gemm_with_threads(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    timed_kernel("gemm", 2 * (m * n * k) as u64, || {
        gemm_blocked(m, n, k, a, b, c, threads)
    });
}

fn gemm_blocked(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    check_shapes(m, n, k, a, b, c);
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kernel = select_kernel();
    // One ic block per MC rows; threads beyond that have nothing to do.
    let threads = threads.clamp(1, m.div_ceil(MC));

    let mut bpack = vec![0.0f32; KC * NC];
    for jc in (0..n).step_by(NC) {
        let nc_eff = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc_eff = KC.min(k - pc);
            pack_b(&mut bpack, b, n, pc, kc_eff, jc, nc_eff);
            let bpack = &bpack[..];
            if threads == 1 {
                let mut apack = vec![0.0f32; MC * KC];
                for (ic_idx, band) in c.chunks_mut(MC * n).enumerate() {
                    process_row_band(
                        ic_idx * MC,
                        band,
                        a,
                        bpack,
                        &mut apack,
                        m,
                        n,
                        k,
                        pc,
                        kc_eff,
                        jc,
                        nc_eff,
                        kernel,
                    );
                }
            } else {
                // Deal the MC-row bands of C round-robin onto `threads` workers.
                // Bands are disjoint `&mut` slices, so no synchronization is
                // needed beyond the scope join.
                let mut assignments: Vec<Vec<(usize, &mut [f32])>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (ic_idx, band) in c.chunks_mut(MC * n).enumerate() {
                    assignments[ic_idx % threads].push((ic_idx * MC, band));
                }
                std::thread::scope(|scope| {
                    for bands in assignments {
                        scope.spawn(move || {
                            let mut apack = vec![0.0f32; MC * KC];
                            for (ic, band) in bands {
                                process_row_band(
                                    ic, band, a, bpack, &mut apack, m, n, k, pc, kc_eff, jc,
                                    nc_eff, kernel,
                                );
                            }
                        });
                    }
                });
            }
        }
    }
}

fn check_shapes(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm: B is not {k}x{n}");
    assert_eq!(c.len(), m * n, "gemm: C is not {m}x{n}");
}

/// One MC-row band of C for one (jc, pc) panel: pack the A panel, then run
/// the micro-kernel over every MR×NR tile.
#[allow(clippy::too_many_arguments)]
fn process_row_band(
    ic: usize,
    band: &mut [f32],
    a: &[f32],
    bpack: &[f32],
    apack: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    pc: usize,
    kc_eff: usize,
    jc: usize,
    nc_eff: usize,
    kernel: MicroKernel,
) {
    let mc_eff = MC.min(m - ic);
    debug_assert_eq!(band.len(), mc_eff * n);
    pack_a(apack, a, k, ic, mc_eff, pc, kc_eff);
    for jr in (0..nc_eff).step_by(NR) {
        let nr_eff = NR.min(nc_eff - jr);
        let bstrip = &bpack[(jr / NR) * KC * NR..][..kc_eff * NR];
        for ir in (0..mc_eff).step_by(MR) {
            let mr_eff = MR.min(mc_eff - ir);
            let astrip = &apack[(ir / MR) * KC * MR..][..kc_eff * MR];
            let c_tile = &mut band[ir * n + jc + jr..];
            // SAFETY: the kernel only requires its target features when it is
            // the AVX2 instantiation, which select_kernel() only returns after
            // runtime detection succeeded.
            unsafe { kernel(kc_eff, astrip, bstrip, c_tile, n, mr_eff, nr_eff) };
        }
    }
}

/// Pack the `mc × kc` panel of A at `(row0, col0)` into MR-row strips:
/// strip `ir` holds rows `row0 + ir*MR ..`, laid out `p`-major so the kernel
/// reads `MR` contiguous values per `k` step. Edge strips are zero-padded.
fn pack_a(
    apack: &mut [f32],
    a: &[f32],
    lda: usize,
    row0: usize,
    mc: usize,
    col0: usize,
    kc: usize,
) {
    for ir in (0..mc).step_by(MR) {
        let strip = &mut apack[(ir / MR) * KC * MR..][..kc * MR];
        let rows = MR.min(mc - ir);
        for p in 0..kc {
            let dst = &mut strip[p * MR..p * MR + MR];
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < rows {
                    a[(row0 + ir + r) * lda + col0 + p]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pack the `kc × nc` panel of B at `(row0, col0)` into NR-column strips:
/// strip `jr` holds columns `col0 + jr*NR ..`, laid out `p`-major so the
/// kernel reads `NR` contiguous values per `k` step. Edge strips zero-padded.
fn pack_b(
    bpack: &mut [f32],
    b: &[f32],
    ldb: usize,
    row0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
) {
    for jr in (0..nc).step_by(NR) {
        let strip = &mut bpack[(jr / NR) * KC * NR..][..kc * NR];
        let cols = NR.min(nc - jr);
        for p in 0..kc {
            let src_row = (row0 + p) * ldb + col0 + jr;
            let dst = &mut strip[p * NR..p * NR + NR];
            for (cidx, d) in dst.iter_mut().enumerate() {
                *d = if cidx < cols { b[src_row + cidx] } else { 0.0 };
            }
        }
    }
}

/// `kernel(kc, a_strip, b_strip, c_tile, ldc, mr_eff, nr_eff)`:
/// `c_tile[r*ldc + j] += Σ_p a_strip[p*MR + r] * b_strip[p*NR + j]`
/// for `r < mr_eff`, `j < nr_eff`.
type MicroKernel = unsafe fn(usize, &[f32], &[f32], &mut [f32], usize, usize, usize);

/// The register-tile accumulation loop shared by the dense micro-kernel and
/// the BSR block kernel (`crate::sparse`): `kc` rank-1 updates into an
/// MR×NR accumulator held entirely in registers. `ap` is `p`-major MR-wide,
/// `bp` is `p`-major NR-wide — the layouts [`pack_a`]/[`pack_b`] produce and
/// BSR blocks are stored in. `USE_FMA` must only be true when the
/// surrounding instantiation enables the `fma` target feature — otherwise
/// `mul_add` lowers to a libm call and is ~100× slower than mul+add.
#[inline(always)]
pub(crate) fn accumulate_tile<const USE_FMA: bool>(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (accr, &ar) in acc.iter_mut().zip(av) {
            for (accv, &bj) in accr.iter_mut().zip(bv) {
                *accv = if USE_FMA {
                    ar.mul_add(bj, *accv)
                } else {
                    ar * bj + *accv
                };
            }
        }
    }
}

/// The MR×NR register-tiled micro-kernel: accumulate, then spill to C.
#[inline(always)]
fn kernel_body<const USE_FMA: bool>(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    accumulate_tile::<USE_FMA>(kc, ap, bp, &mut acc);
    for (r, accr) in acc.iter().enumerate().take(mr_eff) {
        let crow = &mut c[r * ldc..r * ldc + nr_eff];
        for (cv, &av) in crow.iter_mut().zip(accr) {
            *cv += av;
        }
    }
}

unsafe fn kernel_generic(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    kernel_body::<false>(kc, ap, bp, c, ldc, mr_eff, nr_eff);
}

/// AVX2+FMA instantiation: `kernel_body` is `#[inline(always)]`, so its loops
/// are recompiled here with 256-bit vectors and fused multiply-adds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel_avx2_fma(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    kernel_body::<true>(kc, ap, bp, c, ldc, mr_eff, nr_eff);
}

fn select_kernel() -> MicroKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return kernel_avx2_fma;
        }
    }
    kernel_generic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_known_product() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c_naive = [0.0f32; 4];
        let mut c_blocked = [0.0f32; 4];
        gemm_naive(2, 2, 2, &a, &b, &mut c_naive);
        gemm(2, 2, 2, &a, &b, &mut c_blocked);
        assert_eq!(c_naive, [19.0, 22.0, 43.0, 50.0]);
        assert_eq!(c_blocked, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn zero_dimensions_are_noops() {
        let mut c = [7.0f32; 6];
        gemm(2, 3, 0, &[], &[], &mut c);
        assert_eq!(c, [0.0; 6]); // k = 0 means C = 0, not "untouched"
        gemm(0, 0, 5, &[], &[], &mut []);
    }

    #[test]
    fn gemv_matches_gemm_column() {
        let m = 7;
        let n = 13;
        let a: Vec<f32> = (0..m * n).map(|v| (v % 11) as f32 - 5.0).collect();
        let x: Vec<f32> = (0..n).map(|v| (v % 5) as f32 - 2.0).collect();
        let mut y = vec![0.0f32; m];
        gemv_naive(m, n, &a, &x, &mut y);
        let mut c = vec![0.0f32; m];
        gemm_naive(m, 1, n, &a, &x, &mut c);
        assert_eq!(y, c);
    }
}
