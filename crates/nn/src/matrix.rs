//! Row-major `f32` matrix, the one tensor type of the workspace (DESIGN.md §2).

use crate::gemm;
use darkside_error::Error;

/// Dense row-major `f32` matrix.
///
/// `data[i * cols + j]` is element `(i, j)`. All kernels in [`crate::gemm`]
/// operate on the raw slice; this type owns the storage and the shape.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing row-major buffer, validating the shape.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, Error> {
        if data.len() != rows * cols {
            return Err(Error::shape(
                "Matrix::new",
                format!("{} elements for a {rows}x{cols} shape", data.len()),
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    #[deprecated(note = "use Matrix::new, which reports the shape mismatch as an Error")]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        match Self::new(rows, cols, data) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterate rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// `self · rhs` via the blocked, parallel kernel ([`gemm::gemm`]).
    ///
    /// # Panics
    /// If the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm::gemm(
            self.rows,
            rhs.cols,
            self.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// `self · rhs` via the naive triple-loop oracle ([`gemm::gemm_naive`]).
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows);
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm::gemm_naive(
            self.rows,
            rhs.cols,
            self.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn new_rejects_bad_shapes() {
        assert!(Matrix::new(2, 3, vec![0.0; 6]).is_ok());
        let err = Matrix::new(2, 3, vec![0.0; 5]).unwrap_err();
        assert!(err.to_string().contains("Matrix::new"), "{err}");
    }

    #[test]
    fn empty_rows_iter() {
        let m = Matrix::zeros(0, 4);
        assert_eq!(m.rows_iter().count(), 0);
        let m = Matrix::zeros(3, 0);
        assert_eq!(m.rows_iter().count(), 0);
    }
}
