//! Seeded PRNG — the in-tree stand-in for the `rand` crate (DESIGN.md §6).
//!
//! SplitMix64 core (Steele/Lea/Flood 2014): one 64-bit state, passes BigCrush
//! for this workspace's needs (weight init, test-case generation, corpus
//! sampling), and keeps every experiment reproducible bit-for-bit.

/// SplitMix64 generator with a Box-Muller normal sampler.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
    /// Box-Muller produces pairs; the spare is cached here.
    cached_normal: Option<f64>,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            cached_normal: None,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // 64-bit multiply-shift; bias is < 2^-53 for any bound this repo uses.
        (self.next_f64() * bound as f64) as usize % bound
    }

    /// Standard normal via Box-Muller (pair-cached).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.cached_normal.take() {
            return z as f32;
        }
        // u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.cached_normal = Some(r * theta.sin());
        (r * theta.cos()) as f32
    }

    /// Normal with explicit mean and standard deviation.
    pub fn normal_scaled(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = rng.below(13);
            assert!(i < 13);
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::new(1234);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let v = rng.normal() as f64;
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
