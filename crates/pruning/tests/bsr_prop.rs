//! Property tests for the ISSUE 6 structured fast path.
//!
//! The acceptance contract is **bit-exactness**: a pruned model scores
//! identically — `f32::to_bits` identical — whether its surviving weights
//! are stored dense-with-zeros, CSR, or BSR tiles. Every sparse kernel
//! accumulates each output element in strictly ascending `k` order with
//! separately-rounded multiply-then-add (no FMA), and a stored `±0.0`
//! inside a kept block never changes a finite accumulation, so the three
//! storage formats are interchangeable to the bit. These tests pin that
//! over random shapes (empty block-rows, non-multiple-of-8 dims,
//! zero-column batches) and pin the block-mask invariants of the
//! structured pruners.

use darkside_nn::check::run_cases;
use darkside_nn::{Frame, FrameScorer, Matrix, Mlp, Rng};
use darkside_pruning::{
    prune_mlp_to_sparsity_structured, prune_to_sparsity_balanced, prune_to_sparsity_blocked, Bsr,
    Csr, PruneStructure, PrunedMlp,
};

/// Random matrix where each entry is zero with probability `sparsity`.
fn random_sparse(rng: &mut Rng, rows: usize, cols: usize, sparsity: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.next_f64() < sparsity {
            0.0
        } else {
            rng.normal()
        }
    })
}

/// Masked-dense SpMM oracle with the kernels' exact accumulation
/// discipline: ascending `k`, skip stored zeros, separate mul and add.
fn masked_spmm_ref(dense: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (dense.rows(), dense.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let v = dense.as_slice()[i * k + p];
            if v == 0.0 {
                continue;
            }
            for l in 0..n {
                let cv = &mut c.as_mut_slice()[i * n + l];
                *cv += v * b.as_slice()[p * n + l];
            }
        }
    }
    c
}

/// Masked-dense SpMV oracle, same discipline.
fn masked_spmv_ref(dense: &Matrix, x: &[f32]) -> Vec<f32> {
    let (m, k) = (dense.rows(), dense.cols());
    let mut y = vec![0.0f32; m];
    for (i, yi) in y.iter_mut().enumerate() {
        for (p, xp) in x.iter().enumerate().take(k) {
            let v = dense.as_slice()[i * k + p];
            if v != 0.0 {
                *yi += v * xp;
            }
        }
    }
    y
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g:e} vs {w:e})"
        );
    }
}

/// Block shapes sweeping all three BSR kernel paths: the `r == MR` AVX2
/// register-tile path (8×8, 8×4), the `r == 1` row-vector path (1×8), and
/// the generic fused-axpy path (3×5, 4×8).
const BLOCK_DIMS: [(usize, usize); 5] = [(8, 8), (8, 4), (1, 8), (3, 5), (4, 8)];

#[test]
fn bsr_spmm_bit_exact_vs_csr_and_masked_dense() {
    run_cases(0xB52_0001, 40, |rng, case| {
        let rows = rng.below(100);
        let cols = rng.below(100);
        let n = rng.below(40);
        let sparsity = [0.3, 0.7, 0.9, 1.0][case % 4];
        let (r, c) = BLOCK_DIMS[case % BLOCK_DIMS.len()];
        let dense = random_sparse(rng, rows, cols, sparsity);
        let b = Matrix::from_fn(cols, n, |_, _| rng.normal());
        let what = format!("spmm {rows}x{cols}x{n} @ {sparsity} blocks {r}x{c}");

        let bsr = Bsr::from_dense(&dense, r, c).unwrap();
        assert_eq!(bsr.to_dense(), dense, "{what}: roundtrip");
        let mut got = Matrix::zeros(rows, n);
        bsr.spmm(&b, &mut got);

        let csr = Csr::from_dense(&dense).unwrap();
        let mut via_csr = Matrix::zeros(rows, n);
        csr.spmm(&b, &mut via_csr);

        let want = masked_spmm_ref(&dense, &b);
        assert_bits_eq(
            got.as_slice(),
            via_csr.as_slice(),
            &format!("{what} vs csr"),
        );
        assert_bits_eq(got.as_slice(), want.as_slice(), &format!("{what} vs dense"));
    });
}

#[test]
fn bsr_spmv_bit_exact_vs_csr_and_masked_dense() {
    run_cases(0xB52_0002, 40, |rng, case| {
        let rows = rng.below(80);
        let cols = rng.below(80);
        let sparsity = [0.0, 0.5, 0.9, 1.0][case % 4];
        let (r, c) = BLOCK_DIMS[case % BLOCK_DIMS.len()];
        let dense = random_sparse(rng, rows, cols, sparsity);
        let x: Vec<f32> = (0..cols).map(|_| rng.normal()).collect();
        let what = format!("spmv {rows}x{cols} @ {sparsity} blocks {r}x{c}");

        let bsr = Bsr::from_dense(&dense, r, c).unwrap();
        let mut got = vec![0.0f32; rows];
        bsr.spmv(&x, &mut got);

        let csr = Csr::from_dense(&dense).unwrap();
        let mut via_csr = vec![0.0f32; rows];
        csr.spmv(&x, &mut via_csr);

        let want = masked_spmv_ref(&dense, &x);
        assert_bits_eq(&got, &via_csr, &format!("{what} vs csr"));
        assert_bits_eq(&got, &want, &format!("{what} vs dense"));
    });
}

/// Dedicated edge sweep: empty block-rows (whole 8-row bands of zeros),
/// dims that 8 does not divide (padded edge blocks), and zero-column /
/// zero-row batches.
#[test]
fn bsr_edge_shapes_bit_exact() {
    let mut rng = Rng::new(0xB52_0003);
    // (rows, cols, n): 13×21 exercises padded edge tiles; n = 0 is the
    // zero-column batch; 8×8 with rows 0..8 zeroed is an empty block-row.
    for (rows, cols, n) in [
        (13, 21, 7),
        (16, 24, 0),
        (0, 8, 5),
        (8, 0, 5),
        (24, 16, 9),
        (1, 1, 1),
    ] {
        let mut dense = random_sparse(&mut rng, rows, cols, 0.6);
        // Zero a whole leading 8-row band so the first block-row is empty.
        for i in 0..rows.min(8) {
            for j in 0..cols {
                dense.as_mut_slice()[i * cols + j] = 0.0;
            }
        }
        let b = Matrix::from_fn(cols, n, |_, _| rng.normal());
        let bsr = Bsr::from_dense(&dense, 8, 8).unwrap();
        if rows >= 8 {
            assert_eq!(bsr.blocks_in_row(0), 0, "{rows}x{cols}: empty block-row");
        }
        let mut got = Matrix::zeros(rows, n);
        bsr.spmm(&b, &mut got);
        let want = masked_spmm_ref(&dense, &b);
        assert_bits_eq(
            got.as_slice(),
            want.as_slice(),
            &format!("edge spmm {rows}x{cols}x{n}"),
        );
    }
}

/// Blocked pruning: achieved element sparsity lands within tolerance, and
/// the expanded mask is all-or-nothing per block.
#[test]
fn blocked_mask_hits_target_with_whole_blocks() {
    run_cases(0xB52_0004, 12, |rng, case| {
        let (rows, cols) = [(64, 64), (64, 40), (33, 64)][case % 3];
        let target = [0.5, 0.7, 0.9][case / 4];
        let w = Matrix::from_fn(rows, cols, |_, _| rng.normal_scaled(0.0, 0.1));
        let res = prune_to_sparsity_blocked(&w, target, 0.02, 8, 8);
        assert!(
            (res.sparsity - target).abs() <= 0.02,
            "{rows}x{cols} target {target}: got {}",
            res.sparsity
        );
        assert_whole_blocks(&res.mask, rows, cols, 8, 8);
    });
}

/// Balanced pruning: every block-row keeps exactly `k` blocks (ties are
/// deterministic), so per-output-band serving cost is uniform.
#[test]
fn balanced_mask_keeps_fixed_blocks_per_row() {
    run_cases(0xB52_0005, 9, |rng, case| {
        let (rows, cols) = [(64, 64), (48, 64), (64, 48)][case % 3];
        let target = 0.75;
        let w = Matrix::from_fn(rows, cols, |_, _| rng.normal_scaled(0.0, 0.1));
        let res = prune_to_sparsity_balanced(&w, target, 8, 8);
        assert_whole_blocks(&res.mask, rows, cols, 8, 8);
        let bcols = cols.div_ceil(8);
        let k = (((1.0 - target) * bcols as f64).round() as usize).clamp(0, bcols);
        for ib in 0..rows.div_ceil(8) {
            let kept: usize = (0..bcols)
                .filter(|&jb| res.mask.kept(ib * 8, jb * 8))
                .count();
            assert_eq!(kept, k, "{rows}x{cols}: block-row {ib} keeps {kept}");
        }
    });
}

/// Every `br×bc` block of the mask is fully kept or fully pruned.
fn assert_whole_blocks(
    mask: &darkside_pruning::Mask,
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
) {
    for ib in 0..rows.div_ceil(br) {
        for jb in 0..cols.div_ceil(bc) {
            let anchor = mask.kept(ib * br, jb * bc);
            for i in ib * br..((ib + 1) * br).min(rows) {
                for j in jb * bc..((jb + 1) * bc).min(cols) {
                    assert_eq!(
                        mask.kept(i, j),
                        anchor,
                        "block ({ib},{jb}) is not all-or-nothing at ({i},{j})"
                    );
                }
            }
        }
    }
}

/// End to end at the scoring surface: the same structured masks served CSR
/// and BSR produce bit-identical posteriors through the full MLP (affine +
/// p-norm + renorm + softmax), batched and frame-at-a-time.
#[test]
fn pruned_mlp_backends_score_bit_identical() {
    let mut rng = Rng::new(0xB52_0006);
    let mut mlp = Mlp::kaldi_style(20, 32, 4, 2, 9, &mut rng);
    for structure in [PruneStructure::tile(), PruneStructure::row_vector()] {
        let res = prune_mlp_to_sparsity_structured(&mlp, 0.8, 0.02, structure);
        res.apply(&mut mlp);
        let via_bsr = PrunedMlp::from_prune_result_structured(&mlp, &res, structure);
        let via_csr =
            PrunedMlp::from_prune_result_structured(&mlp, &res, PruneStructure::Unstructured);
        assert!(via_bsr.sparsity() > 0.5, "prune actually happened");

        let frames: Vec<Frame> = (0..17)
            .map(|_| Frame((0..20).map(|_| rng.normal()).collect()))
            .collect();
        let batched_bsr = via_bsr.score_frames(&frames);
        let batched_csr = via_csr.score_frames(&frames);
        assert_bits_eq(
            batched_bsr.probs.as_slice(),
            batched_csr.probs.as_slice(),
            &format!("batched scoring ({})", structure.label()),
        );
        let one_bsr = via_bsr.score_frames(&frames[..1]);
        assert_bits_eq(
            one_bsr.probs.row(0),
            &batched_bsr.probs.row(0)[..one_bsr.probs.cols()],
            &format!("frame-at-a-time scoring ({})", structure.label()),
        );
    }
}
