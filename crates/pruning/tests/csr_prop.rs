//! Property tests: CSR SpMV/SpMM agree with the dense oracles (1e-4
//! relative, the ISSUE 1 acceptance tolerance) over random shapes and
//! sparsities — including empty, 1×N, and fully-pruned matrices.

use darkside_nn::check::{assert_matrices_close, assert_slices_close, run_cases};
use darkside_nn::{gemv_naive, Matrix, Rng};
use darkside_pruning::Csr;

/// Random matrix where each entry is zero with probability `sparsity`.
fn random_sparse(rng: &mut Rng, rows: usize, cols: usize, sparsity: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if (rng.next_f64()) < sparsity {
            0.0
        } else {
            rng.normal()
        }
    })
}

#[test]
fn csr_roundtrips_dense() {
    run_cases(0xC5A0, 40, |rng, _| {
        let rows = rng.below(40);
        let cols = rng.below(40);
        let sparsity = rng.next_f64();
        let dense = random_sparse(rng, rows, cols, sparsity);
        let csr = Csr::from_dense(&dense).unwrap();
        assert_eq!(csr.to_dense(), dense, "roundtrip {rows}x{cols}");
    });
}

#[test]
fn spmv_matches_dense_gemv() {
    run_cases(0x5B31, 40, |rng, case| {
        let rows = rng.below(100);
        let cols = rng.below(100);
        let sparsity = [0.0, 0.5, 0.7, 0.9, 1.0][case % 5];
        let dense = random_sparse(rng, rows, cols, sparsity);
        let csr = Csr::from_dense(&dense).unwrap();
        let x: Vec<f32> = (0..cols).map(|_| rng.normal()).collect();
        let mut want = vec![0.0f32; rows];
        gemv_naive(rows, cols, dense.as_slice(), &x, &mut want);
        let mut got = vec![0.0f32; rows];
        csr.spmv(&x, &mut got);
        assert_slices_close(
            &got,
            &want,
            1e-4,
            &format!("spmv {rows}x{cols} @ {sparsity}"),
        );
    });
}

#[test]
fn spmm_matches_dense_matmul() {
    run_cases(0x5B32, 30, |rng, case| {
        let m = rng.below(50);
        let k = rng.below(50);
        let n = rng.below(30);
        let sparsity = [0.3, 0.7, 0.9, 1.0][case % 4];
        let dense = random_sparse(rng, m, k, sparsity);
        let csr = Csr::from_dense(&dense).unwrap();
        let b = Matrix::from_fn(k, n, |_, _| rng.normal());
        let want = dense.matmul_naive(&b);
        let mut got = Matrix::zeros(m, n);
        csr.spmm(&b, &mut got);
        assert_matrices_close(&got, &want, 1e-4, &format!("spmm {m}x{k}x{n} @ {sparsity}"));
    });
}

#[test]
fn degenerate_shapes() {
    let mut rng = Rng::new(7);
    for (rows, cols) in [(0, 0), (0, 9), (9, 0), (1, 1), (1, 17), (17, 1)] {
        let dense = random_sparse(&mut rng, rows, cols, 0.5);
        let csr = Csr::from_dense(&dense).unwrap();
        assert_eq!(csr.to_dense(), dense);
        let x: Vec<f32> = (0..cols).map(|_| rng.normal()).collect();
        let mut got = vec![0.0f32; rows];
        csr.spmv(&x, &mut got);
        let mut want = vec![0.0f32; rows];
        gemv_naive(rows, cols, dense.as_slice(), &x, &mut want);
        assert_eq!(got, want, "{rows}x{cols}");
    }
}
