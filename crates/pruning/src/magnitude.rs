//! Han-style magnitude pruning (DESIGN.md §2; Han et al., NIPS'15).
//!
//! A weight survives if `|w| > quality × stddev(layer weights)`. The paper
//! tunes the single `quality` knob per pruning target (70/80/90 % global
//! sparsity); [`prune_to_sparsity`] reproduces that search by bisection on
//! the monotone quality → sparsity map.

use darkside_nn::Matrix;

/// Boolean keep-mask with the same shape as the layer it masks.
#[derive(Clone, Debug, PartialEq)]
pub struct Mask {
    rows: usize,
    cols: usize,
    keep: Vec<bool>,
}

impl Mask {
    /// Build a mask from an explicit row-major keep vector (the structured
    /// pruners expand block decisions through this).
    pub fn from_keep(rows: usize, cols: usize, keep: Vec<bool>) -> Self {
        assert_eq!(keep.len(), rows * cols, "Mask::from_keep: length");
        Self { rows, cols, keep }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn kept(&self, i: usize, j: usize) -> bool {
        self.keep[i * self.cols + j]
    }

    /// Number of surviving weights.
    pub fn num_kept(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Fraction of weights removed.
    pub fn sparsity(&self) -> f64 {
        if self.keep.is_empty() {
            return 0.0;
        }
        1.0 - self.num_kept() as f64 / self.keep.len() as f64
    }

    /// Zero the masked-out entries of `w` in place (masked retraining keeps
    /// applying this after every gradient step).
    pub fn apply(&self, w: &mut Matrix) {
        assert_eq!((w.rows(), w.cols()), (self.rows, self.cols));
        for (v, &k) in w.as_mut_slice().iter_mut().zip(&self.keep) {
            if !k {
                *v = 0.0;
            }
        }
    }
}

/// Population standard deviation of a weight matrix.
fn stddev(w: &Matrix) -> f32 {
    let n = w.as_slice().len();
    if n == 0 {
        return 0.0;
    }
    let mean = w.as_slice().iter().sum::<f32>() / n as f32;
    let var = w
        .as_slice()
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f32>()
        / n as f32;
    var.sqrt()
}

/// The paper's rule: keep `|w| > quality × stddev(w)`.
pub fn mask_for_quality(w: &Matrix, quality: f32) -> Mask {
    let threshold = quality * stddev(w);
    Mask {
        rows: w.rows(),
        cols: w.cols(),
        keep: w.as_slice().iter().map(|v| v.abs() > threshold).collect(),
    }
}

/// Result of the quality-parameter search.
#[derive(Clone, Debug)]
pub struct PruneResult {
    /// The quality parameter that lands on the target (Table I reports it).
    pub quality: f32,
    /// Achieved global sparsity (within `tol` of the target).
    pub sparsity: f64,
    pub mask: Mask,
}

/// Bisection search for the quality parameter hitting `target` global
/// sparsity (e.g. 0.9 for the paper's 90 % point) within `tol`.
pub fn prune_to_sparsity(w: &Matrix, target: f64, tol: f64) -> PruneResult {
    assert!((0.0..1.0).contains(&target), "target sparsity in [0, 1)");
    let (mut lo, mut hi) = (0.0f32, 8.0f32);
    let mut best = mask_for_quality(w, lo);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let mask = mask_for_quality(w, mid);
        let s = mask.sparsity();
        best = mask;
        if (s - target).abs() <= tol {
            return PruneResult {
                quality: mid,
                sparsity: s,
                mask: best,
            };
        }
        if s < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let quality = 0.5 * (lo + hi);
    let sparsity = best.sparsity();
    PruneResult {
        quality,
        sparsity,
        mask: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_nn::Rng;

    fn gaussian_weights(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.normal_scaled(0.0, 0.1))
    }

    #[test]
    fn quality_zero_keeps_all_nonzero() {
        let w = gaussian_weights(16, 16, 3);
        let mask = mask_for_quality(&w, 0.0);
        assert_eq!(mask.num_kept(), 256); // |w| > 0 for all sampled weights
    }

    #[test]
    fn sparsity_is_monotone_in_quality() {
        let w = gaussian_weights(64, 64, 4);
        let mut last = -1.0;
        for q in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let s = mask_for_quality(&w, q).sparsity();
            assert!(s >= last, "sparsity went down at quality {q}");
            last = s;
        }
    }

    #[test]
    fn bisection_hits_paper_targets() {
        let w = gaussian_weights(128, 128, 5);
        for target in [0.7, 0.8, 0.9] {
            let r = prune_to_sparsity(&w, target, 0.005);
            assert!(
                (r.sparsity - target).abs() <= 0.005,
                "target {target}: got {}",
                r.sparsity
            );
        }
    }

    #[test]
    fn apply_zeroes_exactly_the_masked() {
        let mut w = gaussian_weights(32, 32, 6);
        let r = prune_to_sparsity(&w, 0.8, 0.01);
        r.mask.apply(&mut w);
        let zeros = w.as_slice().iter().filter(|v| **v == 0.0).count();
        assert_eq!(zeros, 32 * 32 - r.mask.num_kept());
    }
}
