//! Model-level magnitude pruning: one global quality parameter across every
//! prunable layer (ISSUE 2 tentpole; the paper's Table I procedure).
//!
//! The paper prunes with a *single* quality knob — each layer's threshold is
//! `quality × stddev(that layer's weights)` — and searches the knob until the
//! *global* sparsity (over all prunable weights) hits the 70/80/90 % target.
//! Per-layer sparsities then spread naturally around the target, which is
//! exactly the per-layer column of Table I. The fixed LDA input layer is
//! excluded (Table I: FC0 unprunable), as are biases.

use crate::blocked::{prune_to_sparsity_balanced, prune_to_sparsity_blocked, PruneStructure};
use crate::magnitude::{mask_for_quality, Mask};
use darkside_nn::{Layer, Mlp};

/// Result of the global quality search over a whole model.
#[derive(Clone, Debug)]
pub struct ModelPruneResult {
    /// One entry per `Mlp::layers` index: `Some(mask)` for pruned affine
    /// layers, `None` for LDA/pooling/normalization/softmax layers.
    pub masks: Vec<Option<Mask>>,
    /// The global quality parameter that lands on the target.
    pub quality: f32,
    /// Achieved global sparsity over the prunable weights.
    pub sparsity: f64,
}

impl ModelPruneResult {
    /// Zero the masked-out weights of `mlp` in place. This is both the
    /// initial prune and the body of the masked-retraining hook: pass
    /// `|m| result.apply(m)` as `after_step` to `Trainer::train_epoch` and
    /// every gradient update is re-projected onto the pruned support —
    /// Han et al.'s retraining loop.
    pub fn apply(&self, mlp: &mut Mlp) {
        assert_eq!(self.masks.len(), mlp.layers.len(), "mask/layer count");
        for (layer, mask) in mlp.layers.iter_mut().zip(&self.masks) {
            if let (Layer::Affine(a), Some(mask)) = (layer, mask) {
                mask.apply(&mut a.w);
            }
        }
    }

    /// Per-layer sparsities in layer order (Table I's per-layer column).
    pub fn per_layer_sparsity(&self) -> Vec<f64> {
        self.masks.iter().flatten().map(|m| m.sparsity()).collect()
    }
}

/// Masks for one global quality value, plus the global sparsity they imply.
fn masks_at_quality(mlp: &Mlp, quality: f32) -> (Vec<Option<Mask>>, f64) {
    let mut masks = Vec::with_capacity(mlp.layers.len());
    let (mut kept, mut total) = (0usize, 0usize);
    for layer in &mlp.layers {
        match layer {
            Layer::Affine(a) => {
                let mask = mask_for_quality(&a.w, quality);
                kept += mask.num_kept();
                total += a.w.rows() * a.w.cols();
                masks.push(Some(mask));
            }
            _ => masks.push(None),
        }
    }
    let sparsity = if total == 0 {
        0.0
    } else {
        1.0 - kept as f64 / total as f64
    };
    (masks, sparsity)
}

/// Bisection search for the single global quality parameter that prunes
/// `mlp` to `target` global sparsity within `tol` (the Table I procedure).
pub fn prune_mlp_to_sparsity(mlp: &Mlp, target: f64, tol: f64) -> ModelPruneResult {
    assert!((0.0..1.0).contains(&target), "target sparsity in [0, 1)");
    let (mut lo, mut hi) = (0.0f32, 8.0f32);
    let (mut masks, mut sparsity) = masks_at_quality(mlp, lo);
    let mut quality = lo;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let (m, s) = masks_at_quality(mlp, mid);
        (masks, sparsity, quality) = (m, s, mid);
        if (s - target).abs() <= tol {
            break;
        }
        if s < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    ModelPruneResult {
        masks,
        quality,
        sparsity,
    }
}

/// Structured whole-model pruning at one global target.
///
/// [`PruneStructure`] block dims are in the *serving* orientation (`r` over
/// output units, `c` over inputs), but masks live on the dense layer weights
/// `w` (`in_dim × out_dim`) — so an `r×c` serving tile is a `c×r` block on
/// `w`, and that swap happens exactly here. `Block` runs the per-layer
/// quality bisection of [`prune_to_sparsity_blocked`] layer by layer at the
/// global target (block-norm distributions differ enough per layer that a
/// per-layer search lands tighter than one global knob); `Balanced` fixes
/// the kept-blocks-per-block-row count per layer. `Unstructured` falls back
/// to [`prune_mlp_to_sparsity`].
pub fn prune_mlp_to_sparsity_structured(
    mlp: &Mlp,
    target: f64,
    tol: f64,
    structure: PruneStructure,
) -> ModelPruneResult {
    let Some((r, c)) = structure.block_dims() else {
        return prune_mlp_to_sparsity(mlp, target, tol);
    };
    // Serving tile r×c on Wᵀ (out×in) = block c×r on dense w (in×out).
    let (br, bc) = (c, r);
    let balanced = matches!(structure, PruneStructure::Balanced { .. });
    let mut masks = Vec::with_capacity(mlp.layers.len());
    let (mut kept, mut total) = (0usize, 0usize);
    let mut quality = 0.0f32;
    for layer in &mlp.layers {
        match layer {
            Layer::Affine(a) => {
                let res = if balanced {
                    prune_to_sparsity_balanced(&a.w, target, br, bc)
                } else {
                    prune_to_sparsity_blocked(&a.w, target, tol, br, bc)
                };
                kept += res.mask.num_kept();
                total += a.w.rows() * a.w.cols();
                quality = quality.max(res.quality);
                masks.push(Some(res.mask));
            }
            _ => masks.push(None),
        }
    }
    let sparsity = if total == 0 {
        0.0
    } else {
        1.0 - kept as f64 / total as f64
    };
    ModelPruneResult {
        masks,
        quality,
        sparsity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_nn::Rng;

    fn model() -> Mlp {
        let mut rng = Rng::new(0xAB);
        Mlp::kaldi_style(20, 32, 4, 2, 9, &mut rng)
    }

    #[test]
    fn global_bisection_hits_paper_targets() {
        let mlp = model();
        for target in [0.7, 0.8, 0.9] {
            let r = prune_mlp_to_sparsity(&mlp, target, 0.005);
            assert!(
                (r.sparsity - target).abs() <= 0.005,
                "target {target}: got {}",
                r.sparsity
            );
            // Per-layer sparsities spread around the global target.
            let per_layer = r.per_layer_sparsity();
            assert_eq!(per_layer.len(), 3); // 2 hidden + output affine
            assert!(per_layer.iter().all(|s| (0.0..1.0).contains(s)));
        }
    }

    #[test]
    fn structured_search_hits_targets_with_whole_serving_tiles() {
        let mlp = model();
        for structure in [PruneStructure::tile(), PruneStructure::row_vector()] {
            let r = prune_mlp_to_sparsity_structured(&mlp, 0.9, 0.03, structure);
            assert!(
                (r.sparsity - 0.9).abs() <= 0.05,
                "{}: got {}",
                structure.label(),
                r.sparsity
            );
            assert!(r.masks[0].is_none(), "LDA must stay unprunable");
            // Serving-orientation r×c tile = c×r block on dense w: verify
            // the mask is constant over each c×r region of each layer.
            let (sr, sc) = structure.block_dims().unwrap();
            let (br, bc) = (sc, sr);
            for mask in r.masks.iter().flatten() {
                for ib in 0..mask.rows().div_ceil(br) {
                    for jb in 0..mask.cols().div_ceil(bc) {
                        let first = mask.kept(ib * br, jb * bc);
                        for i in ib * br..mask.rows().min((ib + 1) * br) {
                            for j in jb * bc..mask.cols().min((jb + 1) * bc) {
                                assert_eq!(mask.kept(i, j), first, "ragged block");
                            }
                        }
                    }
                }
            }
        }
        // Unstructured passthrough matches the plain search.
        let a = prune_mlp_to_sparsity_structured(&mlp, 0.8, 0.01, PruneStructure::Unstructured);
        let b = prune_mlp_to_sparsity(&mlp, 0.8, 0.01);
        assert_eq!(a.masks, b.masks);
    }

    #[test]
    fn lda_is_never_masked_and_apply_zeroes_the_rest() {
        let mut mlp = model();
        let r = prune_mlp_to_sparsity(&mlp, 0.8, 0.01);
        assert!(r.masks[0].is_none(), "LDA must be unprunable");
        r.apply(&mut mlp);
        let mut zeros = 0usize;
        let mut total = 0usize;
        for (layer, mask) in mlp.layers.iter().zip(&r.masks) {
            if let (Layer::Affine(a), Some(mask)) = (layer, mask) {
                zeros += a.w.as_slice().iter().filter(|v| **v == 0.0).count();
                total += a.w.as_slice().len();
                assert_eq!(
                    a.w.as_slice().len() - mask.num_kept(),
                    a.w.as_slice().iter().filter(|v| **v == 0.0).count()
                );
            }
        }
        assert!((zeros as f64 / total as f64 - r.sparsity).abs() < 1e-9);
    }
}
