//! # darkside-pruning — magnitude pruning + sparse compute
//!
//! Implements DESIGN.md §2 (`crates/pruning`): Han-style magnitude pruning
//! (per-layer threshold = quality × stddev of the layer's weights, with the
//! single global quality parameter searched to hit a target sparsity), CSR
//! export of pruned weight matrices, and the CSR SpMV/SpMM kernels that the
//! DNN accelerator model consumes. At the paper's sparsity levels (≥70 %)
//! the CSR kernels beat the dense GEMV baseline — `darkside-bench`'s `spmv`
//! bench records the crossover.
//!
//! ISSUE 6 adds the structured fast path: [`blocked`] prunes in
//! register-tile-aligned `r×c` blocks (selectable [`PruneStructure`],
//! including a balanced per-block-row variant), [`bsr`] stores the
//! survivors block-sparse, and [`PrunedAffine`]/[`PrunedMlp`] pick CSR or
//! BSR behind the unchanged `FrameScorer` interface — bit-for-bit the same
//! scores, served by the dense micro-kernel instead of scalar gathers.

pub mod blocked;
pub mod bsr;
pub mod csr;
pub mod magnitude;
pub mod model;
pub mod pruned_layer;
pub mod pruned_mlp;

pub use blocked::{prune_to_sparsity_balanced, prune_to_sparsity_blocked, PruneStructure};
pub use bsr::Bsr;
pub use csr::Csr;
pub use magnitude::{mask_for_quality, prune_to_sparsity, Mask, PruneResult};
pub use model::{prune_mlp_to_sparsity, prune_mlp_to_sparsity_structured, ModelPruneResult};
pub use pruned_layer::{PrunedAffine, SparseWeights};
pub use pruned_mlp::PrunedMlp;
