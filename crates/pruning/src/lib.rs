//! # darkside-pruning — magnitude pruning + sparse compute
//!
//! Implements DESIGN.md §2 (`crates/pruning`): Han-style magnitude pruning
//! (per-layer threshold = quality × stddev of the layer's weights, with the
//! single global quality parameter searched to hit a target sparsity), CSR
//! export of pruned weight matrices, and the CSR SpMV/SpMM kernels that the
//! DNN accelerator model consumes. At the paper's sparsity levels (≥70 %)
//! the CSR kernels beat the dense GEMV baseline — `darkside-bench`'s `spmv`
//! bench records the crossover.

pub mod csr;
pub mod magnitude;
pub mod model;
pub mod pruned_layer;
pub mod pruned_mlp;

pub use csr::Csr;
pub use magnitude::{mask_for_quality, prune_to_sparsity, Mask, PruneResult};
pub use model::{prune_mlp_to_sparsity, ModelPruneResult};
pub use pruned_layer::PrunedAffine;
pub use pruned_mlp::PrunedMlp;
