//! A whole acoustic model served from CSR weights, scoring through the same
//! [`FrameScorer`] interface as the dense [`Mlp`] (ISSUE 2 API redesign).
//!
//! The decoder, the pipeline, and the accelerator simulators never branch on
//! dense-vs-pruned: they hold a `&dyn FrameScorer` and this type is simply
//! the implementation whose affine layers run SpMM over surviving weights.

use crate::blocked::PruneStructure;
use crate::magnitude::Mask;
use crate::model::ModelPruneResult;
use crate::pruned_layer::PrunedAffine;
use darkside_nn::{stack_frames, traced_score_frames, Frame, FrameScorer, Layer, Mlp, Scores};

/// One layer of a pruned model: either a sparse-compressed affine or a dense
/// pass-through (LDA, p-norm, renormalize, softmax are never pruned).
#[derive(Clone, Debug)]
enum ScoringLayer {
    Dense(Layer),
    Sparse(PrunedAffine),
}

/// An [`Mlp`] whose masked affine layers are compressed to CSR (unstructured
/// masks) or BSR (block-structured masks).
#[derive(Clone, Debug)]
pub struct PrunedMlp {
    layers: Vec<ScoringLayer>,
    input_dim: usize,
    classes: usize,
}

impl PrunedMlp {
    /// Compress `mlp` under `masks` (one entry per layer, `None` = keep
    /// dense) into CSR. The masked weights of `mlp` should already be zero —
    /// i.e. call [`ModelPruneResult::apply`] (and retrain) first; this
    /// constructor only changes the storage format, never the math.
    pub fn from_masked(mlp: &Mlp, masks: &[Option<Mask>]) -> Self {
        Self::from_masked_structured(mlp, masks, PruneStructure::Unstructured)
    }

    /// Compress under `masks`, picking the storage backend from `structure`:
    /// CSR for [`PruneStructure::Unstructured`], BSR tiles otherwise. The
    /// masks must respect the structure (whole serving tiles), which the
    /// structured pruners guarantee. Either way the scoring math — and every
    /// output bit — is identical; only the kernels change.
    pub fn from_masked_structured(
        mlp: &Mlp,
        masks: &[Option<Mask>],
        structure: PruneStructure,
    ) -> Self {
        assert_eq!(masks.len(), mlp.layers.len(), "mask/layer count");
        let layers = mlp
            .layers
            .iter()
            .zip(masks)
            .map(|(layer, mask)| match (layer, mask) {
                (Layer::Affine(a), Some(mask)) => {
                    ScoringLayer::Sparse(PrunedAffine::from_dense_structured(a, mask, structure))
                }
                (layer, None) => ScoringLayer::Dense(layer.clone()),
                (layer, Some(_)) => {
                    panic!("mask on a non-affine layer {layer:?}")
                }
            })
            .collect();
        Self {
            layers,
            input_dim: mlp.input_dim(),
            classes: mlp.output_dim(),
        }
    }

    /// Shorthand: compress under a whole-model prune result (CSR).
    pub fn from_prune_result(mlp: &Mlp, result: &ModelPruneResult) -> Self {
        Self::from_masked(mlp, &result.masks)
    }

    /// Shorthand: compress under a whole-model prune result with the backend
    /// chosen by `structure`.
    pub fn from_prune_result_structured(
        mlp: &Mlp,
        result: &ModelPruneResult,
        structure: PruneStructure,
    ) -> Self {
        Self::from_masked_structured(mlp, &result.masks, structure)
    }

    /// Global sparsity over the sparse layers (0 if nothing is compressed).
    pub fn sparsity(&self) -> f64 {
        let (mut nnz, mut total) = (0usize, 0usize);
        for layer in &self.layers {
            if let ScoringLayer::Sparse(p) = layer {
                nnz += p.w.nnz();
                total += p.in_dim() * p.out_dim();
            }
        }
        if total == 0 {
            0.0
        } else {
            1.0 - nnz as f64 / total as f64
        }
    }

    /// Surviving weights across the sparse layers.
    pub fn nnz(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                ScoringLayer::Sparse(p) => p.w.nnz(),
                ScoringLayer::Dense(_) => 0,
            })
            .sum()
    }
}

impl FrameScorer for PrunedMlp {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn score_frames(&self, frames: &[Frame]) -> Scores {
        traced_score_frames(frames.len(), || {
            let mut x = stack_frames(frames, self.input_dim);
            for layer in &self.layers {
                x = match layer {
                    ScoringLayer::Dense(l) => l.forward(x),
                    ScoringLayer::Sparse(p) => p.forward(&x),
                };
            }
            Scores { probs: x }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::prune_mlp_to_sparsity;
    use darkside_nn::check::assert_matrices_close;
    use darkside_nn::Rng;

    #[test]
    fn pruned_model_matches_masked_dense_through_the_trait() {
        let mut rng = Rng::new(0xC0);
        let mut mlp = Mlp::kaldi_style(24, 32, 4, 2, 7, &mut rng);
        let result = prune_mlp_to_sparsity(&mlp, 0.9, 0.005);
        result.apply(&mut mlp);
        let pruned = PrunedMlp::from_prune_result(&mlp, &result);
        assert!((pruned.sparsity() - result.sparsity).abs() < 1e-9);
        assert_eq!(pruned.input_dim, 24);
        assert_eq!(pruned.classes, 7);

        let frames: Vec<Frame> = (0..13)
            .map(|_| Frame((0..24).map(|_| rng.normal()).collect()))
            .collect();
        // Score both through the one interface, as every call site does.
        let scorers: [&dyn FrameScorer; 2] = [&mlp, &pruned];
        let dense_scores = scorers[0].score_frames(&frames);
        let sparse_scores = scorers[1].score_frames(&frames);
        assert_matrices_close(
            &sparse_scores.probs,
            &dense_scores.probs,
            1e-4,
            "pruned vs masked dense scoring",
        );
    }
}
