//! A pruned affine layer served from sparse weights (ISSUE 1 tentpole;
//! ISSUE 6 adds the BSR backend).
//!
//! Mirrors [`darkside_nn::Affine`] but stores only surviving weights. The
//! batched forward is an SpMM over the transposed activation block, so a
//! pruned model scores a whole utterance with the same
//! one-weight-traversal-per-utterance property as the dense path. The
//! storage backend — gather-based [`Csr`] for unstructured masks,
//! register-tiled [`Bsr`] for block-structured masks — is an internal
//! detail: both accumulate in the same ascending-input order, so switching
//! backend never changes a single output bit.

use crate::blocked::PruneStructure;
use crate::bsr::Bsr;
use crate::csr::Csr;
use crate::magnitude::Mask;
use darkside_nn::{Affine, Matrix};

/// The sparse storage behind a [`PrunedAffine`], in serving orientation
/// (`out_dim × in_dim`).
#[derive(Clone, Debug)]
pub enum SparseWeights {
    /// Per-weight survivors; scalar gather kernels.
    Csr(Csr),
    /// All-or-nothing tiles; dense register-tile kernels per block.
    Bsr(Bsr),
}

impl SparseWeights {
    pub fn rows(&self) -> usize {
        match self {
            Self::Csr(w) => w.rows(),
            Self::Bsr(w) => w.rows(),
        }
    }

    pub fn cols(&self) -> usize {
        match self {
            Self::Csr(w) => w.cols(),
            Self::Bsr(w) => w.cols(),
        }
    }

    /// Stored (surviving) weights. For BSR this counts every real entry
    /// covered by a kept block — the element-mask notion of "kept".
    pub fn nnz(&self) -> usize {
        match self {
            Self::Csr(w) => w.nnz(),
            Self::Bsr(w) => w.nnz(),
        }
    }

    pub fn sparsity(&self) -> f64 {
        match self {
            Self::Csr(w) => w.sparsity(),
            Self::Bsr(w) => w.sparsity(),
        }
    }

    /// Bench/report label of the backend in play.
    pub fn backend(&self) -> &'static str {
        match self {
            Self::Csr(_) => "csr",
            Self::Bsr(_) => "bsr",
        }
    }

    pub fn spmv(&self, x: &[f32], y: &mut [f32]) {
        match self {
            Self::Csr(w) => w.spmv(x, y),
            Self::Bsr(w) => w.spmv(x, y),
        }
    }

    pub fn spmm(&self, b: &Matrix, c: &mut Matrix) {
        match self {
            Self::Csr(w) => w.spmm(b, c),
            Self::Bsr(w) => w.spmm(b, c),
        }
    }
}

/// `Y = X · Wᵀ + b` where `W` (`out_dim × in_dim`) is stored sparse.
///
/// The dense [`Affine`] stores `in_dim × out_dim` so its forward is a plain
/// GEMM; the sparse layer stores the transpose (`out_dim × in_dim`) because
/// SpMV/SpMM want the *output* dimension on rows — each output unit owns one
/// compressed row of surviving weights, exactly the layout the paper's DNN
/// accelerator streams. A `Block{r,c}` structure therefore tiles this
/// transposed matrix directly: `r` output units × `c` inputs per block.
#[derive(Clone, Debug)]
pub struct PrunedAffine {
    /// `out_dim × in_dim` surviving weights.
    pub w: SparseWeights,
    pub b: Vec<f32>,
}

impl PrunedAffine {
    /// Prune a dense layer with `mask` (shaped like `dense.w`, i.e.
    /// `in_dim × out_dim`) and compress the survivors to CSR.
    pub fn from_dense(dense: &Affine, mask: &Mask) -> Self {
        Self::from_dense_structured(dense, mask, PruneStructure::Unstructured)
    }

    /// Prune and compress choosing the backend from `structure`:
    /// unstructured masks go to CSR, block masks to BSR with the structure's
    /// serving-orientation `r×c` tiles. The mask must match the structure
    /// (whole serving tiles kept or dropped) for BSR to be lossless; masks
    /// from the structured pruners are by construction.
    pub fn from_dense_structured(dense: &Affine, mask: &Mask, structure: PruneStructure) -> Self {
        assert_eq!((mask.rows(), mask.cols()), (dense.w.rows(), dense.w.cols()));
        // Transpose while masking: sparse rows = output units.
        let wt = Matrix::from_fn(dense.w.cols(), dense.w.rows(), |o, i| {
            if mask.kept(i, o) {
                dense.w.get(i, o)
            } else {
                0.0
            }
        });
        // Infallible here: the transpose of a Matrix is within the u32
        // index space whenever the Matrix itself was constructible.
        let w = match structure.block_dims() {
            None => SparseWeights::Csr(Csr::from_dense(&wt).expect("masked transpose fits CSR")),
            Some((r, c)) => {
                SparseWeights::Bsr(Bsr::from_dense(&wt, r, c).expect("masked transpose fits BSR"))
            }
        };
        Self {
            w,
            b: dense.b.clone(),
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Fraction of the original weights pruned away.
    pub fn sparsity(&self) -> f64 {
        self.w.sparsity()
    }

    /// Single-frame forward: one SpMV plus the bias.
    pub fn forward_frame(&self, x: &[f32], y: &mut [f32]) {
        self.w.spmv(x, y);
        for (v, &b) in y.iter_mut().zip(&self.b) {
            *v += b;
        }
    }

    /// Batched forward: `batch × in_dim` → `batch × out_dim` via SpMM on the
    /// transposed block (`Yᵀ = W · Xᵀ`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "PrunedAffine::forward: input dim");
        let xt = x.transpose();
        let mut yt = Matrix::zeros(self.out_dim(), x.rows());
        self.w.spmm(&xt, &mut yt);
        let mut y = yt.transpose();
        for i in 0..y.rows() {
            for (v, &b) in y.row_mut(i).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::prune_to_sparsity_blocked;
    use crate::magnitude::prune_to_sparsity;
    use darkside_nn::check::{assert_matrices_close, random_matrix};
    use darkside_nn::Rng;

    #[test]
    fn pruned_forward_matches_masked_dense() {
        let mut rng = Rng::new(11);
        let mut dense = Affine::new_random(24, 16, &mut rng);
        dense.b = (0..16).map(|_| rng.normal()).collect();
        let result = prune_to_sparsity(&dense.w, 0.8, 0.01);
        let mut masked = dense.clone();
        result.mask.apply(&mut masked.w);
        let pruned = PrunedAffine::from_dense(&dense, &result.mask);
        assert!((pruned.sparsity() - result.mask.sparsity()).abs() < 1e-9);
        assert_eq!(pruned.w.backend(), "csr");

        let x = random_matrix(&mut rng, 9, 24, 1.0);
        let want = masked.forward(&x);
        let got = pruned.forward(&x);
        assert_matrices_close(&got, &want, 1e-4, "pruned vs masked dense");

        // Single-frame path agrees with the batched path.
        let mut y = vec![0.0f32; 16];
        pruned.forward_frame(x.row(0), &mut y);
        darkside_nn::check::assert_slices_close(&y, got.row(0), 1e-5, "frame vs batch");
    }

    #[test]
    fn bsr_backend_matches_csr_backend_bitwise() {
        let mut rng = Rng::new(12);
        let structure = PruneStructure::tile();
        let mut dense = Affine::new_random(40, 24, &mut rng);
        dense.b = (0..24).map(|_| rng.normal()).collect();
        // Structured mask on dense w (in×out = 40×24): serving 8×8 tile is
        // an 8×8 block on w too, but go through the (c, r) swap anyway.
        let (sr, sc) = structure.block_dims().unwrap();
        let result = prune_to_sparsity_blocked(&dense.w, 0.7, 0.1, sc, sr);
        let csr = PrunedAffine::from_dense(&dense, &result.mask);
        let bsr = PrunedAffine::from_dense_structured(&dense, &result.mask, structure);
        assert_eq!(bsr.w.backend(), "bsr");
        assert_eq!(csr.w.nnz(), bsr.w.nnz(), "same kept-weight count");

        let x = random_matrix(&mut rng, 11, 40, 1.0);
        let yc = csr.forward(&x);
        let yb = bsr.forward(&x);
        assert_eq!(yc.rows(), yb.rows());
        for (a, b) in yc.as_slice().iter().zip(yb.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "csr vs bsr batched");
        }
        let mut fc = vec![0.0f32; 24];
        let mut fb = vec![0.0f32; 24];
        csr.forward_frame(x.row(3), &mut fc);
        bsr.forward_frame(x.row(3), &mut fb);
        for (a, b) in fc.iter().zip(&fb) {
            assert_eq!(a.to_bits(), b.to_bits(), "csr vs bsr frame");
        }
    }
}
