//! A pruned affine layer served from CSR weights (ISSUE 1 tentpole).
//!
//! Mirrors [`darkside_nn::Affine`] but stores only surviving weights. The
//! batched forward is an SpMM over the transposed activation block, so a
//! pruned model scores a whole utterance with the same
//! one-weight-traversal-per-utterance property as the dense path.

use crate::csr::Csr;
use crate::magnitude::Mask;
use darkside_nn::{Affine, Matrix};

/// `Y = X · Wᵀ + b` where `W` (`out_dim × in_dim`) is stored CSR.
///
/// The dense [`Affine`] stores `in_dim × out_dim` so its forward is a plain
/// GEMM; the CSR layer stores the transpose (`out_dim × in_dim`) because
/// SpMV/SpMM want the *output* dimension on rows — each output unit owns one
/// compressed row of surviving weights, exactly the layout the paper's DNN
/// accelerator streams.
#[derive(Clone, Debug)]
pub struct PrunedAffine {
    /// `out_dim × in_dim` surviving weights.
    pub w: Csr,
    pub b: Vec<f32>,
}

impl PrunedAffine {
    /// Prune a dense layer with `mask` (shaped like `dense.w`, i.e.
    /// `in_dim × out_dim`) and compress the survivors.
    pub fn from_dense(dense: &Affine, mask: &Mask) -> Self {
        assert_eq!((mask.rows(), mask.cols()), (dense.w.rows(), dense.w.cols()));
        // Transpose while masking: CSR rows = output units.
        let wt = Matrix::from_fn(dense.w.cols(), dense.w.rows(), |o, i| {
            if mask.kept(i, o) {
                dense.w.get(i, o)
            } else {
                0.0
            }
        });
        Self {
            // Infallible here: the transpose of a Matrix is within the u32
            // index space whenever the Matrix itself was constructible.
            w: Csr::from_dense(&wt).expect("masked transpose fits CSR"),
            b: dense.b.clone(),
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Fraction of the original weights pruned away.
    pub fn sparsity(&self) -> f64 {
        self.w.sparsity()
    }

    /// Single-frame forward: one SpMV plus the bias.
    pub fn forward_frame(&self, x: &[f32], y: &mut [f32]) {
        self.w.spmv(x, y);
        for (v, &b) in y.iter_mut().zip(&self.b) {
            *v += b;
        }
    }

    /// Batched forward: `batch × in_dim` → `batch × out_dim` via SpMM on the
    /// transposed block (`Yᵀ = W_csr · Xᵀ`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "PrunedAffine::forward: input dim");
        let xt = x.transpose();
        let mut yt = Matrix::zeros(self.out_dim(), x.rows());
        self.w.spmm(&xt, &mut yt);
        let mut y = yt.transpose();
        for i in 0..y.rows() {
            for (v, &b) in y.row_mut(i).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magnitude::prune_to_sparsity;
    use darkside_nn::check::{assert_matrices_close, random_matrix};
    use darkside_nn::Rng;

    #[test]
    fn pruned_forward_matches_masked_dense() {
        let mut rng = Rng::new(11);
        let mut dense = Affine::new_random(24, 16, &mut rng);
        dense.b = (0..16).map(|_| rng.normal()).collect();
        let result = prune_to_sparsity(&dense.w, 0.8, 0.01);
        let mut masked = dense.clone();
        result.mask.apply(&mut masked.w);
        let pruned = PrunedAffine::from_dense(&dense, &result.mask);
        assert!((pruned.sparsity() - result.mask.sparsity()).abs() < 1e-9);

        let x = random_matrix(&mut rng, 9, 24, 1.0);
        let want = masked.forward(&x);
        let got = pruned.forward(&x);
        assert_matrices_close(&got, &want, 1e-4, "pruned vs masked dense");

        // Single-frame path agrees with the batched path.
        let mut y = vec![0.0f32; 16];
        pruned.forward_frame(x.row(0), &mut y);
        darkside_nn::check::assert_slices_close(&y, got.row(0), 1e-5, "frame vs batch");
    }
}
