//! Block-structured magnitude pruning (ISSUE 6 tentpole).
//!
//! Unstructured pruning thresholds individual weights; the result is fast to
//! *store* but slow to *serve* — CSR gathers cannot feed the FMA units the
//! dense micro-kernel saturates. Structured pruning removes whole `r×c`
//! tiles instead, chosen by block L2 norm, so the survivors stay aligned to
//! the GEMM register tile and serving keeps the dense inner loop
//! (accelerator-aware pruning, Kang, PAPERS.md).
//!
//! The search machinery is the same as [`magnitude`](crate::magnitude):
//! build a *norm matrix* (one entry per block), run the paper's
//! `|v| > quality × stddev` rule on it via [`mask_for_quality`], and bisect
//! the quality knob until the **element-level** sparsity implied by the
//! kept blocks hits the target. Block dims here are in the orientation of
//! the matrix being pruned; model-level code maps the serving-orientation
//! [`PruneStructure`] onto each dense layer (see
//! [`prune_mlp_to_sparsity_structured`](crate::prune_mlp_to_sparsity_structured)).

use crate::magnitude::{mask_for_quality, Mask, PruneResult};
use darkside_error::Error;
use darkside_nn::gemm::{MR, NR};
use darkside_nn::Matrix;

/// Sparsity structure for pruning, in the *serving* orientation: `r` spans
/// output units, `c` spans inputs — so `Block { r: MR, c: NR }` tiles are
/// exactly the dense micro-kernel's register tile on the served `Wᵀ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneStructure {
    /// Per-weight magnitude pruning (Han-style; CSR serving).
    Unstructured,
    /// All-or-nothing `r×c` tiles kept by block L2 norm (BSR serving).
    Block { r: usize, c: usize },
    /// `r×c` tiles with a *fixed* number of survivors per block-row, for
    /// predictable batch scoring (every output band costs the same).
    Balanced { r: usize, c: usize },
}

impl PruneStructure {
    /// The register tile of the dense micro-kernel: `MR×NR = 8×8`.
    pub fn tile() -> Self {
        Self::Block { r: MR, c: NR }
    }

    /// `1×NR` row-vector blocks: one output unit × eight inputs.
    pub fn row_vector() -> Self {
        Self::Block { r: 1, c: NR }
    }

    /// Stable label for reports and bench JSON (`unstructured`, `b8x8`,
    /// `bal8x8`, ...).
    pub fn label(&self) -> String {
        match self {
            Self::Unstructured => "unstructured".into(),
            Self::Block { r, c } => format!("b{r}x{c}"),
            Self::Balanced { r, c } => format!("bal{r}x{c}"),
        }
    }

    /// `(r, c)` for structured variants, `None` for unstructured.
    pub fn block_dims(&self) -> Option<(usize, usize)> {
        match *self {
            Self::Unstructured => None,
            Self::Block { r, c } | Self::Balanced { r, c } => Some((r, c)),
        }
    }

    /// Reject degenerate or tile-misaligned block shapes. Blocks need not
    /// divide layer dims (edges are zero-padded), but they must be nonzero
    /// and no larger than the cache-friendly register-tile multiples.
    pub fn validate(&self, what: &str) -> Result<(), Error> {
        if let Some((r, c)) = self.block_dims() {
            if r == 0 || c == 0 {
                return Err(Error::shape(what, format!("{r}x{c} block")));
            }
            if r > 64 || c > 64 {
                return Err(Error::shape(
                    what,
                    format!("{r}x{c} block exceeds the 64x64 tile cap"),
                ));
            }
        }
        Ok(())
    }
}

/// Per-block L2 norms of `w` under `br×bc` blocks (in `w`'s orientation),
/// plus the number of real entries each block covers (edge blocks cover
/// fewer). The norm matrix is what the quality rule thresholds.
fn block_norms(w: &Matrix, br: usize, bc: usize) -> (Matrix, Vec<u32>) {
    let brows = w.rows().div_ceil(br);
    let bcols = w.cols().div_ceil(bc);
    let mut sizes = vec![0u32; brows * bcols];
    let norms = Matrix::from_fn(brows, bcols, |ib, jb| {
        let rows_eff = br.min(w.rows() - ib * br);
        let cols_eff = bc.min(w.cols() - jb * bc);
        sizes[ib * bcols + jb] = (rows_eff * cols_eff) as u32;
        let mut sq = 0.0f32;
        for row in 0..rows_eff {
            for &v in &w.row(ib * br + row)[jb * bc..jb * bc + cols_eff] {
                sq += v * v;
            }
        }
        sq.sqrt()
    });
    (norms, sizes)
}

/// Expand a block-level keep decision to an element [`Mask`] over `w`.
fn expand_block_mask(
    block_kept: impl Fn(usize, usize) -> bool,
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
) -> Mask {
    let keep = (0..rows * cols)
        .map(|idx| block_kept((idx / cols) / br, (idx % cols) / bc))
        .collect();
    Mask::from_keep(rows, cols, keep)
}

/// Element-level sparsity implied by keeping blocks where `kept` holds.
fn blocked_sparsity(block_mask: &Mask, sizes: &[u32], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let bcols = block_mask.cols();
    let kept: u64 = sizes
        .iter()
        .enumerate()
        .filter(|&(idx, _)| block_mask.kept(idx / bcols, idx % bcols))
        .map(|(_, &s)| s as u64)
        .sum();
    1.0 - kept as f64 / total as f64
}

/// Bisection search for the quality knob that prunes `w` in `br×bc` blocks
/// (in `w`'s orientation) to `target` *element* sparsity within `tol`.
/// Blocks are ranked by L2 norm; the threshold is
/// `quality × stddev(block norms)` — the paper's rule lifted one level up.
pub fn prune_to_sparsity_blocked(
    w: &Matrix,
    target: f64,
    tol: f64,
    br: usize,
    bc: usize,
) -> PruneResult {
    assert!((0.0..1.0).contains(&target), "target sparsity in [0, 1)");
    assert!(br > 0 && bc > 0, "zero block dims");
    let total = w.rows() * w.cols();
    let (norms, sizes) = block_norms(w, br, bc);
    // Unlike raw weights, block norms are all-positive with a large mean, so
    // the quality knob that crosses the target can sit far above the
    // unstructured search's [0, 8] range (threshold = quality × stddev, and
    // the norm stddev is small relative to the norm mean). Bracket by
    // doubling before bisecting.
    let (mut lo, mut hi) = (0.0f32, 8.0f32);
    while hi < 1e12 && blocked_sparsity(&mask_for_quality(&norms, hi), &sizes, total) < target {
        (lo, hi) = (hi, hi * 2.0);
    }
    let mut best = mask_for_quality(&norms, lo);
    let mut quality = lo;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let bm = mask_for_quality(&norms, mid);
        let s = blocked_sparsity(&bm, &sizes, total);
        (best, quality) = (bm, mid);
        if (s - target).abs() <= tol {
            break;
        }
        if s < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let sparsity = blocked_sparsity(&best, &sizes, total);
    let mask = expand_block_mask(|ib, jb| best.kept(ib, jb), w.rows(), w.cols(), br, bc);
    PruneResult {
        quality,
        sparsity,
        mask,
    }
}

/// Balanced block pruning: keep the top `k` blocks *per block-row* by L2
/// norm (ties broken toward lower block-column), where `k` is chosen so the
/// kept fraction best matches `target`. Every block-row then serves the
/// same number of tiles — predictable per-output-band cost. No quality
/// search is involved, so `quality` is reported as 0.
pub fn prune_to_sparsity_balanced(w: &Matrix, target: f64, br: usize, bc: usize) -> PruneResult {
    assert!((0.0..1.0).contains(&target), "target sparsity in [0, 1)");
    assert!(br > 0 && bc > 0, "zero block dims");
    let total = w.rows() * w.cols();
    let (norms, sizes) = block_norms(w, br, bc);
    let (brows, bcols) = (norms.rows(), norms.cols());
    let k = (((1.0 - target) * bcols as f64).round() as usize).clamp(0, bcols);
    let mut keep = vec![false; brows * bcols];
    let mut order: Vec<usize> = Vec::with_capacity(bcols);
    for ib in 0..brows {
        let row = norms.row(ib);
        order.clear();
        order.extend(0..bcols);
        order.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
        for &jb in &order[..k] {
            keep[ib * bcols + jb] = true;
        }
    }
    let block_mask = Mask::from_keep(brows, bcols, keep);
    let sparsity = blocked_sparsity(&block_mask, &sizes, total);
    let mask = expand_block_mask(|ib, jb| block_mask.kept(ib, jb), w.rows(), w.cols(), br, bc);
    PruneResult {
        quality: 0.0,
        sparsity,
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_nn::Rng;

    fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.normal_scaled(0.0, 0.1))
    }

    /// Every kept/dropped decision covers a whole block.
    fn assert_all_or_nothing(mask: &Mask, br: usize, bc: usize) {
        for ib in 0..mask.rows().div_ceil(br) {
            for jb in 0..mask.cols().div_ceil(bc) {
                let first = mask.kept(ib * br, jb * bc);
                for i in ib * br..mask.rows().min((ib + 1) * br) {
                    for j in jb * bc..mask.cols().min((jb + 1) * bc) {
                        assert_eq!(mask.kept(i, j), first, "ragged block ({ib},{jb})");
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_bisection_hits_targets() {
        let w = gaussian(128, 128, 11);
        for target in [0.7, 0.9] {
            let r = prune_to_sparsity_blocked(&w, target, 0.02, 8, 8);
            assert!(
                (r.sparsity - target).abs() <= 0.02,
                "target {target}: got {}",
                r.sparsity
            );
            assert!((r.mask.sparsity() - r.sparsity).abs() < 1e-9);
            assert_all_or_nothing(&r.mask, 8, 8);
        }
    }

    #[test]
    fn blocked_handles_non_multiple_dims() {
        let w = gaussian(37, 45, 12);
        let r = prune_to_sparsity_blocked(&w, 0.8, 0.05, 8, 8);
        assert!((r.sparsity - 0.8).abs() <= 0.05, "got {}", r.sparsity);
        assert_all_or_nothing(&r.mask, 8, 8);
    }

    #[test]
    fn balanced_keeps_fixed_blocks_per_row() {
        let w = gaussian(64, 128, 13);
        let r = prune_to_sparsity_balanced(&w, 0.9, 8, 8);
        // 16 block-cols × 10% kept → round(1.6) = 2 blocks per block-row.
        let bcols = 128 / 8;
        let k = ((0.1 * bcols as f64).round()) as usize;
        for ib in 0..64 / 8 {
            let kept_blocks = (0..bcols).filter(|&jb| r.mask.kept(ib * 8, jb * 8)).count();
            assert_eq!(kept_blocks, k, "block-row {ib}");
        }
        assert_all_or_nothing(&r.mask, 8, 8);
        assert!((r.sparsity - (1.0 - k as f64 / bcols as f64)).abs() < 1e-9);
    }

    #[test]
    fn structure_labels_and_validation() {
        assert_eq!(PruneStructure::Unstructured.label(), "unstructured");
        assert_eq!(PruneStructure::tile().label(), "b8x8");
        assert_eq!(PruneStructure::row_vector().label(), "b1x8");
        assert_eq!(PruneStructure::Balanced { r: 8, c: 8 }.label(), "bal8x8");
        assert!(PruneStructure::tile().validate("t").is_ok());
        assert!(PruneStructure::Block { r: 0, c: 8 }.validate("t").is_err());
        assert!(PruneStructure::Block { r: 8, c: 128 }
            .validate("t")
            .is_err());
    }
}
