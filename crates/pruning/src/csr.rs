//! Compressed-sparse-row matrices and the SpMV/SpMM kernels (ISSUE 1).
//!
//! The paper's DNN accelerator streams pruned FC layers in a CSR-like
//! compressed format (DESIGN.md §2); this module is the software analogue.
//! Column indices are `u32` — half the footprint of `usize` indices, which
//! matters because SpMV is memory-bound: at 90 % sparsity the whole win over
//! dense GEMV is reading 8 bytes per surviving weight instead of 4 bytes per
//! *every* weight.

use darkside_nn::Matrix;

/// CSR sparse matrix over `f32`, `u32` column indices.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx`/`vals`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl Csr {
    /// Compress every nonzero of `dense`.
    pub fn from_dense(dense: &Matrix) -> Self {
        Self::from_dense_filtered(dense, |v| v != 0.0)
    }

    /// Compress entries of `dense` for which `keep` holds (e.g. a pruning
    /// mask applied on the fly, without materializing the masked matrix).
    pub fn from_dense_filtered(dense: &Matrix, mut keep: impl FnMut(f32) -> bool) -> Self {
        assert!(
            dense.cols() <= u32::MAX as usize && dense.rows() < u32::MAX as usize,
            "Csr: shape exceeds u32 index space"
        );
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for i in 0..dense.rows() {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if keep(v) {
                    col_idx.push(j as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(vals.len() as u32);
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            row_ptr,
            col_idx,
            vals,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (surviving) weights.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries that are *zero* (the paper's pruning percentage).
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// `(col_indices, values)` of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Decompress to dense (test/debug helper — the oracle direction).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let row = m.row_mut(i);
            for (&j, &v) in cols.iter().zip(vals) {
                row[j as usize] = v;
            }
        }
        m
    }

    /// Sparse mat-vec: `y = S · x`. One gather-dot per row; the kernel the
    /// `spmv` bench race against [`darkside_nn::gemv_naive`].
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "spmv: x length");
        assert_eq!(y.len(), self.rows, "spmv: y length");
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let mut sum = 0.0f32;
            for (&j, &v) in self.col_idx[lo..hi].iter().zip(&self.vals[lo..hi]) {
                sum += v * x[j as usize];
            }
            *yi = sum;
        }
    }

    /// Sparse mat-mat: `C = S · B` (`B` is `cols × n` row-major dense).
    ///
    /// Row-by-row axpy over B's rows: each nonzero streams one contiguous
    /// B row into one contiguous C row, so the batched (SpMM) form keeps the
    /// sequential-access advantage that the per-frame SpMV form has.
    pub fn spmm(&self, b: &Matrix, c: &mut Matrix) {
        assert_eq!(b.rows(), self.cols, "spmm: inner dimension");
        assert_eq!(c.rows(), self.rows, "spmm: output rows");
        assert_eq!(c.cols(), b.cols(), "spmm: output cols");
        let n = b.cols();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let crow = c.row_mut(i);
            crow.fill(0.0);
            if n == 0 {
                continue;
            }
            for (&j, &v) in cols.iter().zip(vals) {
                let brow = b.row(j as usize);
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += v * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense() {
        let d = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0]);
        let s = Csr::from_dense(&d);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.to_dense(), d);
        assert!((s.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spmv_known_values() {
        let d = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 4.0, 0.0]);
        let s = Csr::from_dense(&d);
        let mut y = vec![0.0f32; 2];
        s.spmv(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![7.0, 8.0]);
    }

    #[test]
    fn empty_shapes() {
        let s = Csr::from_dense(&Matrix::zeros(0, 5));
        s.spmv(&[0.0; 5], &mut []);
        let s = Csr::from_dense(&Matrix::zeros(4, 0));
        let mut y = vec![1.0f32; 4];
        s.spmv(&[], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }
}
