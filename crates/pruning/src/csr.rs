//! Compressed-sparse-row matrices and the SpMV/SpMM kernels (ISSUE 1).
//!
//! The paper's DNN accelerator streams pruned FC layers in a CSR-like
//! compressed format (DESIGN.md §2); this module is the software analogue.
//! Column indices are `u32` — half the footprint of `usize` indices, which
//! matters because SpMV is memory-bound: at 90 % sparsity the whole win over
//! dense GEMV is reading 8 bytes per surviving weight instead of 4 bytes per
//! *every* weight.

use darkside_error::Error;
use darkside_nn::Matrix;

/// CSR sparse matrix over `f32`, `u32` column indices.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx`/`vals`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl Csr {
    /// Import raw CSR buffers, validating every structural invariant the
    /// kernels rely on: `rows + 1` monotone offsets starting at 0 and ending
    /// at `vals.len()`, matching index/value lengths, and in-range columns.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        vals: Vec<f32>,
    ) -> Result<Self, Error> {
        let fail = |detail: String| Err(Error::shape("Csr::new", detail));
        if row_ptr.len() != rows + 1 {
            return fail(format!("{} offsets for {rows} rows", row_ptr.len()));
        }
        if row_ptr[0] != 0 {
            return fail(format!("row_ptr starts at {}", row_ptr[0]));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return fail("row_ptr is not monotone".into());
        }
        if col_idx.len() != vals.len() || *row_ptr.last().unwrap() as usize != vals.len() {
            return fail(format!(
                "{} column indices, {} values, final offset {}",
                col_idx.len(),
                vals.len(),
                row_ptr.last().unwrap()
            ));
        }
        if let Some(&j) = col_idx.iter().find(|&&j| j as usize >= cols) {
            return fail(format!("column index {j} in a {cols}-column matrix"));
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Compress every nonzero of `dense`.
    pub fn from_dense(dense: &Matrix) -> Result<Self, Error> {
        Self::from_dense_filtered(dense, |v| v != 0.0)
    }

    /// Compress entries of `dense` for which `keep` holds (e.g. a pruning
    /// mask applied on the fly, without materializing the masked matrix).
    pub fn from_dense_filtered(
        dense: &Matrix,
        mut keep: impl FnMut(f32) -> bool,
    ) -> Result<Self, Error> {
        if dense.cols() > u32::MAX as usize || dense.rows() >= u32::MAX as usize {
            return Err(Error::shape(
                "Csr::from_dense",
                format!(
                    "{}x{} shape exceeds the u32 index space",
                    dense.rows(),
                    dense.cols()
                ),
            ));
        }
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for i in 0..dense.rows() {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if keep(v) {
                    col_idx.push(j as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(vals.len() as u32);
        }
        Ok(Self {
            rows: dense.rows(),
            cols: dense.cols(),
            row_ptr,
            col_idx,
            vals,
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (surviving) weights.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries that are *zero* (the paper's pruning percentage).
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// `(col_indices, values)` of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Decompress to dense (test/debug helper — the oracle direction).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let row = m.row_mut(i);
            for (&j, &v) in cols.iter().zip(vals) {
                row[j as usize] = v;
            }
        }
        m
    }

    /// Sparse mat-vec: `y = S · x`. One gather-dot per row; the kernel the
    /// `spmv` bench race against [`darkside_nn::gemv_naive`].
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "spmv: x length");
        assert_eq!(y.len(), self.rows, "spmv: y length");
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let mut sum = 0.0f32;
            for (&j, &v) in self.col_idx[lo..hi].iter().zip(&self.vals[lo..hi]) {
                sum += v * x[j as usize];
            }
            *yi = sum;
        }
    }

    /// Sparse mat-mat: `C = S · B` (`B` is `cols × n` row-major dense) via
    /// the quad-unrolled, thread-banded [`darkside_nn::csr_spmm`] kernel.
    /// Bit-identical to [`spmm_reference`](Self::spmm_reference): the kernel
    /// preserves the ascending-column accumulation order per C element.
    pub fn spmm(&self, b: &Matrix, c: &mut Matrix) {
        assert_eq!(b.rows(), self.cols, "spmm: inner dimension");
        assert_eq!(c.rows(), self.rows, "spmm: output rows");
        assert_eq!(c.cols(), b.cols(), "spmm: output cols");
        darkside_nn::csr_spmm(
            self.rows,
            self.cols,
            b.cols(),
            &self.row_ptr,
            &self.col_idx,
            &self.vals,
            b.as_slice(),
            c.as_mut_slice(),
        );
    }

    /// The pre-ISSUE-6 scalar single-threaded SpMM, kept in-tree permanently
    /// as the correctness oracle and the "before" baseline that
    /// `darkside-bench` measures the vectorized kernel's speedup against
    /// (same role as [`darkside_nn::gemm_naive`] for GEMM).
    pub fn spmm_reference(&self, b: &Matrix, c: &mut Matrix) {
        assert_eq!(b.rows(), self.cols, "spmm: inner dimension");
        assert_eq!(c.rows(), self.rows, "spmm: output rows");
        assert_eq!(c.cols(), b.cols(), "spmm: output cols");
        let n = b.cols();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let crow = c.row_mut(i);
            crow.fill(0.0);
            if n == 0 {
                continue;
            }
            for (&j, &v) in cols.iter().zip(vals) {
                let brow = b.row(j as usize);
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += v * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense() {
        let d = Matrix::new(2, 3, vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0]).unwrap();
        let s = Csr::from_dense(&d).unwrap();
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.to_dense(), d);
        assert!((s.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn new_validates_raw_buffers() {
        // A valid import round-trips.
        let s = Csr::new(2, 3, vec![0, 1, 3], vec![2, 0, 1], vec![5.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.nnz(), 3);
        let mut y = vec![0.0f32; 2];
        s.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 3.0]);
        // Each invariant violation is rejected with a Shape error.
        for (row_ptr, col_idx, vals) in [
            (vec![0, 3], vec![0u32, 1, 2], vec![1.0f32, 2.0, 3.0]), // wrong offset count
            (vec![1, 2, 3], vec![0, 1, 2], vec![1.0, 2.0, 3.0]),    // nonzero first offset
            (vec![0, 2, 1], vec![0, 1, 2], vec![1.0, 2.0, 3.0]),    // non-monotone
            (vec![0, 1, 2], vec![0, 1, 2], vec![1.0, 2.0, 3.0]),    // final offset short
            (vec![0, 1, 3], vec![0, 9, 1], vec![1.0, 2.0, 3.0]),    // column out of range
        ] {
            let err = Csr::new(2, 3, row_ptr, col_idx, vals).unwrap_err();
            assert!(matches!(err, Error::Shape { .. }), "{err}");
        }
    }

    #[test]
    fn spmv_known_values() {
        let d = Matrix::new(2, 3, vec![1.0, 0.0, 2.0, 0.0, 4.0, 0.0]).unwrap();
        let s = Csr::from_dense(&d).unwrap();
        let mut y = vec![0.0f32; 2];
        s.spmv(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![7.0, 8.0]);
    }

    #[test]
    fn empty_shapes() {
        let s = Csr::from_dense(&Matrix::zeros(0, 5)).unwrap();
        s.spmv(&[0.0; 5], &mut []);
        let s = Csr::from_dense(&Matrix::zeros(4, 0)).unwrap();
        let mut y = vec![1.0f32; 4];
        s.spmv(&[], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }
}
