//! Block-sparse-row matrices for structured pruning (ISSUE 6 tentpole).
//!
//! [`Csr`](crate::Csr) stores individual survivors; [`Bsr`] stores whole
//! `r×c` *tiles* of survivors so the SpMM inner loop can be the dense GEMM's
//! 8×8 register-tile body instead of a scalar gather — the software analogue
//! of accelerator-aware pruning (Kang, PAPERS.md): the sparsity pattern is
//! chosen to match what the compute units want to eat.
//!
//! Layout contract (shared with [`darkside_nn::bsr_spmm`]): blocks are
//! **k-major** — `blocks[bi * r * c + p * r + row]` is block `bi`'s element
//! at block-local `(row, p)`. With `r == MR` a stored block *is* a packed-A
//! strip of the dense micro-kernel, so serving needs no repacking. Edge
//! blocks (dims not multiples of `r`/`c`) are zero-padded to full size.

use darkside_error::Error;
use darkside_nn::Matrix;

/// BSR sparse matrix over `f32`: all-or-nothing `r×c` blocks, `u32` block
/// column indices, k-major block storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Bsr {
    rows: usize,
    cols: usize,
    r: usize,
    c: usize,
    /// `block_rows + 1` offsets into `col_idx`/`blocks`.
    row_ptr: Vec<u32>,
    /// Block-column index of each stored block.
    col_idx: Vec<u32>,
    /// `r * c` values per stored block, k-major, zero-padded at edges.
    blocks: Vec<f32>,
}

impl Bsr {
    /// Import raw BSR buffers, validating the invariants the kernel relies
    /// on: monotone `block_rows + 1` offsets, matching index/storage
    /// lengths, and in-range block columns.
    pub fn new(
        rows: usize,
        cols: usize,
        r: usize,
        c: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        blocks: Vec<f32>,
    ) -> Result<Self, Error> {
        let fail = |detail: String| Err(Error::shape("Bsr::new", detail));
        if r == 0 || c == 0 {
            return fail(format!("{r}x{c} block"));
        }
        let block_rows = rows.div_ceil(r);
        let block_cols = cols.div_ceil(c);
        if row_ptr.len() != block_rows + 1 {
            return fail(format!(
                "{} offsets for {block_rows} block rows",
                row_ptr.len()
            ));
        }
        if row_ptr[0] != 0 {
            return fail(format!("row_ptr starts at {}", row_ptr[0]));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return fail("row_ptr is not monotone".into());
        }
        if *row_ptr.last().unwrap() as usize != col_idx.len() {
            return fail(format!(
                "{} block indices, final offset {}",
                col_idx.len(),
                row_ptr.last().unwrap()
            ));
        }
        if blocks.len() != col_idx.len() * r * c {
            return fail(format!(
                "{} block values for {} {r}x{c} blocks",
                blocks.len(),
                col_idx.len()
            ));
        }
        if let Some(&j) = col_idx.iter().find(|&&j| j as usize >= block_cols) {
            return fail(format!(
                "block column {j} in a {block_cols}-block-column matrix"
            ));
        }
        Ok(Self {
            rows,
            cols,
            r,
            c,
            row_ptr,
            col_idx,
            blocks,
        })
    }

    /// Compress `dense`, keeping every `r×c` block that contains at least
    /// one nonzero (the all-or-nothing contract: a structured mask zeroes
    /// whole blocks, so any survivor means the block was kept).
    pub fn from_dense(dense: &Matrix, r: usize, c: usize) -> Result<Self, Error> {
        if r == 0 || c == 0 {
            return Err(Error::shape("Bsr::from_dense", format!("{r}x{c} block")));
        }
        let (rows, cols) = (dense.rows(), dense.cols());
        let block_rows = rows.div_ceil(r);
        let block_cols = cols.div_ceil(c);
        if block_cols > u32::MAX as usize || block_rows >= u32::MAX as usize {
            return Err(Error::shape(
                "Bsr::from_dense",
                format!("{rows}x{cols}/{r}x{c} exceeds the u32 block index space"),
            ));
        }
        let mut row_ptr = Vec::with_capacity(block_rows + 1);
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();
        row_ptr.push(0u32);
        for ib in 0..block_rows {
            let rows_eff = r.min(rows - ib * r);
            for jb in 0..block_cols {
                let cols_eff = c.min(cols - jb * c);
                let nonzero = (0..rows_eff).any(|row| {
                    dense.row(ib * r + row)[jb * c..jb * c + cols_eff]
                        .iter()
                        .any(|&v| v != 0.0)
                });
                if !nonzero {
                    continue;
                }
                col_idx.push(jb as u32);
                // k-major with zero padding to the full r×c footprint.
                for p in 0..c {
                    for row in 0..r {
                        let v = if row < rows_eff && p < cols_eff {
                            dense.row(ib * r + row)[jb * c + p]
                        } else {
                            0.0
                        };
                        blocks.push(v);
                    }
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Ok(Self {
            rows,
            cols,
            r,
            c,
            row_ptr,
            col_idx,
            blocks,
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(r, c)` block shape.
    pub fn block_dims(&self) -> (usize, usize) {
        (self.r, self.c)
    }

    pub fn block_rows(&self) -> usize {
        self.rows.div_ceil(self.r)
    }

    pub fn block_cols(&self) -> usize {
        self.cols.div_ceil(self.c)
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Stored blocks in block-row `ib` (balanced pruning fixes this).
    pub fn blocks_in_row(&self, ib: usize) -> usize {
        (self.row_ptr[ib + 1] - self.row_ptr[ib]) as usize
    }

    /// Number of *real* matrix entries covered by stored blocks (excludes
    /// edge padding). Under the all-or-nothing contract these are the kept
    /// weights, so `nnz`/`sparsity` line up with the element [`Mask`]
    /// (in-block zeros count as kept, exactly as the mask counts them).
    ///
    /// [`Mask`]: crate::Mask
    pub fn nnz(&self) -> usize {
        let mut nnz = 0usize;
        for ib in 0..self.block_rows() {
            let rows_eff = self.r.min(self.rows - ib * self.r);
            let lo = self.row_ptr[ib] as usize;
            let hi = self.row_ptr[ib + 1] as usize;
            for &jb in &self.col_idx[lo..hi] {
                let cols_eff = self.c.min(self.cols - jb as usize * self.c);
                nnz += rows_eff * cols_eff;
            }
        }
        nnz
    }

    /// Fraction of entries outside any stored block.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Fraction of *blocks* dropped (the structured analogue of
    /// [`sparsity`](Self::sparsity); equal to it when blocks divide dims).
    pub fn block_sparsity(&self) -> f64 {
        let total = self.block_rows() * self.block_cols();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.num_blocks() as f64 / total as f64
    }

    /// Decompress to dense (test/debug helper — the oracle direction).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for ib in 0..self.block_rows() {
            let rows_eff = self.r.min(self.rows - ib * self.r);
            let lo = self.row_ptr[ib] as usize;
            let hi = self.row_ptr[ib + 1] as usize;
            for (bi, &jb) in self.col_idx[lo..hi].iter().enumerate() {
                let base = jb as usize * self.c;
                let cols_eff = self.c.min(self.cols - base);
                let blk = &self.blocks[(lo + bi) * self.r * self.c..];
                for p in 0..cols_eff {
                    for row in 0..rows_eff {
                        m.row_mut(ib * self.r + row)[base + p] = blk[p * self.r + row];
                    }
                }
            }
        }
        m
    }

    /// Sparse mat-vec: `y = S · x`. Accumulates each output element over
    /// blocks in ascending block-column order, `k` ascending within a block
    /// — the same order as [`spmm`](Self::spmm), so per-frame and batched
    /// scoring agree bit-for-bit (and both match CSR's ascending-column
    /// gather-dot).
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "spmv: x length");
        assert_eq!(y.len(), self.rows, "spmv: y length");
        y.fill(0.0);
        for ib in 0..self.block_rows() {
            let rows_eff = self.r.min(self.rows - ib * self.r);
            let lo = self.row_ptr[ib] as usize;
            let hi = self.row_ptr[ib + 1] as usize;
            let yband = &mut y[ib * self.r..ib * self.r + rows_eff];
            for (bi, &jb) in self.col_idx[lo..hi].iter().enumerate() {
                let base = jb as usize * self.c;
                let cols_eff = self.c.min(self.cols - base);
                let blk = &self.blocks[(lo + bi) * self.r * self.c..];
                for p in 0..cols_eff {
                    let xv = x[base + p];
                    let col = &blk[p * self.r..p * self.r + rows_eff];
                    for (yv, &wv) in yband.iter_mut().zip(col) {
                        *yv += wv * xv;
                    }
                }
            }
        }
    }

    /// Sparse mat-mat: `C = S · B` via the register-tiled
    /// [`darkside_nn::bsr_spmm`] kernel.
    pub fn spmm(&self, b: &Matrix, c: &mut Matrix) {
        assert_eq!(b.rows(), self.cols, "spmm: inner dimension");
        assert_eq!(c.rows(), self.rows, "spmm: output rows");
        assert_eq!(c.cols(), b.cols(), "spmm: output cols");
        darkside_nn::bsr_spmm(
            self.rows,
            self.cols,
            b.cols(),
            self.r,
            self.c,
            &self.row_ptr,
            &self.col_idx,
            &self.blocks,
            b.as_slice(),
            c.as_mut_slice(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense_with_padding() {
        // 5x7 with 4x4 blocks: edge blocks padded, zero blocks dropped.
        let d = Matrix::from_fn(5, 7, |i, j| {
            if (i < 4 && j < 4) || (i >= 4 && j >= 4) {
                (i * 7 + j) as f32 + 1.0
            } else {
                0.0
            }
        });
        let s = Bsr::from_dense(&d, 4, 4).unwrap();
        assert_eq!(s.block_rows(), 2);
        assert_eq!(s.block_cols(), 2);
        assert_eq!(s.num_blocks(), 2);
        assert_eq!(s.nnz(), 4 * 4 + 3);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn new_validates_raw_buffers() {
        let ok = Bsr::new(2, 2, 1, 2, vec![0, 1, 1], vec![0], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.num_blocks(), 1);
        for (r, c, row_ptr, col_idx, blocks) in [
            (0, 2, vec![0u32, 1, 1], vec![0u32], vec![1.0f32, 2.0]), // zero block dim
            (1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]),             // wrong offset count
            (1, 2, vec![1, 1, 1], vec![0], vec![1.0, 2.0]),          // nonzero first offset
            (1, 2, vec![0, 1, 0], vec![0], vec![1.0, 2.0]),          // non-monotone
            (1, 2, vec![0, 1, 2], vec![0], vec![1.0, 2.0]),          // final offset long
            (1, 2, vec![0, 1, 1], vec![0], vec![1.0]),               // short storage
            (1, 2, vec![0, 1, 1], vec![7], vec![1.0, 2.0]),          // block col out of range
        ] {
            let err = Bsr::new(2, 2, r, c, row_ptr, col_idx, blocks).unwrap_err();
            assert!(matches!(err, Error::Shape { .. }), "{err}");
        }
    }

    #[test]
    fn spmv_matches_dense() {
        let d = Matrix::from_fn(9, 10, |i, j| {
            if (i / 4 + j / 4) % 2 == 0 {
                (i as f32 - j as f32) * 0.25
            } else {
                0.0
            }
        });
        let s = Bsr::from_dense(&d, 4, 4).unwrap();
        let x: Vec<f32> = (0..10).map(|v| v as f32 * 0.5 - 2.0).collect();
        let mut y = vec![0.0f32; 9];
        s.spmv(&x, &mut y);
        let mut want = vec![0.0f32; 9];
        for (i, wi) in want.iter_mut().enumerate() {
            for (j, xj) in x.iter().enumerate() {
                *wi += d.get(i, j) * xj;
            }
        }
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_shapes() {
        let s = Bsr::from_dense(&Matrix::zeros(0, 5), 8, 8).unwrap();
        s.spmv(&[0.0; 5], &mut []);
        let s = Bsr::from_dense(&Matrix::zeros(4, 0), 8, 8).unwrap();
        let mut y = vec![1.0f32; 4];
        s.spmv(&[], &mut y);
        assert_eq!(y, vec![0.0; 4]);
        assert_eq!(s.sparsity(), 0.0);
    }
}
