//! # darkside-hwmodel — shared hardware-model substrate
//!
//! DESIGN.md §3: set-associative cache simulation, a DRAM model, and the
//! CACTI-like per-access energy tables both accelerator simulators charge
//! events against (the paper's Synopsys DC / CACTI-P constants enter only
//! as coefficients — DESIGN.md §2, last row).
//!
//! **Status:** skeleton (ISSUE 1 creates the workspace; cache/DRAM models
//! land with the accelerator PRs). The energy-accounting type below is
//! final: every simulator event maps to `(component, count)` and energy is
//! `Σ count × per_access`.

/// Per-access energy coefficients for one hardware component, in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyCoefficients {
    pub read_pj: f64,
    pub write_pj: f64,
    /// Leakage charged per cycle the component is powered.
    pub leakage_pj_per_cycle: f64,
}

/// Running energy account for one component.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyAccount {
    pub reads: u64,
    pub writes: u64,
    pub powered_cycles: u64,
}

impl EnergyAccount {
    pub fn total_pj(&self, c: &EnergyCoefficients) -> f64 {
        self.reads as f64 * c.read_pj
            + self.writes as f64 * c.write_pj
            + self.powered_cycles as f64 * c.leakage_pj_per_cycle
    }

    /// Export this account as named `darkside_trace` metrics (ISSUE 4):
    /// counters `energy.{component}.reads` / `.writes` and one
    /// `energy.{component}.pj` histogram sample for the account's total
    /// under `coeffs`. No-op (one flag read) when tracing is inactive, so
    /// simulators can call it unconditionally at utterance end.
    pub fn trace_as(&self, component: &str, coeffs: &EnergyCoefficients) {
        if !darkside_trace::active() {
            return;
        }
        let mut name = String::with_capacity(7 + component.len() + 7);
        name.push_str("energy.");
        name.push_str(component);
        let base = name.len();
        name.push_str(".reads");
        darkside_trace::counter(&name, self.reads);
        name.truncate(base);
        name.push_str(".writes");
        darkside_trace::counter(&name, self.writes);
        name.truncate(base);
        name.push_str(".pj");
        darkside_trace::sample(&name, self.total_pj(coeffs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_linear_in_events() {
        let c = EnergyCoefficients {
            read_pj: 2.0,
            write_pj: 3.0,
            leakage_pj_per_cycle: 0.5,
        };
        let acct = EnergyAccount {
            reads: 10,
            writes: 4,
            powered_cycles: 100,
        };
        assert!((acct.total_pj(&c) - (20.0 + 12.0 + 50.0)).abs() < 1e-12);
    }
}
