//! The generative speech model standing in for LibriSpeech (DESIGN.md §2):
//! 3-state left-to-right HMM phonemes with Gaussian-mixture emitters, a word
//! lexicon with a controlled homophone fraction, a sparse bigram grammar,
//! and a seeded utterance sampler with geometric state durations.
//!
//! The corpus gives the two things the paper's phenomenon needs: frames
//! whose true sub-phoneme class is learnable but noisy (GMM overlap sets the
//! baseline confidence regime), and a word-level search space with genuine
//! ambiguity (homophones put an irreducible floor under WER, standing in for
//! LibriSpeech's lexical confusability — DESIGN.md §4b).

use crate::PhonemeInventory;
use darkside_error::Error;
use darkside_nn::{Frame, Matrix, Rng};

/// Everything that shapes the synthetic task. Builder-style `with_*` methods
/// cover the knobs experiments sweep; `default_scaled` is DESIGN.md §4b.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    pub inventory: PhonemeInventory,
    /// Vocabulary size.
    pub num_words: usize,
    /// Fraction of words that share a pronunciation with another word.
    pub homophone_fraction: f64,
    /// Pronunciation length range, in phonemes (inclusive).
    pub min_pron_len: usize,
    pub max_pron_len: usize,
    /// Raw feature dimensionality per frame (before context splicing).
    pub feature_dim: usize,
    /// Context frames spliced on each side (4 → 9-frame window).
    pub context: usize,
    /// Gaussian mixture components per sub-phoneme class.
    pub gmm_components: usize,
    /// Scale of phoneme centers in feature space.
    pub mean_scale: f32,
    /// Scale of per-state offsets from the phoneme center (same-phoneme
    /// states overlap more than cross-phoneme ones, like real sub-phones).
    pub state_scale: f32,
    /// Emission noise standard deviation.
    pub observation_noise: f32,
    /// HMM self-loop probability (geometric state durations).
    pub self_loop_prob: f32,
    /// Duration cap per state, in frames.
    pub max_state_frames: usize,
    /// Out-degree of each word in the bigram grammar.
    pub successors_per_word: usize,
    /// Probability mass the grammar reserves for utterance end.
    pub end_prob: f32,
    /// Utterance length range, in words (inclusive).
    pub min_words: usize,
    pub max_words: usize,
    /// Seed for lexicon/grammar/emitter generation (samplers take their own
    /// [`Rng`], so train/test sets draw from one fixed task).
    pub seed: u64,
}

impl CorpusConfig {
    /// The DESIGN.md §4b scaled operating point.
    pub fn default_scaled() -> Self {
        Self {
            inventory: PhonemeInventory::default_scaled(),
            num_words: 200,
            homophone_fraction: 0.15,
            min_pron_len: 1,
            max_pron_len: 3,
            feature_dim: 40,
            context: 4,
            gmm_components: 2,
            mean_scale: 0.8,
            state_scale: 0.45,
            observation_noise: 1.05,
            self_loop_prob: 0.45,
            max_state_frames: 4,
            successors_per_word: 20,
            end_prob: 0.1,
            min_words: 3,
            max_words: 8,
            seed: 0x0A_C0,
        }
    }

    /// The large-vocabulary operating point (ISSUE 8 graph scale): the
    /// same acoustic model and grammar shape as [`default_scaled`], but
    /// `num_words` words drawn from 2–4-phoneme pronunciations. With the
    /// default 30-phoneme inventory that space holds ~838k strings — ample
    /// uniqueness headroom at 10k words, where the default 1–3-phoneme
    /// range (~28k strings) is already half-saturated and collision-bound.
    ///
    /// [`default_scaled`]: CorpusConfig::default_scaled
    pub fn large_vocab(num_words: usize) -> Self {
        Self {
            num_words,
            min_pron_len: 2,
            max_pron_len: 4,
            ..Self::default_scaled()
        }
    }

    pub fn with_num_words(mut self, n: usize) -> Self {
        self.num_words = n;
        self
    }

    pub fn with_homophone_fraction(mut self, f: f64) -> Self {
        self.homophone_fraction = f;
        self
    }

    pub fn with_noise(mut self, mean_scale: f32, observation_noise: f32) -> Self {
        self.mean_scale = mean_scale;
        self.observation_noise = observation_noise;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Input dimensionality of the spliced frames the MLP consumes.
    pub fn spliced_dim(&self) -> usize {
        self.feature_dim * (2 * self.context + 1)
    }

    fn validate(&self) -> Result<(), Error> {
        let fail = |detail: String| Err(Error::config("CorpusConfig", detail));
        if self.num_words < 2 {
            return fail(format!("vocabulary of {} words", self.num_words));
        }
        if !(0.0..1.0).contains(&self.homophone_fraction) {
            return fail(format!("homophone fraction {}", self.homophone_fraction));
        }
        if self.min_pron_len == 0 || self.min_pron_len > self.max_pron_len {
            return fail(format!(
                "pronunciation length range {}..={}",
                self.min_pron_len, self.max_pron_len
            ));
        }
        if self.inventory.num_phonemes == 0 || self.inventory.states_per_phoneme == 0 {
            return fail("empty phoneme inventory".into());
        }
        if self.feature_dim == 0 {
            return fail("zero feature dimensionality".into());
        }
        if self.gmm_components == 0 {
            return fail("zero mixture components".into());
        }
        if !(0.0..1.0).contains(&self.self_loop_prob) || self.max_state_frames == 0 {
            return fail(format!(
                "state duration model p={} cap={}",
                self.self_loop_prob, self.max_state_frames
            ));
        }
        if self.successors_per_word == 0 || self.successors_per_word >= self.num_words {
            return fail(format!(
                "{} successors in a {}-word vocabulary",
                self.successors_per_word, self.num_words
            ));
        }
        if !(0.0..1.0).contains(&(self.end_prob as f64)) || self.end_prob <= 0.0 {
            return fail(format!("end probability {}", self.end_prob));
        }
        if self.min_words == 0 || self.min_words > self.max_words {
            return fail(format!(
                "utterance length range {}..={}",
                self.min_words, self.max_words
            ));
        }
        Ok(())
    }
}

/// Word pronunciations, indexed by word id.
#[derive(Clone, Debug)]
pub struct Lexicon {
    /// Phoneme ids per word.
    pub prons: Vec<Vec<usize>>,
}

impl Lexicon {
    pub fn num_words(&self) -> usize {
        self.prons.len()
    }

    /// Number of words sharing their pronunciation with another word.
    pub fn num_homophones(&self) -> usize {
        let mut n = 0;
        for (w, pron) in self.prons.iter().enumerate() {
            if self
                .prons
                .iter()
                .enumerate()
                .any(|(v, p)| v != w && p == pron)
            {
                n += 1;
            }
        }
        n
    }
}

/// Sparse bigram grammar in cost (−log probability) space.
#[derive(Clone, Debug)]
pub struct Bigram {
    /// `(word, cost)` start distribution.
    pub initial: Vec<(u32, f32)>,
    /// Per-word `(successor, cost)` lists; probabilities per word sum to
    /// `1 − end_prob`.
    pub successors: Vec<Vec<(u32, f32)>>,
    /// Cost of ending the utterance after any word.
    pub end_cost: f32,
}

/// One sampled utterance: the true word sequence, the spliced feature
/// frames, and the frame-level sub-phoneme alignment (training labels).
#[derive(Clone, Debug)]
pub struct Utterance {
    pub words: Vec<u32>,
    pub frames: Vec<Frame>,
    pub labels: Vec<u32>,
}

/// The generated task: lexicon + grammar + emitters, all seeded.
#[derive(Clone, Debug)]
pub struct Corpus {
    pub config: CorpusConfig,
    pub lexicon: Lexicon,
    pub grammar: Bigram,
    /// `[class][component][feature_dim]` mixture means.
    emitters: Vec<Vec<Vec<f32>>>,
}

impl Corpus {
    /// Build the task (lexicon, grammar, emitters) from a validated config.
    pub fn generate(config: CorpusConfig) -> Result<Self, Error> {
        config.validate()?;
        let mut rng = Rng::new(config.seed);
        let lexicon = generate_lexicon(&config, &mut rng)?;
        let grammar = generate_bigram(&config, &mut rng);
        let emitters = generate_emitters(&config, &mut rng);
        Ok(Self {
            config,
            lexicon,
            grammar,
            emitters,
        })
    }

    /// Sample one utterance: bigram word walk → pronunciations → HMM state
    /// durations → GMM emissions → context splicing.
    pub fn sample_utterance(&self, rng: &mut Rng) -> Utterance {
        let cfg = &self.config;
        let n_words = cfg.min_words + rng.below(cfg.max_words - cfg.min_words + 1);
        let mut words = Vec::with_capacity(n_words);
        let mut word = pick_weighted(&self.grammar.initial, rng);
        words.push(word);
        for _ in 1..n_words {
            word = pick_weighted(&self.grammar.successors[word as usize], rng);
            words.push(word);
        }

        let mut raw: Vec<Vec<f32>> = Vec::new();
        let mut labels = Vec::new();
        for &w in &words {
            for &phoneme in &self.lexicon.prons[w as usize] {
                for state in 0..cfg.inventory.states_per_phoneme {
                    let class = cfg.inventory.class_id(phoneme, state) as u32;
                    let mut frames = 1;
                    while frames < cfg.max_state_frames && rng.next_f32() < cfg.self_loop_prob {
                        frames += 1;
                    }
                    for _ in 0..frames {
                        let component = rng.below(cfg.gmm_components);
                        let mean = &self.emitters[class as usize][component];
                        raw.push(
                            mean.iter()
                                .map(|&m| m + cfg.observation_noise * rng.normal())
                                .collect(),
                        );
                        labels.push(class);
                    }
                }
            }
        }
        Utterance {
            words,
            frames: splice(&raw, cfg.context),
            labels,
        }
    }

    /// Sample `n` utterances.
    pub fn sample_set(&self, n: usize, rng: &mut Rng) -> Vec<Utterance> {
        (0..n).map(|_| self.sample_utterance(rng)).collect()
    }
}

/// Stack a set of utterances into the `(frames × spliced_dim, labels)` pair
/// the trainer consumes.
pub fn training_set(utterances: &[Utterance]) -> (Matrix, Vec<u32>) {
    let total: usize = utterances.iter().map(|u| u.frames.len()).sum();
    let dim = utterances
        .first()
        .and_then(|u| u.frames.first())
        .map_or(0, |f| f.dim());
    let mut features = Matrix::zeros(total, dim);
    let mut labels = Vec::with_capacity(total);
    let mut row = 0;
    for utt in utterances {
        for (frame, &label) in utt.frames.iter().zip(&utt.labels) {
            features.row_mut(row).copy_from_slice(&frame.0);
            labels.push(label);
            row += 1;
        }
    }
    (features, labels)
}

/// Splice raw frames with `context` frames on each side (edge-clamped).
fn splice(raw: &[Vec<f32>], context: usize) -> Vec<Frame> {
    let t_max = raw.len() as isize - 1;
    (0..raw.len())
        .map(|t| {
            let mut v = Vec::with_capacity((2 * context + 1) * raw[t].len());
            for off in -(context as isize)..=(context as isize) {
                let src = (t as isize + off).clamp(0, t_max) as usize;
                v.extend_from_slice(&raw[src]);
            }
            Frame(v)
        })
        .collect()
}

/// Draw from a `(item, cost)` distribution, weights `exp(−cost)`.
fn pick_weighted(items: &[(u32, f32)], rng: &mut Rng) -> u32 {
    debug_assert!(!items.is_empty());
    let weights: Vec<f64> = items.iter().map(|&(_, c)| (-c as f64).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.next_f64() * total;
    for (&(item, _), w) in items.iter().zip(&weights) {
        draw -= w;
        if draw <= 0.0 {
            return item;
        }
    }
    items.last().unwrap().0
}

fn generate_lexicon(config: &CorpusConfig, rng: &mut Rng) -> Result<Lexicon, Error> {
    let unique_needed =
        ((1.0 - config.homophone_fraction) * config.num_words as f64).ceil() as usize;
    // Is the pronunciation space big enough for the unique set?
    let p = config.inventory.num_phonemes as f64;
    let space: f64 = (config.min_pron_len..=config.max_pron_len)
        .map(|l| p.powi(l as i32))
        .sum();
    if (unique_needed as f64) > space * 0.5 {
        return Err(Error::corpus(
            "generate_lexicon",
            format!("{unique_needed} unique pronunciations requested from a space of {space:.0}"),
        ));
    }
    // Discovery order stays the Vec push order (seed-stable); the set only
    // answers membership, keeping rejection sampling O(1) per attempt so a
    // 10k-word vocabulary (ISSUE 8) generates in linear time.
    let mut unique: Vec<Vec<usize>> = Vec::with_capacity(unique_needed);
    let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while unique.len() < unique_needed {
        attempts += 1;
        if attempts > unique_needed * 1000 {
            return Err(Error::corpus(
                "generate_lexicon",
                format!("could not find {unique_needed} unique pronunciations"),
            ));
        }
        let len = config.min_pron_len + rng.below(config.max_pron_len - config.min_pron_len + 1);
        let pron: Vec<usize> = (0..len)
            .map(|_| rng.below(config.inventory.num_phonemes))
            .collect();
        if seen.insert(pron.clone()) {
            unique.push(pron);
        }
    }
    // Homophones copy a pronunciation already in use.
    let mut prons = unique.clone();
    while prons.len() < config.num_words {
        prons.push(unique[rng.below(unique.len())].clone());
    }
    Ok(Lexicon { prons })
}

fn generate_bigram(config: &CorpusConfig, rng: &mut Rng) -> Bigram {
    let n = config.num_words;
    let initial = random_distribution(n, (0..n as u32).collect(), 1.0, rng);
    let successors = (0..n as u32)
        .map(|w| {
            // Partial Fisher-Yates: `successors_per_word` distinct words ≠ w.
            let mut pool: Vec<u32> = (0..n as u32).filter(|&v| v != w).collect();
            for i in 0..config.successors_per_word {
                let j = i + rng.below(pool.len() - i);
                pool.swap(i, j);
            }
            pool.truncate(config.successors_per_word);
            random_distribution(
                config.successors_per_word,
                pool,
                1.0 - config.end_prob as f64,
                rng,
            )
        })
        .collect();
    Bigram {
        initial,
        successors,
        end_cost: -(config.end_prob as f64).ln() as f32,
    }
}

/// Random categorical distribution over `items` with total mass `mass`,
/// returned in cost space.
fn random_distribution(n: usize, items: Vec<u32>, mass: f64, rng: &mut Rng) -> Vec<(u32, f32)> {
    let weights: Vec<f64> = (0..n).map(|_| 0.5 + rng.next_f64()).collect();
    let total: f64 = weights.iter().sum();
    items
        .into_iter()
        .zip(&weights)
        .map(|(item, w)| (item, -(mass * w / total).ln() as f32))
        .collect()
}

fn generate_emitters(config: &CorpusConfig, rng: &mut Rng) -> Vec<Vec<Vec<f32>>> {
    let inv = &config.inventory;
    (0..inv.num_phonemes)
        .flat_map(|_| {
            let phoneme_center: Vec<f32> = (0..config.feature_dim)
                .map(|_| rng.normal_scaled(0.0, config.mean_scale))
                .collect();
            (0..inv.states_per_phoneme)
                .map(|_| {
                    let state_center: Vec<f32> = phoneme_center
                        .iter()
                        .map(|&c| c + rng.normal_scaled(0.0, config.state_scale))
                        .collect();
                    (0..config.gmm_components)
                        .map(|_| {
                            state_center
                                .iter()
                                .map(|&c| c + rng.normal_scaled(0.0, 0.3 * config.state_scale))
                                .collect()
                        })
                        .collect()
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_vocab_scales_the_lexicon_to_ten_thousand_words() {
        let config = CorpusConfig::large_vocab(10_000);
        let corpus = Corpus::generate(config).unwrap();
        assert_eq!(corpus.lexicon.num_words(), 10_000);
        assert!(corpus
            .lexicon
            .prons
            .iter()
            .all(|p| (2..=4).contains(&p.len())));
        // The homophone fraction carries over from the scaled default.
        assert!(corpus.lexicon.num_homophones() > 0);
        assert_eq!(corpus.grammar.successors.len(), 10_000);
        // The default pronunciation range saturates well before 30k words.
        let cramped = CorpusConfig::default_scaled().with_num_words(30_000);
        assert!(matches!(
            Corpus::generate(cramped).unwrap_err(),
            Error::Corpus { .. }
        ));
    }

    #[test]
    fn generate_rejects_bad_configs() {
        let bad_homophones = CorpusConfig {
            homophone_fraction: 1.0,
            ..CorpusConfig::default_scaled()
        };
        assert!(matches!(
            Corpus::generate(bad_homophones).unwrap_err(),
            Error::Config { .. }
        ));
        let impossible_lexicon = CorpusConfig {
            num_words: 40,
            inventory: PhonemeInventory {
                num_phonemes: 3,
                states_per_phoneme: 3,
            },
            min_pron_len: 1,
            max_pron_len: 1,
            successors_per_word: 5,
            ..CorpusConfig::default_scaled()
        };
        assert!(matches!(
            Corpus::generate(impossible_lexicon).unwrap_err(),
            Error::Corpus { .. }
        ));
    }

    #[test]
    fn homophone_fraction_is_respected() {
        let corpus = Corpus::generate(CorpusConfig::default_scaled()).unwrap();
        let frac = corpus.lexicon.num_homophones() as f64 / corpus.lexicon.num_words() as f64;
        // At least the requested 15% share a pronunciation (copying can hit
        // an existing pron twice, so the realized fraction can exceed it).
        assert!((0.15..0.45).contains(&frac), "homophone fraction {frac:.3}");
    }

    #[test]
    fn utterances_are_aligned_spliced_and_reproducible() {
        let config = CorpusConfig::default_scaled();
        let spliced_dim = config.spliced_dim();
        let corpus = Corpus::generate(config).unwrap();
        let utt = corpus.sample_utterance(&mut Rng::new(7));
        assert!((corpus.config.min_words..=corpus.config.max_words).contains(&utt.words.len()));
        assert_eq!(utt.frames.len(), utt.labels.len());
        assert!(utt.frames.iter().all(|f| f.dim() == spliced_dim));
        // Every state of every phoneme of every word appears in order, at
        // least one frame each.
        let min_frames: usize = utt
            .words
            .iter()
            .map(|&w| {
                corpus.lexicon.prons[w as usize].len() * corpus.config.inventory.states_per_phoneme
            })
            .sum();
        assert!(utt.frames.len() >= min_frames);
        assert!(utt
            .labels
            .iter()
            .all(|&c| (c as usize) < corpus.config.inventory.num_classes()));
        // Same seed, same utterance.
        let again = corpus.sample_utterance(&mut Rng::new(7));
        assert_eq!(again.words, utt.words);
        assert_eq!(again.labels, utt.labels);

        let (features, labels) = training_set(&[utt.clone(), again]);
        assert_eq!(features.rows(), 2 * utt.frames.len());
        assert_eq!(labels.len(), features.rows());
    }

    #[test]
    fn grammar_probabilities_are_normalized() {
        let corpus = Corpus::generate(CorpusConfig::default_scaled()).unwrap();
        let end_p = (-corpus.grammar.end_cost as f64).exp();
        assert!((end_p - 0.1).abs() < 1e-6);
        for succ in &corpus.grammar.successors {
            assert_eq!(succ.len(), corpus.config.successors_per_word);
            let mass: f64 = succ.iter().map(|&(_, c)| (-c as f64).exp()).sum();
            assert!(
                (mass + end_p - 1.0).abs() < 1e-6,
                "successor mass {mass} + end {end_p}"
            );
        }
        let initial_mass: f64 = corpus
            .grammar
            .initial
            .iter()
            .map(|&(_, c)| (-c as f64).exp())
            .sum();
        assert!((initial_mass - 1.0).abs() < 1e-6);
    }
}
