//! # darkside-acoustic — synthetic speech corpus substrate
//!
//! Stands in for LibriSpeech per the substitution table in DESIGN.md §2:
//! a phoneme inventory with 3-state left-to-right HMMs, Gaussian-mixture
//! emitters in a 40-dim feature space, a word lexicon with homophones, a
//! bigram grammar, and a seeded utterance sampler.
//!
//! The inventory type below fixes the class-space arithmetic — 30 phonemes
//! × 3 states = 90 sub-phoneme classes at the scaled operating point of
//! DESIGN.md §4b — that `darkside-nn` models and `darkside-wfst` graphs are
//! built against. The generative model itself lives in [`corpus`]:
//! [`Corpus::generate`] builds the seeded task (lexicon, grammar, emitters)
//! and [`Corpus::sample_utterance`] draws aligned `(frames, labels, words)`
//! triples from it.

pub mod corpus;

pub use corpus::{training_set, Bigram, Corpus, CorpusConfig, Lexicon, Utterance};
pub use darkside_error::Error;

/// The phoneme/state inventory defining the acoustic class space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhonemeInventory {
    pub num_phonemes: usize,
    pub states_per_phoneme: usize,
}

impl PhonemeInventory {
    /// The DESIGN.md §4b scaled operating point: 30 phonemes × 3 states.
    pub fn default_scaled() -> Self {
        Self {
            num_phonemes: 30,
            states_per_phoneme: 3,
        }
    }

    /// Number of sub-phoneme classes = the MLP's softmax width.
    pub fn num_classes(&self) -> usize {
        self.num_phonemes * self.states_per_phoneme
    }

    /// Flat class id of `(phoneme, state)`.
    pub fn class_id(&self, phoneme: usize, state: usize) -> usize {
        debug_assert!(phoneme < self.num_phonemes && state < self.states_per_phoneme);
        phoneme * self.states_per_phoneme + state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_inventory_is_90_classes() {
        let inv = PhonemeInventory::default_scaled();
        assert_eq!(inv.num_classes(), 90);
        assert_eq!(inv.class_id(29, 2), 89);
        assert_eq!(inv.class_id(0, 0), 0);
    }
}
