//! # darkside-trace — zero-dependency tracing/metrics substrate (ISSUE 4)
//!
//! The paper's argument is observational — pruning looks free on accuracy
//! but explodes decode work — so the pipeline needs one measurement layer
//! instead of the ad-hoc stat structs each crate grew. This crate provides
//! it with the workspace's no-external-deps rule intact:
//!
//! * a [`Recorder`] sink trait with [`NullRecorder`] (inactive, the
//!   default), [`MemoryRecorder`] (aggregating), and [`JsonlRecorder`]
//!   (aggregating + event stream on disk);
//! * monotonic-clock nested spans via [`span`]/[`span!`] RAII guards;
//! * counters, gauges, and log-bucketed [`hist::LogHistogram`]s
//!   (p50/p95/p99/max) behind free functions ([`counter`], [`gauge`],
//!   [`sample`]);
//! * [`RunReport`] — run identity + config + the aggregated
//!   [`MetricsSnapshot`], rendered through the in-tree [`json::Json`].
//!
//! ## Ambient, per-thread installation
//!
//! Instrumentation sites (decoder frames, `nn::gemm`, pruning policies)
//! call the free functions unconditionally; each checks one thread-local
//! flag first, so with no recorder installed the cost is a branch — no
//! clock reads, no allocation, no formatting. Install a sink around a
//! region with [`with_recorder`] (or [`set_recorder`] for manual control):
//!
//! ```
//! use darkside_trace::{self as trace, Recorder as _};
//! use std::rc::Rc;
//!
//! let rec = Rc::new(trace::MemoryRecorder::new());
//! trace::with_recorder(rec.clone(), || {
//!     let _stage = trace::span!("train");
//!     trace::counter("train.frames", 128);
//!     trace::sample("train.epoch_ms", 12.5);
//! });
//! let snap = rec.snapshot().unwrap();
//! assert_eq!(snap.counters["train.frames"], 128);
//! assert_eq!(snap.spans["train"].count, 1);
//! ```
//!
//! The recorder is thread-local by design: the pipeline is single-threaded
//! at stage granularity, and the thread-parallel kernels (`nn::gemm`) are
//! timed as whole calls from the caller's thread, so worker threads never
//! race on a sink and no locks sit on the hot path. When work genuinely
//! fans out across threads — the `darkside-serve` scheduler's decode
//! workers — install a clone of one [`SharedRecorder`] per worker
//! ([`SharedRecorder::scoped`]): every thread's events aggregate into one
//! mutex-guarded snapshot instead of being silently dropped (ISSUE 5).

pub mod hist;
pub mod json;
pub mod recorder;
pub mod report;
pub mod shared;
pub mod window;

pub use hist::{exact_percentile, HistogramSummary, LogHistogram};
pub use json::Json;
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
pub use report::{MetricsSnapshot, RunReport, SpanAgg};
pub use shared::SharedRecorder;
pub use window::{
    render_prometheus, TelemetrySnapshot, WindowConfig, WindowRate, WindowedCounter,
    WindowedHistogram, WindowedView, TELEMETRY_SCHEMA_VERSION,
};

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::OnceLock;
use std::time::Instant;

thread_local! {
    static RECORDER: RefCell<Rc<dyn Recorder>> = RefCell::new(Rc::new(NullRecorder));
    /// Fast-path mirror of `RECORDER.is_active()` — one `Cell` read gates
    /// every instrumentation site.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Whether an active recorder is installed on this thread. Instrumentation
/// sites may use this to skip preparing expensive event payloads.
pub fn active() -> bool {
    ACTIVE.get()
}

/// Install `recorder` as this thread's sink; returns the previous one.
pub fn set_recorder(recorder: Rc<dyn Recorder>) -> Rc<dyn Recorder> {
    ACTIVE.set(recorder.is_active());
    RECORDER.with(|r| std::mem::replace(&mut *r.borrow_mut(), recorder))
}

/// Run `f` with `recorder` installed, restoring the previous sink after —
/// including on panic (the restore lives in a drop guard).
pub fn with_recorder<T>(recorder: Rc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Rc<dyn Recorder>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                set_recorder(prev);
            }
        }
    }
    let _restore = Restore(Some(set_recorder(recorder)));
    f()
}

/// Snapshot this thread's current recorder ([`None`] under the null sink).
pub fn snapshot() -> Option<MetricsSnapshot> {
    RECORDER.with(|r| r.borrow().snapshot())
}

/// Add `delta` to the named counter (no-op when inactive).
pub fn counter(name: &str, delta: u64) {
    if ACTIVE.get() {
        RECORDER.with(|r| r.borrow().counter(name, delta));
    }
}

/// Set the named gauge (no-op when inactive).
pub fn gauge(name: &str, value: f64) {
    if ACTIVE.get() {
        RECORDER.with(|r| r.borrow().gauge(name, value));
    }
}

/// Record one histogram sample (no-op when inactive).
pub fn sample(name: &str, value: f64) {
    if ACTIVE.get() {
        RECORDER.with(|r| r.borrow().sample(name, value));
    }
}

/// RAII handle for one open span; closes (and times) it on drop.
pub struct SpanGuard {
    name: Option<String>,
    start_ns: u64,
}

/// Open a nested monotonic-clock span. Inert (no clock read, no
/// allocation beyond evaluating `name`) when no recorder is active.
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !ACTIVE.get() {
        return SpanGuard {
            name: None,
            start_ns: 0,
        };
    }
    let name = name.into();
    let depth = DEPTH.get() + 1;
    DEPTH.set(depth);
    let start_ns = now_ns();
    RECORDER.with(|r| r.borrow().span_enter(&name, depth, start_ns));
    SpanGuard {
        name: Some(name),
        start_ns,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let depth = DEPTH.get();
            DEPTH.set(depth.saturating_sub(1));
            let end_ns = now_ns();
            if ACTIVE.get() {
                RECORDER.with(|r| r.borrow().span_exit(&name, depth, self.start_ns, end_ns));
            }
        }
    }
}

/// `span!("train.epoch")` — the idiomatic spelling of [`span`]; bind the
/// guard (`let _s = span!(...)`) so the span covers the enclosing scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sink_is_inactive() {
        // Free functions are safe no-ops with nothing installed.
        assert!(!active());
        counter("x", 1);
        gauge("x", 1.0);
        sample("x", 1.0);
        let _s = span!("x");
        assert!(snapshot().is_none());
    }

    #[test]
    fn with_recorder_scopes_and_restores() {
        let outer = Rc::new(MemoryRecorder::new());
        let inner = Rc::new(MemoryRecorder::new());
        with_recorder(outer.clone(), || {
            counter("c", 1);
            with_recorder(inner.clone(), || counter("c", 10));
            counter("c", 2);
        });
        assert!(!active());
        assert_eq!(outer.snapshot().unwrap().counters["c"], 3);
        assert_eq!(inner.snapshot().unwrap().counters["c"], 10);
    }

    #[test]
    fn installing_the_null_recorder_deactivates_tracing() {
        let mem = Rc::new(MemoryRecorder::new());
        with_recorder(mem.clone(), || {
            assert!(active());
            with_recorder(Rc::new(NullRecorder), || {
                assert!(!active());
                counter("c", 5);
            });
            assert!(active());
        });
        assert!(mem.snapshot().unwrap().counters.is_empty());
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let mem = Rc::new(MemoryRecorder::new());
        with_recorder(mem.clone(), || {
            let _outer = span!("outer");
            for _ in 0..3 {
                let _inner = span!(format!("inner.{}", "x"));
            }
        });
        let snap = mem.snapshot().unwrap();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["inner.x"].count, 3);
        assert!(snap.spans["outer"].total_ns >= snap.spans["inner.x"].total_ns);
        assert_eq!(mem.unbalanced_closes(), 0);
        assert_eq!(mem.open_spans(), 0);
    }

    #[test]
    fn panic_inside_with_recorder_still_restores() {
        let mem: Rc<MemoryRecorder> = Rc::new(MemoryRecorder::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(mem.clone(), || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!active());
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
