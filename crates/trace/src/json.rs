//! Minimal JSON value + renderer (the `serde_json` stand-in of DESIGN.md
//! §6 — the build environment is offline, so artifact output is hand-rolled
//! like `darkside_bench::harness::BenchResult::to_json`, but reusable).
//!
//! Objects preserve insertion order so rendered reports read in the order
//! the producer assembled them (stage order, table order).

use std::fmt::Write as _;

/// A JSON value. Counters keep 64-bit precision via [`Json::U64`];
/// non-finite floats render as `null` (JSON has no NaN/∞).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Fetch a field of an object (linear scan; reports are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_with_escaping() {
        let v = Json::obj(vec![
            ("name", Json::str("a \"b\"\n\t\\")),
            ("count", Json::U64(u64::MAX)),
            ("pi", Json::Num(1.5)),
            ("bad", Json::Num(f64::NAN)),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\":\"a \\\"b\\\"\\n\\t\\\\\",\"count\":18446744073709551615,\
             \"pi\":1.5,\"bad\":null,\"arr\":[null,true]}"
        );
    }

    #[test]
    fn object_field_lookup() {
        let v = Json::obj(vec![("a", Json::U64(1)), ("b", Json::U64(2))]);
        assert_eq!(v.get("b"), Some(&Json::U64(2)));
        assert_eq!(v.get("c"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }
}
