//! Structured run reports: the aggregated view of one traced run
//! ([`MetricsSnapshot`]) plus run identity (name, seed, config), rendered
//! to the `RunReport` JSON schema the experiment binaries persist and CI
//! uploads.
//!
//! Schema (`RunReport::to_json`):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "...", "seed": 123,
//!   "config": { ... producer-defined ... },
//!   "spans":      { "<name>": {"count": n, "total_ns": t, "mean_ns": t/n} },
//!   "counters":   { "<name>": n },
//!   "gauges":     { "<name>": x },
//!   "histograms": { "<name>": {"count","min","max","mean","p50","p95","p99"} }
//! }
//! ```

use crate::hist::HistogramSummary;
use crate::json::Json;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Aggregate of all closes of one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    pub count: u64,
    pub total_ns: u64,
}

impl SpanAgg {
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// Everything a recorder aggregated: the metrics registry's exported view.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
    pub spans: BTreeMap<String, SpanAgg>,
}

impl MetricsSnapshot {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "spans",
                Json::Obj(
                    self.spans
                        .iter()
                        .map(|(k, a)| {
                            (
                                k.clone(),
                                Json::obj(vec![
                                    ("count", a.count.into()),
                                    ("total_ns", a.total_ns.into()),
                                    (
                                        "mean_ns",
                                        (a.total_ns as f64 / a.count.max(1) as f64).into(),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One traced run, ready to serialize: identity + config + metrics.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub name: String,
    pub seed: u64,
    pub config: Json,
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    pub fn new(name: impl Into<String>, seed: u64, config: Json, metrics: MetricsSnapshot) -> Self {
        Self {
            name: name.into(),
            seed,
            config,
            metrics,
        }
    }

    /// Total wall-time of a span name in milliseconds, if it was recorded.
    pub fn stage_ms(&self, span: &str) -> Option<f64> {
        self.metrics.spans.get(span).map(SpanAgg::total_ms)
    }

    /// A histogram summary by name, if it was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.metrics.histograms.get(name)
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version".to_string(), Json::U64(1)),
            ("name".to_string(), Json::str(&self.name)),
            ("seed".to_string(), Json::U64(self.seed)),
            ("config".to_string(), self.config.clone()),
        ];
        if let Json::Obj(sections) = self.metrics.to_json() {
            fields.extend(sections);
        }
        Json::Obj(fields)
    }

    /// Write the rendered JSON to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.to_json().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_every_section() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("c".into(), 7);
        snap.gauges.insert("g".into(), 0.5);
        let mut h = crate::hist::LogHistogram::new();
        h.record(4.0);
        snap.histograms.insert("h".into(), h.summary());
        snap.spans.insert(
            "train".into(),
            SpanAgg {
                count: 2,
                total_ns: 4_000_000,
            },
        );
        let report = RunReport::new("unit", 42, Json::obj(vec![("k", Json::U64(1))]), snap);
        assert_eq!(report.stage_ms("train"), Some(4.0));
        assert_eq!(report.stage_ms("absent"), None);
        assert_eq!(report.histogram("h").unwrap().count, 1);
        let text = report.to_json().render();
        for key in [
            "\"schema_version\":1",
            "\"name\":\"unit\"",
            "\"seed\":42",
            "\"config\":{\"k\":1}",
            "\"train\":{\"count\":2,\"total_ns\":4000000,\"mean_ns\":2000000}",
            "\"c\":7",
            "\"g\":0.5",
            "\"p50\":4",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
