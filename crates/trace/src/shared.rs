//! [`SharedRecorder`] — a cloneable, thread-safe sink for worker pools
//! (ISSUE 5).
//!
//! The ambient recorder ([`crate::set_recorder`] / [`crate::with_recorder`])
//! is deliberately per-thread: the pipeline is single-threaded at stage
//! granularity, so an `Rc` sink with `RefCell` state keeps the hot path
//! lock-free. That breaks down the moment work fans out — `darkside-serve`
//! advances sessions on a pool of decode workers, and any
//! `decode.frame.ns` samples those workers emit through the ambient API
//! used to land in their threads' default [`crate::NullRecorder`] and
//! vanish.
//!
//! `SharedRecorder` closes the gap without touching the single-threaded
//! fast path: one `Mutex`-guarded aggregate shared by every clone of the
//! handle. Each worker installs a clone as its thread's ambient sink
//! (cheap: an `Arc` bump) via [`SharedRecorder::scoped`], and every event
//! from every thread aggregates into the same [`MetricsSnapshot`] — so a
//! 4-worker run assembles one complete `RunReport`, losing no counters
//! (pinned by `tests/shared_recorder.rs`).
//!
//! Span accounting across threads: name-stack matching (what
//! [`crate::MemoryRecorder`] does) is meaningless when enters/exits from
//! different threads interleave, so the shared sink checks balance with a
//! global open-span count only — an exit with nothing open anywhere counts
//! as unbalanced, interleaved-but-balanced nesting does not.

use crate::hist::LogHistogram;
use crate::recorder::Recorder;
use crate::report::{MetricsSnapshot, SpanAgg};
use crate::window::{
    TelemetrySnapshot, WindowConfig, WindowRate, WindowedCounter, WindowedHistogram, WindowedView,
};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// One counter: cumulative total plus (when windows are enabled) its
/// sliding-window ring. Keeping both halves in one cell means the hot path
/// pays a single map descent per event — and, after the first event under a
/// name, zero allocations (the `entry(name.to_string())` idiom would
/// allocate a key per event just to throw it away on the hit path).
#[derive(Clone)]
struct CounterCell {
    total: u64,
    window: Option<WindowedCounter>,
}

/// One histogram: cumulative [`LogHistogram`] plus its optional window ring.
#[derive(Clone)]
struct HistCell {
    total: LogHistogram,
    window: Option<WindowedHistogram>,
}

#[derive(Clone, Default)]
struct SharedState {
    /// `Some` when this recorder maintains sliding windows (ISSUE 9);
    /// cells created while it is `Some` carry a window half.
    window_cfg: Option<WindowConfig>,
    counters: BTreeMap<String, CounterCell>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistCell>,
    spans: BTreeMap<String, SpanAgg>,
    open_spans: u64,
    unbalanced_closes: u64,
}

/// A thread-safe aggregating recorder handle. Cloning shares the underlying
/// aggregate; install a clone per worker thread with
/// [`SharedRecorder::scoped`] and snapshot the union from any handle.
#[derive(Clone, Default)]
pub struct SharedRecorder {
    state: Arc<Mutex<SharedState>>,
}

impl SharedRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder whose counters and histograms also maintain a sliding
    /// window view under `cfg` (ISSUE 9). The windowed path adds one ring
    /// update per event inside the map cell the cumulative update already
    /// descended to; recorders built with [`SharedRecorder::new`] pay
    /// nothing.
    pub fn windowed(cfg: WindowConfig) -> Self {
        let recorder = Self::default();
        recorder.lock().window_cfg = Some(cfg);
        recorder
    }

    /// The window geometry, if this recorder was built with
    /// [`SharedRecorder::windowed`] (or adopted windows via
    /// [`SharedRecorder::absorb`]).
    pub fn window_config(&self) -> Option<WindowConfig> {
        self.lock().window_cfg
    }

    /// Point-in-time [`TelemetrySnapshot`]: the cumulative aggregate plus
    /// the live window view (when windows are enabled).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let now = crate::now_ns();
        let s = self.lock();
        TelemetrySnapshot {
            at_ns: now,
            cumulative: s.snapshot(),
            windowed: s.window_cfg.map(|cfg| s.windowed_view(now, cfg)),
        }
    }

    /// Run `f` on the **current** thread with a clone of this handle
    /// installed as the ambient sink (restored after, panic-safe). Worker
    /// threads call this at the top of their run loop:
    ///
    /// ```
    /// use darkside_trace::SharedRecorder;
    ///
    /// let shared = SharedRecorder::new();
    /// std::thread::scope(|s| {
    ///     for w in 0..4 {
    ///         let shared = shared.clone();
    ///         s.spawn(move || {
    ///             shared.scoped(|| darkside_trace::counter("work", w));
    ///         });
    ///     }
    /// });
    /// assert_eq!(shared.snapshot().counters["work"], 0 + 1 + 2 + 3);
    /// ```
    pub fn scoped<T>(&self, f: impl FnOnce() -> T) -> T {
        crate::with_recorder(Rc::new(self.clone()), f)
    }

    /// The aggregated union of everything every clone has recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().snapshot()
    }

    /// Spans currently open across all threads.
    pub fn open_spans(&self) -> u64 {
        self.lock().open_spans
    }

    /// Record `n` identical samples under `name` with a single lock
    /// acquisition — the sharded scheduler's per-frame latency estimate
    /// (`batch elapsed / frames scored`, weighted by frames) without `n`
    /// mutex round-trips on the hot path (ISSUE 7).
    pub fn sample_n(&self, name: &str, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let mut s = self.lock();
        let s = &mut *s;
        // The clock read only matters for window-slot placement; plain
        // recorders skip it.
        let now = s.window_cfg.is_some().then(crate::now_ns);
        if let Some(cell) = s.histograms.get_mut(name) {
            cell.total.record_n(value, n);
            match (&mut cell.window, now, s.window_cfg) {
                (Some(w), Some(now), _) => w.record_n(now, value, n),
                // A cell created before this recorder adopted windows
                // (plain recorder that absorbed a windowed shard) grows its
                // ring on the next event.
                (w @ None, Some(now), Some(cfg)) => {
                    let mut ring = WindowedHistogram::new(cfg);
                    ring.record_n(now, value, n);
                    *w = Some(ring);
                }
                _ => {}
            }
            return;
        }
        let mut total = LogHistogram::new();
        total.record_n(value, n);
        let window = s.window_cfg.map(|cfg| {
            let mut ring = WindowedHistogram::new(cfg);
            ring.record_n(now.unwrap_or(0), value, n);
            ring
        });
        s.histograms
            .insert(name.to_string(), HistCell { total, window });
    }

    /// A clone of the named histogram, if any samples have been recorded.
    /// Shard histograms are cloned out and [`LogHistogram::merge`]d so the
    /// SLO admission reads one fleet-wide quantile from per-shard sinks.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.lock().histograms.get(name).map(|c| c.total.clone())
    }

    /// Samples recorded under `name` so far (0 when absent). Admission uses
    /// this to hold SLO enforcement until a warm-up's worth of evidence.
    pub fn sample_count(&self, name: &str) -> u64 {
        self.lock()
            .histograms
            .get(name)
            .map_or(0, |c| c.total.count())
    }

    /// Nearest-rank quantile of the named histogram, `None` until a sample
    /// exists under `name`.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.lock()
            .histograms
            .get(name)
            .map(|c| c.total.quantile(q))
    }

    /// Fold everything `other` has recorded into this aggregate: counters
    /// add, gauges take `other`'s value, histograms [`LogHistogram::merge`],
    /// span durations accumulate. `other`'s state is cloned out before this
    /// aggregate locks, so absorbing a shard's recorder can never deadlock
    /// against a worker still recording into either side.
    pub fn absorb(&self, other: &SharedRecorder) {
        let theirs = other.lock().clone();
        let mut mine = self.lock();
        // Windows: adopt the geometry on first absorb, merge slot-for-slot
        // when it matches (mismatched geometry is skipped — merging unequal
        // slot widths would not be exact).
        if mine.window_cfg.is_none() {
            mine.window_cfg = theirs.window_cfg;
        }
        let cfg = mine.window_cfg;
        for (k, c) in theirs.counters {
            match mine.counters.get_mut(&k) {
                Some(cell) => {
                    cell.total += c.total;
                    match (&mut cell.window, c.window) {
                        (Some(w), Some(tw)) => w.merge_from(&tw),
                        (w @ None, Some(tw)) if Some(tw.config()) == cfg => *w = Some(tw),
                        _ => {}
                    }
                }
                None => {
                    let keep = c.window.filter(|w| Some(w.config()) == cfg);
                    mine.counters.insert(
                        k,
                        CounterCell {
                            total: c.total,
                            window: keep,
                        },
                    );
                }
            }
        }
        mine.gauges.extend(theirs.gauges);
        for (k, h) in theirs.histograms {
            match mine.histograms.get_mut(&k) {
                Some(cell) => {
                    cell.total.merge(&h.total);
                    match (&mut cell.window, h.window) {
                        (Some(w), Some(tw)) => w.merge_from(&tw),
                        (w @ None, Some(tw)) if Some(tw.config()) == cfg => *w = Some(tw),
                        _ => {}
                    }
                }
                None => {
                    let keep = h.window.filter(|w| Some(w.config()) == cfg);
                    mine.histograms.insert(
                        k,
                        HistCell {
                            total: h.total,
                            window: keep,
                        },
                    );
                }
            }
        }
        for (k, a) in theirs.spans {
            let agg = mine.spans.entry(k).or_default();
            agg.count += a.count;
            agg.total_ns += a.total_ns;
        }
        mine.open_spans += theirs.open_spans;
        mine.unbalanced_closes += theirs.unbalanced_closes;
    }

    /// Exits observed with no span open anywhere (see module docs).
    pub fn unbalanced_closes(&self) -> u64 {
        self.lock().unbalanced_closes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedState> {
        // A worker that panicked mid-record leaves at worst a half-updated
        // aggregate; keep serving the remaining threads rather than
        // cascading the poison.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl SharedState {
    fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.total))
            .collect();
        if self.unbalanced_closes > 0 {
            counters.insert("trace.unbalanced_closes".into(), self.unbalanced_closes);
        }
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.total.summary()))
                .collect(),
            spans: self.spans.clone(),
        }
    }

    /// The live window view over every cell that carries a ring.
    fn windowed_view(&self, now_ns: u64, cfg: WindowConfig) -> WindowedView {
        WindowedView {
            span_ns: cfg.span_ns(),
            counters: self
                .counters
                .iter()
                .filter_map(|(k, c)| {
                    let w = c.window.as_ref()?;
                    Some((
                        k.clone(),
                        WindowRate {
                            total: w.total(now_ns),
                            per_sec: w.per_sec(now_ns),
                        },
                    ))
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(k, h)| {
                    let merged = h.window.as_ref()?.merged(now_ns);
                    (merged.count() > 0).then(|| (k.clone(), merged.summary()))
                })
                .collect(),
        }
    }
}

impl Recorder for SharedRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut s = self.lock();
        let s = &mut *s;
        let now = s.window_cfg.is_some().then(crate::now_ns);
        if let Some(cell) = s.counters.get_mut(name) {
            cell.total += delta;
            match (&mut cell.window, now, s.window_cfg) {
                (Some(w), Some(now), _) => w.add(now, delta),
                (w @ None, Some(now), Some(cfg)) => {
                    let mut ring = WindowedCounter::new(cfg);
                    ring.add(now, delta);
                    *w = Some(ring);
                }
                _ => {}
            }
            return;
        }
        let window = s.window_cfg.map(|cfg| {
            let mut ring = WindowedCounter::new(cfg);
            ring.add(now.unwrap_or(0), delta);
            ring
        });
        s.counters.insert(
            name.to_string(),
            CounterCell {
                total: delta,
                window,
            },
        );
    }

    fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    fn sample(&self, name: &str, value: f64) {
        self.sample_n(name, value, 1);
    }

    fn span_enter(&self, _name: &str, _depth: usize, _start_ns: u64) {
        self.lock().open_spans += 1;
    }

    fn span_exit(&self, name: &str, _depth: usize, start_ns: u64, end_ns: u64) {
        let mut s = self.lock();
        match s.open_spans.checked_sub(1) {
            Some(left) => s.open_spans = left,
            None => s.unbalanced_closes += 1,
        }
        let agg = s.spans.entry(name.to_string()).or_default();
        agg.count += 1;
        agg.total_ns += end_ns.saturating_sub(start_ns);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(SharedRecorder::snapshot(self))
    }

    fn telemetry(&self) -> Option<TelemetrySnapshot> {
        Some(self.telemetry_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_aggregate() {
        let a = SharedRecorder::new();
        let b = a.clone();
        a.counter("c", 2);
        b.counter("c", 3);
        b.gauge("g", 1.5);
        a.sample("h", 10.0);
        let snap = b.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 1.5);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn scoped_installs_on_the_current_thread_and_restores() {
        let shared = SharedRecorder::new();
        assert!(!crate::active());
        shared.scoped(|| {
            assert!(crate::active());
            crate::counter("c", 7);
            let _s = crate::span!("s");
        });
        assert!(!crate::active());
        let snap = shared.snapshot();
        assert_eq!(snap.counters["c"], 7);
        assert_eq!(snap.spans["s"].count, 1);
        assert_eq!(shared.open_spans(), 0);
        assert_eq!(shared.unbalanced_closes(), 0);
    }

    #[test]
    fn quantile_helpers_read_live_histograms() {
        let shared = SharedRecorder::new();
        assert_eq!(shared.quantile("h", 0.99), None);
        assert_eq!(shared.sample_count("h"), 0);
        shared.sample("h", 10.0);
        shared.sample_n("h", 1000.0, 3);
        shared.sample_n("h", 5.0, 0); // no-op
        assert_eq!(shared.sample_count("h"), 4);
        let p99 = shared.quantile("h", 0.99).unwrap();
        assert_eq!(p99, shared.histogram("h").unwrap().quantile(0.99));
        assert!(
            p99 >= 1000.0 * 0.8,
            "p99 {p99} should sit in the top bucket"
        );
    }

    #[test]
    fn absorb_unions_counters_histograms_and_spans() {
        let fleet = SharedRecorder::new();
        let shard = SharedRecorder::new();
        fleet.counter("c", 1);
        shard.counter("c", 4);
        shard.gauge("g", 2.5);
        shard.sample_n("h", 50.0, 2);
        shard.span_enter("s", 0, 0);
        shard.span_exit("s", 0, 0, 30);
        fleet.absorb(&shard);
        fleet.absorb(&SharedRecorder::new()); // empty absorb is a no-op
        let snap = fleet.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2.5);
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.spans["s"].count, 1);
        assert_eq!(snap.spans["s"].total_ns, 30);
        // The shard's own aggregate is untouched.
        assert_eq!(shard.snapshot().counters["c"], 4);
    }

    #[test]
    fn windowed_recorder_tracks_live_and_cumulative_views() {
        let cfg = WindowConfig::new(u64::MAX / 2, 2); // nothing expires mid-test
        let windowed = SharedRecorder::windowed(cfg);
        assert_eq!(windowed.window_config(), Some(cfg));
        windowed.counter("c", 4);
        windowed.sample_n("h", 100.0, 3);
        let t = windowed.telemetry_snapshot();
        assert_eq!(t.cumulative.counters["c"], 4);
        let w = t.windowed.expect("windows enabled");
        assert_eq!(w.counters["c"].total, 4);
        assert_eq!(w.histograms["h"].count, 3);

        // Plain recorders report no windowed side …
        let plain = SharedRecorder::new();
        assert_eq!(plain.window_config(), None);
        plain.counter("c", 1);
        assert!(plain.telemetry_snapshot().windowed.is_none());
        // … but adopt windows from the first windowed shard they absorb,
        // and slot-merge subsequent ones.
        plain.absorb(&windowed);
        let second = SharedRecorder::windowed(cfg);
        second.counter("c", 5);
        plain.absorb(&second);
        let t = plain.telemetry_snapshot();
        assert_eq!(t.cumulative.counters["c"], 10);
        assert_eq!(t.windowed.expect("adopted").counters["c"].total, 9);
    }

    #[test]
    fn exit_without_enter_counts_as_unbalanced() {
        let shared = SharedRecorder::new();
        shared.span_exit("ghost", 1, 0, 10);
        assert_eq!(shared.unbalanced_closes(), 1);
        assert_eq!(shared.snapshot().counters["trace.unbalanced_closes"], 1);
        // The duration still aggregates for post-mortem use.
        assert_eq!(shared.snapshot().spans["ghost"].count, 1);
    }
}
