//! [`SharedRecorder`] — a cloneable, thread-safe sink for worker pools
//! (ISSUE 5).
//!
//! The ambient recorder ([`crate::set_recorder`] / [`crate::with_recorder`])
//! is deliberately per-thread: the pipeline is single-threaded at stage
//! granularity, so an `Rc` sink with `RefCell` state keeps the hot path
//! lock-free. That breaks down the moment work fans out — `darkside-serve`
//! advances sessions on a pool of decode workers, and any
//! `decode.frame.ns` samples those workers emit through the ambient API
//! used to land in their threads' default [`crate::NullRecorder`] and
//! vanish.
//!
//! `SharedRecorder` closes the gap without touching the single-threaded
//! fast path: one `Mutex`-guarded aggregate shared by every clone of the
//! handle. Each worker installs a clone as its thread's ambient sink
//! (cheap: an `Arc` bump) via [`SharedRecorder::scoped`], and every event
//! from every thread aggregates into the same [`MetricsSnapshot`] — so a
//! 4-worker run assembles one complete `RunReport`, losing no counters
//! (pinned by `tests/shared_recorder.rs`).
//!
//! Span accounting across threads: name-stack matching (what
//! [`crate::MemoryRecorder`] does) is meaningless when enters/exits from
//! different threads interleave, so the shared sink checks balance with a
//! global open-span count only — an exit with nothing open anywhere counts
//! as unbalanced, interleaved-but-balanced nesting does not.

use crate::hist::LogHistogram;
use crate::recorder::Recorder;
use crate::report::{MetricsSnapshot, SpanAgg};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct SharedState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    spans: BTreeMap<String, SpanAgg>,
    open_spans: u64,
    unbalanced_closes: u64,
}

/// A thread-safe aggregating recorder handle. Cloning shares the underlying
/// aggregate; install a clone per worker thread with
/// [`SharedRecorder::scoped`] and snapshot the union from any handle.
#[derive(Clone, Default)]
pub struct SharedRecorder {
    state: Arc<Mutex<SharedState>>,
}

impl SharedRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` on the **current** thread with a clone of this handle
    /// installed as the ambient sink (restored after, panic-safe). Worker
    /// threads call this at the top of their run loop:
    ///
    /// ```
    /// use darkside_trace::SharedRecorder;
    ///
    /// let shared = SharedRecorder::new();
    /// std::thread::scope(|s| {
    ///     for w in 0..4 {
    ///         let shared = shared.clone();
    ///         s.spawn(move || {
    ///             shared.scoped(|| darkside_trace::counter("work", w));
    ///         });
    ///     }
    /// });
    /// assert_eq!(shared.snapshot().counters["work"], 0 + 1 + 2 + 3);
    /// ```
    pub fn scoped<T>(&self, f: impl FnOnce() -> T) -> T {
        crate::with_recorder(Rc::new(self.clone()), f)
    }

    /// The aggregated union of everything every clone has recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().snapshot()
    }

    /// Spans currently open across all threads.
    pub fn open_spans(&self) -> u64 {
        self.lock().open_spans
    }

    /// Record `n` identical samples under `name` with a single lock
    /// acquisition — the sharded scheduler's per-frame latency estimate
    /// (`batch elapsed / frames scored`, weighted by frames) without `n`
    /// mutex round-trips on the hot path (ISSUE 7).
    pub fn sample_n(&self, name: &str, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record_n(value, n);
    }

    /// A clone of the named histogram, if any samples have been recorded.
    /// Shard histograms are cloned out and [`LogHistogram::merge`]d so the
    /// SLO admission reads one fleet-wide quantile from per-shard sinks.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Samples recorded under `name` so far (0 when absent). Admission uses
    /// this to hold SLO enforcement until a warm-up's worth of evidence.
    pub fn sample_count(&self, name: &str) -> u64 {
        self.lock().histograms.get(name).map_or(0, |h| h.count())
    }

    /// Nearest-rank quantile of the named histogram, `None` until a sample
    /// exists under `name`.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.lock().histograms.get(name).map(|h| h.quantile(q))
    }

    /// Fold everything `other` has recorded into this aggregate: counters
    /// add, gauges take `other`'s value, histograms [`LogHistogram::merge`],
    /// span durations accumulate. `other`'s state is cloned out before this
    /// aggregate locks, so absorbing a shard's recorder can never deadlock
    /// against a worker still recording into either side.
    pub fn absorb(&self, other: &SharedRecorder) {
        let theirs = {
            let s = other.lock();
            SharedState {
                counters: s.counters.clone(),
                gauges: s.gauges.clone(),
                histograms: s.histograms.clone(),
                spans: s.spans.clone(),
                open_spans: s.open_spans,
                unbalanced_closes: s.unbalanced_closes,
            }
        };
        let mut mine = self.lock();
        for (k, v) in theirs.counters {
            *mine.counters.entry(k).or_insert(0) += v;
        }
        mine.gauges.extend(theirs.gauges);
        for (k, h) in theirs.histograms {
            mine.histograms.entry(k).or_default().merge(&h);
        }
        for (k, a) in theirs.spans {
            let agg = mine.spans.entry(k).or_default();
            agg.count += a.count;
            agg.total_ns += a.total_ns;
        }
        mine.open_spans += theirs.open_spans;
        mine.unbalanced_closes += theirs.unbalanced_closes;
    }

    /// Exits observed with no span open anywhere (see module docs).
    pub fn unbalanced_closes(&self) -> u64 {
        self.lock().unbalanced_closes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedState> {
        // A worker that panicked mid-record leaves at worst a half-updated
        // aggregate; keep serving the remaining threads rather than
        // cascading the poison.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl SharedState {
    fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        if self.unbalanced_closes > 0 {
            counters.insert("trace.unbalanced_closes".into(), self.unbalanced_closes);
        }
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            spans: self.spans.clone(),
        }
    }
}

impl Recorder for SharedRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut s = self.lock();
        *s.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    fn sample(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn span_enter(&self, _name: &str, _depth: usize, _start_ns: u64) {
        self.lock().open_spans += 1;
    }

    fn span_exit(&self, name: &str, _depth: usize, start_ns: u64, end_ns: u64) {
        let mut s = self.lock();
        match s.open_spans.checked_sub(1) {
            Some(left) => s.open_spans = left,
            None => s.unbalanced_closes += 1,
        }
        let agg = s.spans.entry(name.to_string()).or_default();
        agg.count += 1;
        agg.total_ns += end_ns.saturating_sub(start_ns);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(SharedRecorder::snapshot(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_aggregate() {
        let a = SharedRecorder::new();
        let b = a.clone();
        a.counter("c", 2);
        b.counter("c", 3);
        b.gauge("g", 1.5);
        a.sample("h", 10.0);
        let snap = b.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 1.5);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn scoped_installs_on_the_current_thread_and_restores() {
        let shared = SharedRecorder::new();
        assert!(!crate::active());
        shared.scoped(|| {
            assert!(crate::active());
            crate::counter("c", 7);
            let _s = crate::span!("s");
        });
        assert!(!crate::active());
        let snap = shared.snapshot();
        assert_eq!(snap.counters["c"], 7);
        assert_eq!(snap.spans["s"].count, 1);
        assert_eq!(shared.open_spans(), 0);
        assert_eq!(shared.unbalanced_closes(), 0);
    }

    #[test]
    fn quantile_helpers_read_live_histograms() {
        let shared = SharedRecorder::new();
        assert_eq!(shared.quantile("h", 0.99), None);
        assert_eq!(shared.sample_count("h"), 0);
        shared.sample("h", 10.0);
        shared.sample_n("h", 1000.0, 3);
        shared.sample_n("h", 5.0, 0); // no-op
        assert_eq!(shared.sample_count("h"), 4);
        let p99 = shared.quantile("h", 0.99).unwrap();
        assert_eq!(p99, shared.histogram("h").unwrap().quantile(0.99));
        assert!(
            p99 >= 1000.0 * 0.8,
            "p99 {p99} should sit in the top bucket"
        );
    }

    #[test]
    fn absorb_unions_counters_histograms_and_spans() {
        let fleet = SharedRecorder::new();
        let shard = SharedRecorder::new();
        fleet.counter("c", 1);
        shard.counter("c", 4);
        shard.gauge("g", 2.5);
        shard.sample_n("h", 50.0, 2);
        shard.span_enter("s", 0, 0);
        shard.span_exit("s", 0, 0, 30);
        fleet.absorb(&shard);
        fleet.absorb(&SharedRecorder::new()); // empty absorb is a no-op
        let snap = fleet.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2.5);
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.spans["s"].count, 1);
        assert_eq!(snap.spans["s"].total_ns, 30);
        // The shard's own aggregate is untouched.
        assert_eq!(shard.snapshot().counters["c"], 4);
    }

    #[test]
    fn exit_without_enter_counts_as_unbalanced() {
        let shared = SharedRecorder::new();
        shared.span_exit("ghost", 1, 0, 10);
        assert_eq!(shared.unbalanced_closes(), 1);
        assert_eq!(shared.snapshot().counters["trace.unbalanced_closes"], 1);
        // The duration still aggregates for post-mortem use.
        assert_eq!(shared.snapshot().spans["ghost"].count, 1);
    }
}
