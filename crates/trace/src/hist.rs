//! Log-bucketed histograms for latency/effort distributions.
//!
//! Buckets are geometric with [`BUCKETS_PER_OCTAVE`] sub-buckets per power
//! of two, so the relative error of any reported quantile is bounded by one
//! bucket width (`2^(1/4) ≈ 19 %`) while storage stays a fixed few hundred
//! counters regardless of sample count — the same trade HdrHistogram makes.
//! Quantiles are nearest-rank over the bucket counts, clamped to the
//! observed `[min, max]` (the median/MAD discipline of
//! `darkside_bench::harness` picks robust central values; this adds the
//! tail view — p95/p99/max — that means and medians both hide, which is
//! exactly the per-frame distribution the paper's Figs. 5–7 argue from).

use crate::json::Json;

/// Geometric sub-buckets per power of two (bucket width `2^(1/4)`).
pub const BUCKETS_PER_OCTAVE: usize = 4;

/// Bucket 0 holds everything in `[0, 1]`; the rest cover `(1, 2^64)` in
/// `BUCKETS_PER_OCTAVE` steps per octave, plus one catch-all at the top.
const NUM_BUCKETS: usize = 64 * BUCKETS_PER_OCTAVE + 2;

/// Index of the bucket holding `v` (NaN and negatives clamp to bucket 0).
fn bucket_of(v: f64) -> usize {
    if v.is_nan() || v <= 1.0 {
        return 0;
    }
    let idx = (v.log2() * BUCKETS_PER_OCTAVE as f64).floor() as usize + 1;
    idx.min(NUM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        2f64.powf((i - 1) as f64 / BUCKETS_PER_OCTAVE as f64)
    }
}

/// Exclusive upper bound of bucket `i` (bucket 0's is inclusive at 1).
pub fn bucket_upper(i: usize) -> f64 {
    2f64.powf(i as f64 / BUCKETS_PER_OCTAVE as f64)
}

/// A fixed-size log-bucketed histogram over non-negative samples.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample (negatives and NaN clamp to 0).
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples in one bucket update — what a batched
    /// per-frame latency estimate uses (`elapsed / frames` recorded once per
    /// frame scored) so quantiles weight by frames, not by batches, without
    /// `n` lock round-trips upstream (ISSUE 7 sharded serving).
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let v = if v.is_nan() { 0.0 } else { v.max(0.0) };
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum += v * n as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Buckets are identical by
    /// construction (fixed geometry), so merging is exact: the result is as
    /// if every sample of `other` had been recorded here. This is how the
    /// sharded scheduler reads one fleet-wide `serve.frame.ns` p99 from
    /// per-shard recorders without a shared hot-path mutex (ISSUE 7).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw per-bucket counts (fixed geometry, see [`bucket_lower`]).
    /// Two histograms over the same samples have identical bucket counts
    /// regardless of recording order — the exactness the windowed-metrics
    /// oracle tests pin — whereas the float `sum` is order-sensitive in its
    /// last bits.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate, `q ∈ [0, 1]`. The result lies within
    /// the bounds of the bucket holding the rank-`⌈q·n⌉` sample and within
    /// the observed `[min, max]` (property-tested in `tests/hist_prop.rs`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// The fixed quantile set reports carry (schema of the `histograms` section
/// of a `RunReport`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl HistogramSummary {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.into()),
            ("min", self.min.into()),
            ("max", self.max.into()),
            ("mean", self.mean.into()),
            ("p50", self.p50.into()),
            ("p95", self.p95.into()),
            ("p99", self.p99.into()),
        ])
    }
}

/// Exact nearest-rank percentile of an unsorted sample set (the reference
/// the histogram is tested against, and what `LevelReport` uses where the
/// full sample vector is already in hand).
pub fn exact_percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!((s.min, s.max, s.mean, s.p50), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(37.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 37.0, "q={q}");
        }
        assert_eq!(h.min(), 37.0);
        assert_eq!(h.max(), 37.0);
    }

    #[test]
    fn nan_and_negative_samples_clamp_to_zero() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(-5.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for (i, v) in [3.0, 900.0, 42.5, 0.0, 7e6, 13.0, 77.0].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*v);
            whole.record(*v);
        }
        a.merge(&b);
        a.merge(&LogHistogram::new()); // empty merge is a no-op
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn record_n_weights_like_n_records() {
        let mut batched = LogHistogram::new();
        batched.record_n(5.0, 3);
        batched.record_n(100.0, 1);
        batched.record_n(17.0, 0); // no-op
        let mut loose = LogHistogram::new();
        for v in [5.0, 5.0, 5.0, 100.0] {
            loose.record(v);
        }
        assert_eq!(batched.count(), loose.count());
        assert_eq!(batched.mean(), loose.mean());
        assert_eq!(batched.quantile(0.5), loose.quantile(0.5));
        assert_eq!(batched.quantile(0.99), loose.quantile(0.99));
    }

    #[test]
    fn exact_percentile_nearest_rank() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(exact_percentile(&v, 0.0), 10.0);
        assert_eq!(exact_percentile(&v, 0.5), 20.0);
        assert_eq!(exact_percentile(&v, 0.75), 30.0);
        assert_eq!(exact_percentile(&v, 1.0), 40.0);
        assert_eq!(exact_percentile(&[], 0.5), 0.0);
    }
}
