//! Windowed metrics and the live [`TelemetrySnapshot`] (ISSUE 9 tentpole).
//!
//! The PR 4 trace layer is cumulative: a counter or [`LogHistogram`] only
//! ever grows, and the numbers mean something *after* the run, in a
//! `RunReport`. A serving fleet needs the complementary view — "what
//! happened in the last N seconds" — cheap enough to sit on the shard hot
//! path and snapshotable at any instant.
//!
//! The mechanism is a **ring of sub-windows**: time (the shared
//! [`crate::now_ns`] epoch) is cut into fixed `slot_ns`-wide slots, and a
//! window keeps the most recent `slots` of them in a ring buffer. Recording
//! indexes the ring by absolute slot number (`now_ns / slot_ns`), lazily
//! reclaiming whatever expired slot occupied that position; reading merges
//! the slots that are still live relative to the caller's `now`. Memory is
//! O(`slots`) per metric regardless of traffic, and because
//! [`LogHistogram::merge`] is exact, the merged window view is *exactly*
//! the histogram of every sample recorded in the live slots (pinned against
//! a brute-force sliding-window oracle in the tests below).
//!
//! Two consequences of the slot granularity, by design:
//! * the merged view covers between `slots-1` and `slots` slot-widths of
//!   history (the current slot is partially filled) — the standard
//!   ring-buffer approximation;
//! * slot numbers are absolute (shared process epoch), so windows recorded
//!   on different shards merge slot-for-slot ([`WindowedHistogram::merge_from`])
//!   and the fleet-wide window is exact too.

use crate::hist::{HistogramSummary, LogHistogram};
use crate::json::Json;
use crate::report::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version stamp written into every [`TelemetrySnapshot::to_json`] (the
/// `RunReport` convention: consumers check it before trusting field shapes).
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// Sentinel slot number for an empty ring position. A real slot at
/// `u64::MAX` would need a ~584-year uptime at ns resolution.
const EMPTY: u64 = u64::MAX;

/// Geometry of a sliding window: `slots` ring positions of `slot_ns` each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    slot_ns: u64,
    slots: usize,
}

impl WindowConfig {
    /// `slots` ring positions of `slot_ns` nanoseconds each (both clamped
    /// to at least 1).
    pub fn new(slot_ns: u64, slots: usize) -> Self {
        Self {
            slot_ns: slot_ns.max(1),
            slots: slots.max(1),
        }
    }

    /// A window spanning roughly `seconds`, cut into `slots` slots.
    pub fn of_seconds(seconds: f64, slots: usize) -> Self {
        let slots = slots.max(1);
        let span_ns = (seconds.max(1e-9) * 1e9) as u64;
        Self::new((span_ns / slots as u64).max(1), slots)
    }

    pub fn slot_ns(&self) -> u64 {
        self.slot_ns
    }

    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Total history the ring can hold, in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.slot_ns.saturating_mul(self.slots as u64)
    }

    fn slot_index(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns
    }

    /// Is a slot numbered `si` still inside the window at `now_si`?
    /// Future slots (a merge source slightly ahead of the reader) count as
    /// live rather than vanishing.
    fn live(&self, si: u64, now_si: u64) -> bool {
        si != EMPTY && now_si.saturating_sub(si) < self.slots as u64
    }
}

impl Default for WindowConfig {
    /// 8 × 1 s slots: the merged view covers the last 7–8 seconds.
    fn default() -> Self {
        Self::new(1_000_000_000, 8)
    }
}

/// A counter with a "last N seconds" view: [`add`](Self::add) deltas land
/// in the current slot, [`total`](Self::total) sums the live slots.
#[derive(Clone, Debug)]
pub struct WindowedCounter {
    cfg: WindowConfig,
    slots: Vec<(u64, u64)>,
}

impl WindowedCounter {
    pub fn new(cfg: WindowConfig) -> Self {
        Self {
            cfg,
            slots: vec![(EMPTY, 0); cfg.slots],
        }
    }

    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    pub fn add(&mut self, now_ns: u64, delta: u64) {
        let si = self.cfg.slot_index(now_ns);
        let pos = (si % self.cfg.slots as u64) as usize;
        let slot = &mut self.slots[pos];
        if slot.0 != si {
            *slot = (si, 0);
        }
        slot.1 += delta;
    }

    /// Sum of deltas recorded in slots still live at `now_ns`.
    pub fn total(&self, now_ns: u64) -> u64 {
        let now_si = self.cfg.slot_index(now_ns);
        self.slots
            .iter()
            .filter(|(si, _)| self.cfg.live(*si, now_si))
            .map(|(_, v)| v)
            .sum()
    }

    /// Window total normalized by the window span — the live event rate.
    pub fn per_sec(&self, now_ns: u64) -> f64 {
        self.total(now_ns) as f64 * 1e9 / self.cfg.span_ns() as f64
    }

    /// Fold another ring into this one, slot-for-slot (absolute slot
    /// numbers align because both sides share the process epoch). Rings
    /// with a different geometry are ignored — merging buckets of unequal
    /// width would not be exact.
    pub fn merge_from(&mut self, other: &WindowedCounter) {
        if other.cfg != self.cfg {
            return;
        }
        for &(si, v) in &other.slots {
            if si == EMPTY {
                continue;
            }
            let pos = (si % self.cfg.slots as u64) as usize;
            let slot = &mut self.slots[pos];
            if slot.0 == si {
                slot.1 += v;
            } else if slot.0 == EMPTY || slot.0 < si {
                // Same ring position, different slot number ⇒ the numbers
                // differ by ≥ `slots`, so the smaller one is expired
                // relative to the larger one's time.
                *slot = (si, v);
            }
        }
    }
}

/// A [`LogHistogram`] with a "last N seconds" view: samples land in the
/// current slot's histogram, [`merged`](Self::merged) folds the live slots
/// into one exact window histogram.
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    cfg: WindowConfig,
    slots: Vec<(u64, LogHistogram)>,
}

impl WindowedHistogram {
    pub fn new(cfg: WindowConfig) -> Self {
        Self {
            cfg,
            slots: vec![(EMPTY, LogHistogram::new()); cfg.slots],
        }
    }

    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    pub fn record(&mut self, now_ns: u64, value: f64) {
        self.record_n(now_ns, value, 1);
    }

    pub fn record_n(&mut self, now_ns: u64, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let si = self.cfg.slot_index(now_ns);
        let pos = (si % self.cfg.slots as u64) as usize;
        let slot = &mut self.slots[pos];
        if slot.0 != si {
            *slot = (si, LogHistogram::new());
        }
        slot.1.record_n(value, n);
    }

    /// The exact histogram of every sample recorded in slots still live at
    /// `now_ns` (an empty histogram once everything has expired).
    pub fn merged(&self, now_ns: u64) -> LogHistogram {
        let now_si = self.cfg.slot_index(now_ns);
        let mut out = LogHistogram::new();
        for (si, h) in &self.slots {
            if self.cfg.live(*si, now_si) {
                out.merge(h);
            }
        }
        out
    }

    /// Slot-for-slot fold of another ring (see
    /// [`WindowedCounter::merge_from`] for the alignment argument).
    pub fn merge_from(&mut self, other: &WindowedHistogram) {
        if other.cfg != self.cfg {
            return;
        }
        for (si, h) in &other.slots {
            if *si == EMPTY {
                continue;
            }
            let pos = (*si % self.cfg.slots as u64) as usize;
            let slot = &mut self.slots[pos];
            if slot.0 == *si {
                slot.1.merge(h);
            } else if slot.0 == EMPTY || slot.0 < *si {
                *slot = (*si, h.clone());
            }
        }
    }
}

/// Windowed view of one counter: live total and the implied rate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowRate {
    pub total: u64,
    pub per_sec: f64,
}

/// The windowed half of a [`TelemetrySnapshot`].
#[derive(Clone, Debug, Default)]
pub struct WindowedView {
    /// History the window spans, in nanoseconds.
    pub span_ns: u64,
    pub counters: BTreeMap<String, WindowRate>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// A point-in-time view of a recorder: the cumulative
/// [`MetricsSnapshot`] plus (when windows are enabled) the last-N-seconds
/// view of every counter and histogram. Schema-versioned like `RunReport`
/// ([`TELEMETRY_SCHEMA_VERSION`]); rendered as JSON for the JSONL event
/// stream and as Prometheus-style text for the scrape endpoint.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// [`crate::now_ns`] at snapshot time.
    pub at_ns: u64,
    pub cumulative: MetricsSnapshot,
    pub windowed: Option<WindowedView>,
}

impl TelemetrySnapshot {
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::U64(TELEMETRY_SCHEMA_VERSION)),
            ("at_ns", self.at_ns.into()),
            ("cumulative", self.cumulative.to_json()),
        ];
        if let Some(w) = &self.windowed {
            fields.push((
                "windowed",
                Json::obj(vec![
                    ("span_ns", w.span_ns.into()),
                    (
                        "counters",
                        Json::Obj(
                            w.counters
                                .iter()
                                .map(|(k, r)| {
                                    (
                                        k.clone(),
                                        Json::obj(vec![
                                            ("total", r.total.into()),
                                            ("per_sec", r.per_sec.into()),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "histograms",
                        Json::Obj(
                            w.histograms
                                .iter()
                                .map(|(k, h)| (k.clone(), h.to_json()))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Prometheus text-exposition rendering: cumulative counters as
    /// `<name>_total`, gauges bare, histogram summaries as
    /// `quantile`-labelled summary lines, spans as `_span_count` /
    /// `_span_ns_total`, and the windowed view with a `window="Ns"` label.
    /// Deterministic (BTreeMap order) — CI pins it against a golden file.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        render_prometheus(&mut out, &self.cumulative, &[]);
        if let Some(w) = &self.windowed {
            let secs = w.span_ns as f64 / 1e9;
            let window = format!("{secs}s");
            for (name, r) in &w.counters {
                let n = prom_name(name);
                let lbl = prom_labels(&[("window", &window)], None);
                let _ = writeln!(out, "{n}_window_total{lbl} {}", r.total);
                let _ = writeln!(out, "{n}_window_per_sec{lbl} {}", r.per_sec);
            }
            for (name, s) in &w.histograms {
                let n = prom_name(name);
                prom_summary(&mut out, &format!("{n}_window"), s, &[("window", &window)]);
            }
        }
        out
    }
}

/// Render one [`MetricsSnapshot`] as Prometheus text lines into `out`,
/// attaching `labels` to every sample. `# TYPE` comments are emitted only
/// for the unlabelled (fleet-wide) section so a multi-section exposition
/// (fleet + per-shard) never repeats them.
pub fn render_prometheus(out: &mut String, snap: &MetricsSnapshot, labels: &[(&str, &str)]) {
    let lbl = prom_labels(labels, None);
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        if labels.is_empty() {
            let _ = writeln!(out, "# TYPE {n}_total counter");
        }
        let _ = writeln!(out, "{n}_total{lbl} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        if labels.is_empty() {
            let _ = writeln!(out, "# TYPE {n} gauge");
        }
        let _ = writeln!(out, "{n}{lbl} {v}");
    }
    for (name, s) in &snap.histograms {
        let n = prom_name(name);
        if labels.is_empty() {
            let _ = writeln!(out, "# TYPE {n} summary");
        }
        prom_summary(out, &n, s, labels);
    }
    for (name, a) in &snap.spans {
        let n = prom_name(name);
        let _ = writeln!(out, "{n}_span_count{lbl} {}", a.count);
        let _ = writeln!(out, "{n}_span_ns_total{lbl} {}", a.total_ns);
    }
}

fn prom_summary(out: &mut String, base: &str, s: &HistogramSummary, labels: &[(&str, &str)]) {
    let plain = prom_labels(labels, None);
    for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
        let lbl = prom_labels(labels, Some(("quantile", q)));
        let _ = writeln!(out, "{base}{lbl} {v}");
    }
    let _ = writeln!(out, "{base}_count{plain} {}", s.count);
    let _ = writeln!(out, "{base}_min{plain} {}", s.min);
    let _ = writeln!(out, "{base}_max{plain} {}", s.max);
    let _ = writeln!(out, "{base}_mean{plain} {}", s.mean);
}

/// Dotted metric names to Prometheus identifiers:
/// `serve.frame.ns` → `darkside_serve_frame_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("darkside_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn prom_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — tiny deterministic rng for the property tests (the
    /// trace crate is dependency-free by contract).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn value(&mut self) -> f64 {
            // Log-uniform-ish over ~9 decades, exercising many buckets.
            (self.below(1_000_000_000) as f64) / 10.0
        }
    }

    /// Brute-force oracle: the histogram of exactly those events whose
    /// slot is live at `now` under the ring's slot arithmetic.
    fn oracle_hist(cfg: WindowConfig, events: &[(u64, f64)], now_ns: u64) -> LogHistogram {
        let now_si = cfg.slot_index(now_ns);
        let mut h = LogHistogram::new();
        for &(t, v) in events {
            if cfg.live(cfg.slot_index(t), now_si) {
                h.record(v);
            }
        }
        h
    }

    fn assert_hist_eq(a: &LogHistogram, b: &LogHistogram, ctx: &str) {
        assert_eq!(a.count(), b.count(), "count mismatch: {ctx}");
        assert_eq!(a.bucket_counts(), b.bucket_counts(), "buckets: {ctx}");
        if a.count() > 0 {
            assert_eq!(a.min(), b.min(), "min: {ctx}");
            assert_eq!(a.max(), b.max(), "max: {ctx}");
        }
    }

    #[test]
    fn windowed_histogram_matches_sliding_window_oracle() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        for case in 0..200u32 {
            let cfg = WindowConfig::new(1 + rng.below(40), 1 + rng.below(6) as usize);
            let mut w = WindowedHistogram::new(cfg);
            let mut events: Vec<(u64, f64)> = Vec::new();
            let mut t = rng.below(100);
            for _ in 0..rng.below(60) {
                t += rng.below(cfg.slot_ns() * 2);
                let v = rng.value();
                w.record(t, v);
                events.push((t, v));
                if rng.below(4) == 0 {
                    // Check mid-stream, sometimes strictly after the last
                    // event (reader ahead of the writer).
                    let now = t + rng.below(cfg.span_ns() + 1);
                    assert_hist_eq(
                        &w.merged(now),
                        &oracle_hist(cfg, &events, now),
                        &format!("case {case} t {t} now {now} cfg {cfg:?}"),
                    );
                }
            }
            // Far future: everything expired.
            let far = t + cfg.span_ns() + cfg.slot_ns();
            assert_eq!(w.merged(far).count(), 0, "case {case}: expiry");
        }
    }

    #[test]
    fn windowed_counter_matches_sliding_window_oracle() {
        let mut rng = Rng(0x0BAD_5EED_0BAD_5EED);
        for case in 0..200u32 {
            let cfg = WindowConfig::new(1 + rng.below(30), 1 + rng.below(5) as usize);
            let mut w = WindowedCounter::new(cfg);
            let mut events: Vec<(u64, u64)> = Vec::new();
            let mut t = 0u64;
            for _ in 0..rng.below(50) {
                t += rng.below(cfg.slot_ns() * 3);
                let d = rng.below(100);
                w.add(t, d);
                events.push((t, d));
                let now = t + rng.below(cfg.span_ns() + 1);
                let now_si = cfg.slot_index(now);
                let expect: u64 = events
                    .iter()
                    .filter(|(et, _)| cfg.live(cfg.slot_index(*et), now_si))
                    .map(|(_, d)| d)
                    .sum();
                assert_eq!(w.total(now), expect, "case {case} now {now} cfg {cfg:?}");
            }
            assert_eq!(w.total(t + cfg.span_ns() + cfg.slot_ns()), 0);
        }
    }

    #[test]
    fn shard_merge_equals_single_recorder() {
        let mut rng = Rng(0xD15E_A5E0_1234_5678);
        for case in 0..100u32 {
            let cfg = WindowConfig::new(1 + rng.below(20), 1 + rng.below(6) as usize);
            let mut single = WindowedHistogram::new(cfg);
            let mut a = WindowedHistogram::new(cfg);
            let mut b = WindowedHistogram::new(cfg);
            let mut ca = WindowedCounter::new(cfg);
            let mut cb = WindowedCounter::new(cfg);
            let mut csingle = WindowedCounter::new(cfg);
            let mut t = 0u64;
            for _ in 0..rng.below(80) {
                t += rng.below(cfg.slot_ns());
                let v = rng.value();
                single.record(t, v);
                csingle.add(t, 1);
                if rng.below(2) == 0 {
                    a.record(t, v);
                    ca.add(t, 1);
                } else {
                    b.record(t, v);
                    cb.add(t, 1);
                }
            }
            a.merge_from(&b);
            ca.merge_from(&cb);
            assert_hist_eq(&a.merged(t), &single.merged(t), &format!("case {case}"));
            assert_eq!(ca.total(t), csingle.total(t), "case {case}");
        }
    }

    #[test]
    fn merge_from_ignores_mismatched_geometry() {
        let mut a = WindowedCounter::new(WindowConfig::new(10, 4));
        let mut b = WindowedCounter::new(WindowConfig::new(20, 4));
        b.add(5, 7);
        a.merge_from(&b);
        assert_eq!(a.total(5), 0);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_labelled() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("serve.frames".into(), 42);
        snap.gauges.insert("serve.queue.depth".into(), 3.0);
        let mut h = LogHistogram::new();
        h.record_n(100.0, 10);
        snap.histograms.insert("serve.frame.ns".into(), h.summary());
        let telemetry = TelemetrySnapshot {
            at_ns: 123,
            cumulative: snap.clone(),
            windowed: Some(WindowedView {
                span_ns: 2_000_000_000,
                counters: BTreeMap::from([(
                    "serve.frames".to_string(),
                    WindowRate {
                        total: 10,
                        per_sec: 5.0,
                    },
                )]),
                histograms: BTreeMap::from([("serve.frame.ns".to_string(), h.summary())]),
            }),
        };
        let text = telemetry.to_prometheus();
        assert!(text.contains("# TYPE darkside_serve_frames_total counter"));
        assert!(text.contains("darkside_serve_frames_total 42"));
        assert!(text.contains("darkside_serve_queue_depth 3"));
        assert!(text.contains("darkside_serve_frame_ns{quantile=\"0.99\"}"));
        assert!(text.contains("darkside_serve_frames_window_total{window=\"2s\"} 10"));
        assert!(text.contains("darkside_serve_frames_window_per_sec{window=\"2s\"} 5"));
        assert_eq!(text, telemetry.to_prometheus(), "must be deterministic");

        let mut labelled = String::new();
        render_prometheus(&mut labelled, &snap, &[("shard", "3")]);
        assert!(labelled.contains("darkside_serve_frames_total{shard=\"3\"} 42"));
        assert!(labelled.contains("{shard=\"3\",quantile=\"0.5\"}"));
        assert!(!labelled.contains("# TYPE"), "labelled sections skip TYPE");
    }

    #[test]
    fn telemetry_json_carries_schema_version() {
        let telemetry = TelemetrySnapshot {
            at_ns: 7,
            cumulative: MetricsSnapshot::default(),
            windowed: None,
        };
        let json = telemetry.to_json();
        assert_eq!(
            json.get("schema_version").and_then(|j| match j {
                Json::U64(v) => Some(*v),
                _ => None,
            }),
            Some(TELEMETRY_SCHEMA_VERSION)
        );
        assert!(json.get("windowed").is_none());
    }
}
