//! Recorder sinks: where trace events go.
//!
//! * [`NullRecorder`] — the default. `is_active()` is `false`, so every
//!   instrumentation site short-circuits on one thread-local flag before
//!   touching the clock or formatting a name; decode under the null
//!   recorder is regression-pinned bit-for-bit against an uninstrumented
//!   loop (`darkside-decoder/tests/trace_neutrality.rs`) and wall-clock
//!   gated at ≤ 5 % overhead in CI (`darkside-bench --bin trace_overhead`).
//! * [`MemoryRecorder`] — aggregates counters/gauges/histograms/span
//!   totals in memory; `snapshot()` yields the [`MetricsSnapshot`] a
//!   `RunReport` is assembled from.
//! * [`JsonlRecorder`] — a [`MemoryRecorder`] that additionally appends
//!   one JSON line per event to a file, for post-hoc analysis or live
//!   tailing of long runs.
//!
//! Recorders use interior mutability (`RefCell`) and are installed
//! per-thread via `Rc` ([`crate::set_recorder`] / [`crate::with_recorder`]);
//! the worker threads `darkside_nn::gemm` spawns never record directly —
//! kernel hooks time whole calls from the caller's thread.

use crate::hist::LogHistogram;
use crate::report::{MetricsSnapshot, SpanAgg};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// One sink for trace events. Metric names are plain dot-separated strings
/// ("decode.frame.ns"); aggregation is by exact name.
pub trait Recorder {
    /// `false` short-circuits every instrumentation site (the null sink).
    fn is_active(&self) -> bool {
        true
    }

    /// Add `delta` to a monotonically increasing counter.
    fn counter(&self, name: &str, delta: u64);

    /// Set a last-write-wins value.
    fn gauge(&self, name: &str, value: f64);

    /// Record one sample into the named log-bucketed histogram.
    fn sample(&self, name: &str, value: f64);

    /// A span opened (`depth` counts nesting, outermost = 1).
    fn span_enter(&self, name: &str, depth: usize, start_ns: u64);

    /// A span closed. `start_ns` is the matching enter time.
    fn span_exit(&self, name: &str, depth: usize, start_ns: u64, end_ns: u64);

    /// Aggregated view of everything recorded so far (`None` for sinks that
    /// keep no state, i.e. the null recorder).
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Live telemetry view — cumulative snapshot plus the sliding-window
    /// side when the sink maintains one (ISSUE 9). Only
    /// [`crate::SharedRecorder`] built via `SharedRecorder::windowed`
    /// carries windows; every other sink reports `None`.
    fn telemetry(&self) -> Option<crate::window::TelemetrySnapshot> {
        None
    }
}

/// The no-op sink: statically does nothing, reports inactive.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_active(&self) -> bool {
        false
    }
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn sample(&self, _name: &str, _value: f64) {}
    fn span_enter(&self, _name: &str, _depth: usize, _start_ns: u64) {}
    fn span_exit(&self, _name: &str, _depth: usize, _start_ns: u64, _end_ns: u64) {}
}

#[derive(Default)]
struct MemoryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    spans: BTreeMap<String, SpanAgg>,
    /// Names of currently open spans, for unbalanced-close detection.
    open: Vec<String>,
    unbalanced_closes: u64,
}

impl MemoryState {
    fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        if self.unbalanced_closes > 0 {
            counters.insert("trace.unbalanced_closes".into(), self.unbalanced_closes);
        }
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            spans: self.spans.clone(),
        }
    }
}

/// In-memory aggregating sink.
#[derive(Default)]
pub struct MemoryRecorder {
    state: RefCell<MemoryState>,
}

impl MemoryRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Spans currently open (for tests and debugging).
    pub fn open_spans(&self) -> usize {
        self.state.borrow().open.len()
    }

    /// Closes whose name did not match the innermost open span (or that had
    /// no open span at all) — always 0 under the RAII [`crate::span`] guard,
    /// nonzero only when a sink is driven by hand out of order.
    pub fn unbalanced_closes(&self) -> u64 {
        self.state.borrow().unbalanced_closes
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut s = self.state.borrow_mut();
        *s.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        self.state
            .borrow_mut()
            .gauges
            .insert(name.to_string(), value);
    }

    fn sample(&self, name: &str, value: f64) {
        self.state
            .borrow_mut()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn span_enter(&self, name: &str, _depth: usize, _start_ns: u64) {
        self.state.borrow_mut().open.push(name.to_string());
    }

    fn span_exit(&self, name: &str, _depth: usize, start_ns: u64, end_ns: u64) {
        let mut s = self.state.borrow_mut();
        match s.open.pop() {
            Some(top) if top == name => {}
            Some(_) | None => s.unbalanced_closes += 1,
        }
        let agg = s.spans.entry(name.to_string()).or_default();
        agg.count += 1;
        agg.total_ns += end_ns.saturating_sub(start_ns);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(self.state.borrow().snapshot())
    }
}

/// A [`MemoryRecorder`] that also streams every event as one JSON line.
pub struct JsonlRecorder {
    mem: MemoryRecorder,
    out: RefCell<BufWriter<File>>,
}

impl JsonlRecorder {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            mem: MemoryRecorder::new(),
            out: RefCell::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Flush buffered lines (also attempted on drop, ignoring errors).
    pub fn finish(&self) -> std::io::Result<()> {
        self.out.borrow_mut().flush()
    }

    fn line(&self, body: std::fmt::Arguments<'_>) {
        // A full event line is cheap to format; escaping is only needed for
        // names, which instrumentation sites keep to dot-separated idents.
        let _ = writeln!(self.out.borrow_mut(), "{body}");
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

impl Recorder for JsonlRecorder {
    fn counter(&self, name: &str, delta: u64) {
        self.mem.counter(name, delta);
        self.line(format_args!(
            "{{\"ev\":\"counter\",\"name\":\"{name}\",\"delta\":{delta}}}"
        ));
    }

    fn gauge(&self, name: &str, value: f64) {
        self.mem.gauge(name, value);
        self.line(format_args!(
            "{{\"ev\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}"
        ));
    }

    fn sample(&self, name: &str, value: f64) {
        self.mem.sample(name, value);
        self.line(format_args!(
            "{{\"ev\":\"sample\",\"name\":\"{name}\",\"value\":{value}}}"
        ));
    }

    fn span_enter(&self, name: &str, depth: usize, start_ns: u64) {
        self.mem.span_enter(name, depth, start_ns);
        self.line(format_args!(
            "{{\"ev\":\"span_enter\",\"name\":\"{name}\",\"depth\":{depth},\"t\":{start_ns}}}"
        ));
    }

    fn span_exit(&self, name: &str, depth: usize, start_ns: u64, end_ns: u64) {
        self.mem.span_exit(name, depth, start_ns, end_ns);
        self.line(format_args!(
            "{{\"ev\":\"span\",\"name\":\"{name}\",\"depth\":{depth},\
             \"start\":{start_ns},\"end\":{end_ns}}}"
        ));
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.mem.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_aggregates_all_kinds() {
        let r = MemoryRecorder::new();
        r.counter("c", 2);
        r.counter("c", 3);
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        r.sample("h", 10.0);
        r.sample("h", 1000.0);
        r.span_enter("outer", 1, 100);
        r.span_enter("inner", 2, 150);
        r.span_exit("inner", 2, 150, 250);
        r.span_exit("outer", 1, 100, 400);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2.5);
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.spans["outer"].total_ns, 300);
        assert_eq!(snap.spans["inner"].count, 1);
        assert_eq!(r.unbalanced_closes(), 0);
        assert_eq!(r.open_spans(), 0);
    }

    #[test]
    fn unbalanced_closes_are_counted_not_panicked() {
        let r = MemoryRecorder::new();
        // Close with nothing open.
        r.span_exit("ghost", 1, 0, 10);
        // Enter a/b, close them in the wrong order: closing "a" pops the
        // innermost "b" (mismatch), then closing "b" pops the leftover "a"
        // (mismatch again) — plus the ghost above, three in total.
        r.span_enter("a", 1, 0);
        r.span_enter("b", 2, 1);
        r.span_exit("a", 1, 0, 5);
        r.span_exit("b", 2, 1, 5);
        assert_eq!(r.unbalanced_closes(), 3);
        // Durations are still aggregated for post-mortem use.
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.counters["trace.unbalanced_closes"], 3);
    }

    #[test]
    fn null_recorder_is_inactive_and_snapshotless() {
        let r = NullRecorder;
        assert!(!r.is_active());
        r.counter("c", 1);
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn jsonl_recorder_writes_one_line_per_event() {
        let path = std::env::temp_dir().join("darkside_trace_jsonl_test.jsonl");
        {
            let r = JsonlRecorder::create(&path).unwrap();
            r.counter("c", 1);
            r.sample("h", 2.0);
            r.span_enter("s", 1, 0);
            r.span_exit("s", 1, 0, 10);
            r.finish().unwrap();
            assert_eq!(r.snapshot().unwrap().counters["c"], 1);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"ev\":\"counter\""));
        assert!(lines[3].contains("\"end\":10"));
        let _ = std::fs::remove_file(&path);
    }
}
