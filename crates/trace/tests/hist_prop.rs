//! Property tests for the log-bucketed histogram (ISSUE 4 satellite):
//! bucket boundaries are monotone, and every reported quantile lies inside
//! the bounds of the bucket holding its rank (hence within one bucket
//! width — `2^(1/4)` — of the exact nearest-rank quantile) and inside the
//! observed `[min, max]`.
//!
//! The random-case driver is a local SplitMix64 rather than
//! `darkside_nn::check` — trace sits below nn in the dependency order, and
//! a dev-dependency back-edge would be the only cycle in the workspace.

use darkside_trace::hist::{bucket_lower, bucket_upper, BUCKETS_PER_OCTAVE};
use darkside_trace::{exact_percentile, LogHistogram};

/// SplitMix64 — the same generator darkside-nn vendors.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[test]
fn bucket_boundaries_are_monotone_and_tile_the_axis() {
    let mut prev_upper = 0.0f64;
    for i in 0..260 {
        let lo = bucket_lower(i);
        let hi = bucket_upper(i);
        assert!(lo < hi, "bucket {i}: [{lo}, {hi}) is empty");
        if i > 0 {
            // Adjacent buckets share a boundary: no gaps, no overlaps.
            assert_eq!(lo, prev_upper, "bucket {i} does not abut bucket {}", i - 1);
            // Geometric width: one sub-octave step.
            let width = hi / lo;
            let expect = 2f64.powf(1.0 / BUCKETS_PER_OCTAVE as f64);
            assert!((width - expect).abs() < 1e-12, "bucket {i} width {width}");
        }
        prev_upper = hi;
    }
}

#[test]
fn quantiles_stay_within_bucket_bounds_and_sample_range() {
    let mut rng = Rng(0xDA27_0001);
    for case in 0..200 {
        let n = 1 + rng.below(500);
        let mut h = LogHistogram::new();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Mix scales: sub-1 values (all land in bucket 0), mid-range,
            // and heavy-tail outliers — the shape of ns/frame data.
            let v = match rng.below(4) {
                0 => rng.uniform(0.0, 1.0),
                1 => rng.uniform(1.0, 100.0),
                2 => rng.uniform(100.0, 1e6),
                _ => rng.uniform(1e6, 1e12),
            };
            samples.push(v);
            h.record(v);
        }
        assert_eq!(h.count(), n as u64);
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            let exact = exact_percentile(&samples, q);
            // Within the observed sample range…
            assert!(
                est >= h.min() && est <= h.max(),
                "case {case} q={q}: {est} outside [{}, {}]",
                h.min(),
                h.max()
            );
            // …and within one bucket width of the exact nearest-rank value
            // (est is clamped into the exact value's bucket or its range).
            let width = 2f64.powf(1.0 / BUCKETS_PER_OCTAVE as f64);
            let (lo, hi) = if exact <= 1.0 {
                (0.0, 1.0)
            } else {
                (exact / width, exact * width)
            };
            assert!(
                est >= lo.min(h.min()) && est <= hi.max(h.min()),
                "case {case} q={q}: estimate {est} vs exact {exact}"
            );
        }
        // The fixed summary set is internally ordered.
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.mean >= s.min && s.mean <= s.max);
    }
}

#[test]
fn identical_samples_collapse_every_statistic() {
    let mut h = LogHistogram::new();
    for _ in 0..1000 {
        h.record(12345.0);
    }
    let s = h.summary();
    assert_eq!(s.min, 12345.0);
    assert_eq!(s.max, 12345.0);
    assert_eq!(s.p50, 12345.0);
    assert_eq!(s.p99, 12345.0);
    assert!((s.mean - 12345.0).abs() < 1e-9);
}
