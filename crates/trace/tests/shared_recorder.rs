//! Worker-pool metric aggregation (ISSUE 5 satellite): the per-thread
//! ambient recorder silently dropped everything spawned threads emitted;
//! a [`SharedRecorder`] clone installed per worker must lose nothing.

use darkside_trace::{self as trace, MemoryRecorder, Recorder as _, RunReport, SharedRecorder};
use std::rc::Rc;

const WORKERS: usize = 4;
const ITEMS_PER_WORKER: u64 = 250;

/// The workload every thread runs: a span per item plus counters/samples,
/// emitted through the plain ambient free functions — exactly what
/// instrumented library code (decoder frames, kernels) does.
fn emit_work(worker: usize) {
    for i in 0..ITEMS_PER_WORKER {
        let _s = trace::span!("serve.advance");
        trace::counter("decode.frames", 1);
        trace::sample("decode.frame.ns", (worker * 1000 + i as usize) as f64);
    }
    trace::gauge("serve.worker.last_item", ITEMS_PER_WORKER as f64);
}

#[test]
fn four_workers_lose_no_counters() {
    let shared = SharedRecorder::new();
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let shared = shared.clone();
            s.spawn(move || shared.scoped(|| emit_work(w)));
        }
    });
    let snap = shared.snapshot();
    let expect = WORKERS as u64 * ITEMS_PER_WORKER;
    assert_eq!(snap.counters["decode.frames"], expect);
    assert_eq!(snap.histograms["decode.frame.ns"].count, expect);
    assert_eq!(snap.spans["serve.advance"].count, expect);
    assert_eq!(
        snap.gauges["serve.worker.last_item"],
        ITEMS_PER_WORKER as f64
    );
    assert_eq!(shared.open_spans(), 0);
    assert_eq!(shared.unbalanced_closes(), 0);
    assert!(!snap.counters.contains_key("trace.unbalanced_closes"));

    // The aggregate assembles into one complete RunReport.
    let report = RunReport::new("shared", 0, trace::Json::obj(vec![]), snap);
    assert_eq!(report.histogram("decode.frame.ns").unwrap().count, expect);
    assert!(report.stage_ms("serve.advance").unwrap() >= 0.0);
}

/// The regression this satellite fixes, demonstrated: the same fan-out
/// through a per-thread `MemoryRecorder` installed on the *main* thread
/// records nothing from the workers.
#[test]
fn per_thread_recorder_drops_worker_metrics() {
    let mem = Rc::new(MemoryRecorder::new());
    trace::with_recorder(mem.clone(), || {
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                s.spawn(move || emit_work(w));
            }
        });
    });
    let snap = mem.snapshot().unwrap();
    assert!(
        !snap.counters.contains_key("decode.frames"),
        "ambient thread-local recorder unexpectedly saw worker events"
    );
}

#[test]
fn shared_recorder_mixes_with_main_thread_emission() {
    // The serve scheduler's shape: the main thread emits queue gauges and
    // batch samples, workers emit per-frame metrics, one report holds both.
    let shared = SharedRecorder::new();
    shared.scoped(|| {
        trace::gauge("serve.queue.depth", 3.0);
        trace::sample("serve.batch.frames", 64.0);
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let shared = shared.clone();
                s.spawn(move || shared.scoped(|| emit_work(w)));
            }
        });
        trace::counter("serve.steps", 1);
    });
    let snap = shared.snapshot();
    assert_eq!(snap.counters["serve.steps"], 1);
    assert_eq!(snap.gauges["serve.queue.depth"], 3.0);
    assert_eq!(
        snap.counters["decode.frames"],
        WORKERS as u64 * ITEMS_PER_WORKER
    );
}
