//! # darkside-error — the workspace-wide error type
//!
//! One enum for every fallible constructor in the workspace (ISSUE 2
//! satellite). It lives in its own dependency-free crate because the
//! dependency flow is bottom-up (`nn`/`wfst`/`acoustic` → `decoder` →
//! `core`): the substrate crates cannot name a type defined in
//! `darkside-core`, so the type is defined here and re-exported as
//! [`darkside_core::Error`], the name user code is expected to write.
//!
//! Variants carry a `context` (which constructor rejected the input) and a
//! `detail` (what about the input was wrong), so a propagated error is
//! actionable without a backtrace.

use std::fmt;

/// Workspace-wide error: why a constructor rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A tensor/buffer shape disagreement (e.g. `Matrix::new` with a data
    /// length that is not `rows × cols`, CSR offsets out of order).
    Shape { context: String, detail: String },
    /// A configuration value outside its documented domain (e.g. a
    /// homophone fraction ≥ 1, a zero vocabulary).
    Config { context: String, detail: String },
    /// A structurally invalid WFST operation (e.g. composing a graph with
    /// no start state, an arc to a nonexistent state).
    Graph { context: String, detail: String },
    /// Corpus generation could not satisfy its constraints (e.g. more
    /// unique pronunciations requested than the phoneme space holds).
    Corpus { context: String, detail: String },
}

impl Error {
    pub fn shape(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Shape {
            context: context.into(),
            detail: detail.into(),
        }
    }

    pub fn config(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Config {
            context: context.into(),
            detail: detail.into(),
        }
    }

    pub fn graph(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Graph {
            context: context.into(),
            detail: detail.into(),
        }
    }

    pub fn corpus(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Corpus {
            context: context.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, context, detail) = match self {
            Error::Shape { context, detail } => ("shape", context, detail),
            Error::Config { context, detail } => ("config", context, detail),
            Error::Graph { context, detail } => ("graph", context, detail),
            Error::Corpus { context, detail } => ("corpus", context, detail),
        };
        write!(f, "{kind} error in {context}: {detail}")
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_context_and_detail() {
        let e = Error::shape("Matrix::new", "6 elements for a 2x2 shape");
        assert_eq!(
            e.to_string(),
            "shape error in Matrix::new: 6 elements for a 2x2 shape"
        );
        let e = Error::graph("compose", "left operand has no start state");
        assert!(e.to_string().contains("compose"));
    }

    #[test]
    fn is_std_error() {
        fn takes_std(_: &dyn std::error::Error) {}
        takes_std(&Error::config("x", "y"));
    }
}
