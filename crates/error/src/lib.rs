//! # darkside-error — the workspace-wide error type
//!
//! One enum for every fallible constructor in the workspace (ISSUE 2
//! satellite). It lives in its own dependency-free crate because the
//! dependency flow is bottom-up (`nn`/`wfst`/`acoustic` → `decoder` →
//! `core`): the substrate crates cannot name a type defined in
//! `darkside-core`, so the type is defined here and re-exported as
//! [`darkside_core::Error`], the name user code is expected to write.
//!
//! Variants carry a `context` (which constructor rejected the input) and a
//! `detail` (what about the input was wrong), so a propagated error is
//! actionable without a backtrace.

use std::fmt;

/// Why a serving engine refused work (ISSUE 7): the structured reason
/// behind an [`Error::Rejected`], shared by admission decisions, queue
/// backpressure, and the serve counters keyed off it. Living here (rather
/// than in `darkside-serve`) lets any layer return a typed shed decision
/// through the one workspace error enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The engine is draining toward shutdown; no new sessions.
    Draining,
    /// The concurrent-session budget is exhausted.
    SessionBudget,
    /// Buffering the frames would exceed the frame-queue budget.
    QueueBudget,
    /// Observed p99 frame latency breached the configured SLO hard limit.
    SloBreach,
}

impl RejectReason {
    /// Every reason, in a stable order (counter arrays index by this).
    pub const ALL: [RejectReason; 4] = [
        RejectReason::Draining,
        RejectReason::SessionBudget,
        RejectReason::QueueBudget,
        RejectReason::SloBreach,
    ];

    /// Stable snake_case label, used as the metric-name suffix of the
    /// `serve.rejected.<label>` counters.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::Draining => "draining",
            RejectReason::SessionBudget => "session_budget",
            RejectReason::QueueBudget => "queue_budget",
            RejectReason::SloBreach => "slo_breach",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Workspace-wide error: why a constructor rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A tensor/buffer shape disagreement (e.g. `Matrix::new` with a data
    /// length that is not `rows × cols`, CSR offsets out of order).
    Shape { context: String, detail: String },
    /// A configuration value outside its documented domain (e.g. a
    /// homophone fraction ≥ 1, a zero vocabulary).
    Config { context: String, detail: String },
    /// A structurally invalid WFST operation (e.g. composing a graph with
    /// no start state, an arc to a nonexistent state).
    Graph { context: String, detail: String },
    /// Corpus generation could not satisfy its constraints (e.g. more
    /// unique pronunciations requested than the phoneme space holds).
    Corpus { context: String, detail: String },
    /// A serving engine shed the request: budget exhausted, draining, or
    /// the latency SLO breached. Carries the typed [`RejectReason`] so
    /// callers can branch on shed-vs-bug without string matching.
    Rejected {
        context: String,
        reason: RejectReason,
    },
}

impl Error {
    pub fn shape(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Shape {
            context: context.into(),
            detail: detail.into(),
        }
    }

    pub fn config(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Config {
            context: context.into(),
            detail: detail.into(),
        }
    }

    pub fn graph(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Graph {
            context: context.into(),
            detail: detail.into(),
        }
    }

    pub fn corpus(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Corpus {
            context: context.into(),
            detail: detail.into(),
        }
    }

    pub fn rejected(context: impl Into<String>, reason: RejectReason) -> Self {
        Error::Rejected {
            context: context.into(),
            reason,
        }
    }

    /// The typed shed reason, when this error is a serving rejection.
    /// Load generators and retry layers branch on `Some(_)` (expected
    /// backpressure) versus `None` (an actual fault).
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            Error::Rejected { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, context, detail) = match self {
            Error::Shape { context, detail } => ("shape", context, detail.clone()),
            Error::Config { context, detail } => ("config", context, detail.clone()),
            Error::Graph { context, detail } => ("graph", context, detail.clone()),
            Error::Corpus { context, detail } => ("corpus", context, detail.clone()),
            Error::Rejected { context, reason } => ("rejected", context, reason.to_string()),
        };
        write!(f, "{kind} error in {context}: {detail}")
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_context_and_detail() {
        let e = Error::shape("Matrix::new", "6 elements for a 2x2 shape");
        assert_eq!(
            e.to_string(),
            "shape error in Matrix::new: 6 elements for a 2x2 shape"
        );
        let e = Error::graph("compose", "left operand has no start state");
        assert!(e.to_string().contains("compose"));
    }

    #[test]
    fn is_std_error() {
        fn takes_std(_: &dyn std::error::Error) {}
        takes_std(&Error::config("x", "y"));
    }

    #[test]
    fn rejection_carries_a_typed_reason() {
        let e = Error::rejected("serve.offer", RejectReason::SloBreach);
        assert_eq!(e.reject_reason(), Some(RejectReason::SloBreach));
        assert_eq!(e.to_string(), "rejected error in serve.offer: slo_breach");
        assert_eq!(Error::config("x", "y").reject_reason(), None);
        // Labels are stable metric-name suffixes, one per variant.
        let labels: Vec<_> = RejectReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            ["draining", "session_budget", "queue_budget", "slo_breach"]
        );
    }
}
