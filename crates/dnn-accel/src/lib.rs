//! # darkside-dnn-accel — DaDianNao-style pruned-DNN accelerator simulator
//!
//! DESIGN.md §3: models the paper's DNN accelerator (Fig. 10, Table II) —
//! compute tiles of multiply/add lanes, an eDRAM weights buffer with
//! power-gated banks, and a multi-banked I/O buffer whose port conflicts are
//! driven by the *actual* CSR index pattern from `darkside-pruning` (the
//! 11/18/33 % FP-throughput drop of §III-D).
//!
//! **Status:** skeleton (ISSUE 1 creates the workspace; the tile/bank timing
//! model lands with the accelerator PR). The configuration below is final —
//! Table II's paper geometry plus the DESIGN.md §4b 1-tile scaled variant.

/// Compute/storage geometry of the DNN accelerator (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DnnAccelConfig {
    pub tiles: usize,
    /// Multiply/add lanes per tile.
    pub lanes_per_tile: usize,
    /// I/O buffer banks (port conflicts arise when two CSR column indices
    /// land in one bank in one cycle).
    pub io_banks: usize,
}

impl DnnAccelConfig {
    /// Paper configuration (Table II): 4 tiles × 32 mul/add lanes.
    pub fn paper() -> Self {
        Self {
            tiles: 4,
            lanes_per_tile: 32,
            io_banks: 16,
        }
    }

    /// DESIGN.md §4b scaled configuration: a single tile.
    pub fn scaled() -> Self {
        Self {
            tiles: 1,
            lanes_per_tile: 32,
            io_banks: 16,
        }
    }

    /// Peak multiply-adds per cycle.
    pub fn peak_macs_per_cycle(&self) -> usize {
        self.tiles * self.lanes_per_tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_peak_throughput() {
        assert_eq!(DnnAccelConfig::paper().peak_macs_per_cycle(), 128);
        assert_eq!(DnnAccelConfig::scaled().peak_macs_per_cycle(), 32);
    }
}
