//! One scheduler shard (ISSUE 7 tentpole): an independent session table
//! with its own micro-batch loop and its own metrics sink.
//!
//! Each [`Shard`] is the ISSUE 5 scheduler's inner cycle, minus the
//! admission bookkeeping (which stays global in
//! [`crate::ShardedScheduler`]):
//!
//! ```text
//!  sessions (id order)          gather ≤ max_batch_frames, fair share
//!  s0: [f f f] ──┐
//!  s4: [f f]   ──┼──► one FrameScorer::score_frames(batch)   (the GEMM
//!  s8: [f f f] ──┘        │                                   amortization)
//!                         ▼
//!                 acoustic_costs → per-session row ranges
//!                         │
//!                 fan out over `workers` threads
//!                         │
//!                 reap finished → ServedResult
//! ```
//!
//! The shard owns a [`SharedRecorder`] and installs it ambiently for the
//! whole step, so every `decode.frame.*` / `serve.batch.*` event lands in
//! the shard's own sink — stepping N shards in parallel contends on **no
//! shared mutex**; the engine merges the per-shard histograms only when
//! admission asks for the fleet-wide p99 or a report is assembled.

use crate::session::{ServedResult, Session, SessionId};
use darkside_decoder::{acoustic_costs, BeamConfig};
use darkside_nn::{Frame, FrameScorer, Matrix};
use darkside_trace::{self as trace, Recorder as _, SharedRecorder};
use std::sync::Arc;

/// What one [`Shard::step`] did, for the engine's global accounting.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardStep {
    /// Frames scored in this shard's micro-batch (0 = idle).
    pub scored_frames: usize,
    /// Sessions that contributed frames to the batch.
    pub batch_sessions: usize,
    /// Sessions finalized this step.
    pub completed: usize,
    /// Of those, sessions that ended in a search error.
    pub failed: usize,
    /// Of those, sessions the detector flagged in this same step — reaped
    /// before the scheduler's sweep could downgrade them, so the shard
    /// counts the flag itself (see [`Shard::reap`]).
    pub flagged: usize,
    /// Queue budget stranded in reaped sessions (frames that died
    /// un-scored); the engine hands it back to admission.
    pub freed_unscored: usize,
}

/// An independent slice of the serving engine: session table, micro-batch
/// loop, worker fan-out, and a private metrics sink.
pub(crate) struct Shard {
    scorer: Arc<dyn FrameScorer + Send + Sync>,
    beam: BeamConfig,
    workers: usize,
    max_batch_frames: usize,
    /// Live sessions in ascending id order (home placement appends —
    /// per-shard ids are monotonic; steals insert sorted).
    sessions: Vec<Session>,
    /// Finalized results awaiting collection by the engine.
    pub(crate) completed: Vec<ServedResult>,
    /// This shard's private sink; never locked by another shard's step.
    pub(crate) recorder: SharedRecorder,
}

impl Shard {
    /// `recorder` is this shard's private sink — the engine passes a
    /// windowed one when live telemetry is configured
    /// ([`crate::ServeConfig::telemetry`]), a plain cumulative one
    /// otherwise.
    pub(crate) fn new(
        scorer: Arc<dyn FrameScorer + Send + Sync>,
        beam: BeamConfig,
        workers: usize,
        max_batch_frames: usize,
        recorder: SharedRecorder,
    ) -> Self {
        Self {
            scorer,
            beam,
            workers,
            max_batch_frames,
            sessions: Vec::new(),
            completed: Vec::new(),
            recorder,
        }
    }

    /// Insert a session, keeping ascending id order (steals and restores
    /// land mid-table).
    pub(crate) fn adopt(&mut self, session: Session) {
        let pos = self.sessions.partition_point(|s| s.id() < session.id());
        self.sessions.insert(pos, session);
    }

    /// Remove and return a session (the steal/checkpoint path).
    pub(crate) fn export(&mut self, id: SessionId) -> Option<Session> {
        self.sessions
            .binary_search_by_key(&id, Session::id)
            .ok()
            .map(|i| self.sessions.remove(i))
    }

    pub(crate) fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions
            .binary_search_by_key(&id, Session::id)
            .ok()
            .map(|i| &self.sessions[i])
    }

    pub(crate) fn session_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions
            .binary_search_by_key(&id, Session::id)
            .ok()
            .map(|i| &mut self.sessions[i])
    }

    pub(crate) fn len(&self) -> usize {
        self.sessions.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    pub(crate) fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.sessions.iter()
    }

    pub(crate) fn sessions_mut(&mut self) -> impl Iterator<Item = &mut Session> {
        self.sessions.iter_mut()
    }

    /// Un-scored frames ready across all sessions — the work-stealing
    /// pressure signal.
    pub(crate) fn ready_frames(&self) -> usize {
        self.sessions.iter().map(Session::ready).sum()
    }

    /// Sessions with at least one ready frame.
    pub(crate) fn ready_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.ready() > 0).count()
    }

    /// The session a thief should take: the ready session holding the
    /// most un-scored frames (ties break to the smallest id, so the pick
    /// is deterministic).
    pub(crate) fn steal_candidate(&self) -> Option<SessionId> {
        self.sessions
            .iter()
            .filter(|s| s.ready() > 0)
            .max_by(|a, b| a.ready().cmp(&b.ready()).then(b.id().cmp(&a.id())))
            .map(Session::id)
    }

    /// One micro-batch cycle, with this shard's recorder installed as the
    /// ambient sink for every event: reap → gather → score once → fan out
    /// → reap.
    pub(crate) fn step(&mut self) -> ShardStep {
        let recorder = self.recorder.clone();
        recorder.scoped(|| {
            let mut out = ShardStep::default();
            self.reap(&mut out);
            self.run_batch(&mut out);
            self.reap(&mut out);
            out
        })
    }

    /// Gather a fair micro-batch, score it in one call, advance every
    /// contributing session over its rows, and record the per-frame
    /// latency estimate this shard is delivering (`elapsed / frames`,
    /// weighted by frames — the histogram SLO admission reads).
    fn run_batch(&mut self, out: &mut ShardStep) {
        let ready = self.ready_sessions();
        if ready == 0 {
            return;
        }
        let t0 = trace::now_ns();
        // Fair share: the batch cap divides across ready sessions (≥ 1
        // frame each), so one long utterance cannot starve the rest.
        let fair = (self.max_batch_frames / ready).max(1);
        let mut batch: Vec<Frame> = Vec::new();
        let mut parts: Vec<(usize, usize, usize)> = Vec::new(); // (session idx, row0, rows)
        for (i, s) in self.sessions.iter_mut().enumerate() {
            if batch.len() >= self.max_batch_frames {
                break;
            }
            let room = self.max_batch_frames - batch.len();
            let frames = s.take_ready(fair.min(room));
            if frames.is_empty() {
                continue;
            }
            parts.push((i, batch.len(), frames.len()));
            batch.extend(frames);
        }
        let scored = batch.len();
        let costs = {
            let _s = trace::span!("serve.score");
            let scores = self.scorer.score_frames(&batch);
            acoustic_costs(&scores, &self.beam)
        };
        self.fan_out(&parts, &costs);
        let elapsed = trace::now_ns().saturating_sub(t0);
        if scored > 0 {
            self.recorder.sample_n(
                "serve.frame.ns",
                elapsed as f64 / scored as f64,
                scored as u64,
            );
        }
        trace::sample("serve.batch.frames", scored as f64);
        trace::sample("serve.batch.sessions", parts.len() as f64);
        out.scored_frames = scored;
        out.batch_sessions = parts.len();
    }

    /// Advance each contributing session over its slice of the scored
    /// batch, split across this shard's workers. Sessions are independent
    /// decoders, so the split is embarrassingly parallel; each worker
    /// re-installs the shard recorder so per-frame metrics aggregate.
    fn fan_out(&mut self, parts: &[(usize, usize, usize)], costs: &Matrix) {
        // Disjoint &mut Session in parts order, from one sweep.
        let mut work: Vec<(&mut Session, usize, usize)> = Vec::with_capacity(parts.len());
        let mut want = parts.iter().peekable();
        for (i, s) in self.sessions.iter_mut().enumerate() {
            match want.peek() {
                Some(&&(pi, row0, rows)) if pi == i => {
                    want.next();
                    work.push((s, row0, rows));
                }
                _ => {}
            }
        }
        let workers = self.workers.min(work.len()).max(1);
        if workers == 1 {
            for (s, row0, rows) in &mut work {
                s.advance_rows(costs, *row0..*row0 + *rows);
            }
            return;
        }
        let chunk = work.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for piece in work.chunks_mut(chunk) {
                let recorder = self.recorder.clone();
                scope.spawn(move || {
                    recorder.scoped(|| {
                        for (s, row0, rows) in piece.iter_mut() {
                            s.advance_rows(costs, *row0..*row0 + *rows);
                        }
                    })
                });
            }
        });
    }

    /// Finalize every done session: export its trace metrics, move its
    /// result to the completed queue, report freed budget upward.
    fn reap(&mut self, out: &mut ShardStep) {
        let mut i = 0;
        while i < self.sessions.len() {
            if !self.sessions[i].is_done() {
                i += 1;
                continue;
            }
            let s = self.sessions.remove(i);
            // An errored session may die with un-scored frames buffered;
            // the engine hands their queue budget back.
            out.freed_unscored += s.pending_unscored();
            let t0 = s.submitted_ns();
            let served = s.finalize();
            if served.decode.is_err() {
                out.failed += 1;
                trace::counter("serve.session.failed", 1);
            } else {
                trace::counter("serve.session.completed", 1);
            }
            trace::counter("serve.session.frames", served.frames as u64);
            trace::sample("serve.session.latency_ns", served.latency_ns as f64);
            // A session can flag and finish inside one step (the whole
            // utterance fit the batch cap): it is reaped before the
            // scheduler's flag sweep runs, so the flag is counted here —
            // there is nothing left to downgrade, but the ledgers must
            // still see it. Swept sessions are excluded (`degraded` is set
            // by the sweep that already counted them).
            if !served.degraded {
                if let Some(at) = served.flagged_at {
                    trace::counter("serve.detector.flagged", 1);
                    trace::sample("serve.detector.frames_to_flag", at as f64);
                    out.flagged += 1;
                }
            }
            // The per-session span: recorded with the session's own
            // submit→final timestamps on the shard sink (the ambient RAII
            // span API cannot backdate an enter).
            let t1 = t0 + served.latency_ns;
            self.recorder.span_enter("serve.session", 1, t0);
            self.recorder.span_exit("serve.session", 1, t0, t1);
            self.completed.push(served);
            out.completed += 1;
        }
    }
}
