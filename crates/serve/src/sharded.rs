//! The sharded serving runtime (ISSUE 7 tentpole): shard-per-core
//! scheduling with work stealing, SLO-aware admission, and session
//! checkpoint/restore.
//!
//! A [`ShardedScheduler`] owns [`crate::ServeConfig::shards`] independent
//! [`Shard`]s. A session's **home shard** is `id % shards`; each
//! [`ShardedScheduler::step`] runs three phases:
//!
//! 1. **rebalance** — single-threaded, cheap: every shard with zero ready
//!    frames steals one ready session from the busiest shard (donor must
//!    hold ≥ [`crate::ServeConfig::steal_threshold`] ready frames across
//!    ≥ 2 ready sessions, so a lone session never ping-pongs);
//! 2. **shard stepping** — every non-empty shard runs its micro-batch
//!    cycle; with 2+ busy shards they run on parallel threads, each
//!    recording into its own sink (**no shared mutex on the hot path**);
//! 3. **bookkeeping** — scored/freed frames and closed sessions are
//!    reported to the global [`AdmissionController`], results are swept
//!    into the completed queue.
//!
//! Admission reads the fleet-wide per-frame p99 by merging the shards'
//! `serve.frame.ns` histograms ([`darkside_trace::LogHistogram::merge`] is
//! exact) — so when a pruning-inflated search blows the tail, new offers
//! degrade and then shed with [`darkside_error::RejectReason::SloBreach`]
//! *before* the queue budget ever fills (latency-first shedding, the
//! serving-side moral of the paper's Fig. 5).
//!
//! Checkpoint/restore ([`ShardedScheduler::checkpoint`] /
//! [`ShardedScheduler::restore`]) serializes a live session at a frame
//! boundary and revives it on any engine serving the same bundle; the
//! restored session finishes bit-for-bit identical to an uninterrupted
//! run (`tests/checkpoint_restore.rs`).

use crate::admission::{Admission, AdmissionController};
use crate::checkpoint::SessionCheckpoint;
use crate::exporter::{Exporter, Exposition};
use crate::session::{ServedResult, Session, SessionId};
use crate::shard::{Shard, ShardStep};
use crate::ServeConfig;
use darkside_core::{ModelBundle, PolicyKind};
use darkside_decoder::{BeamConfig, PartialHypothesis};
use darkside_error::{Error, RejectReason};
use darkside_nn::Frame;
use darkside_trace::{
    self as trace, render_prometheus, Json, LogHistogram, MetricsSnapshot, Recorder as _,
    SharedRecorder, TelemetrySnapshot,
};
use darkside_viterbi_accel::NBestTableConfig;
use darkside_wfst::MemoStats;

/// The degraded-service table: small enough to bind (cap per-frame work)
/// even on smoke-scale graphs, 8-way like the paper's Table III.
const DEGRADED_TABLE: NBestTableConfig = NBestTableConfig {
    entries: 64,
    ways: 8,
};

/// How much the beam narrows for degraded sessions.
const DEGRADED_BEAM_SCALE: f32 = 0.5;

/// SLO admission holds until this many `serve.frame.ns` samples exist
/// fleet-wide, so a cold engine's first noisy batches cannot shed traffic.
const SLO_WARMUP_SAMPLES: u64 = 64;

/// How often (at most) the stepping thread re-renders the fleet snapshot
/// for the exposition endpoint. Publishing walks every recorder, so it is
/// throttled off the hot path; scrapes between publishes see the last
/// rendered snapshot.
const PUBLISH_INTERVAL_NS: u64 = 50_000_000;

/// The engine's answer to an admitted utterance offer. Rejections are not
/// a variant: [`ShardedScheduler::offer`] returns them as typed
/// `Err(Error::Rejected { .. })` values (ISSUE 7 API redesign), so the
/// happy path always carries a [`SessionId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitResponse {
    /// Full-quality service under the bundle's policy.
    Admitted(SessionId),
    /// Served, but under the narrowed beam + bounded N-best policy.
    Degraded(SessionId),
}

impl SubmitResponse {
    /// The opened session's id.
    pub fn id(&self) -> SessionId {
        match *self {
            SubmitResponse::Admitted(id) | SubmitResponse::Degraded(id) => id,
        }
    }

    pub fn is_degraded(&self) -> bool {
        matches!(self, SubmitResponse::Degraded(_))
    }
}

/// What one [`ShardedScheduler::step`] did, summed across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Frames scored across every shard's micro-batch (0 = idle step).
    pub scored_frames: usize,
    /// Sessions that contributed frames to some batch.
    pub batch_sessions: usize,
    /// Sessions finalized this step.
    pub completed: usize,
    /// Sessions moved between shards by work stealing this step.
    pub steals: usize,
    /// Sessions the dark-side detector flagged (and downgraded) this step.
    pub flagged: usize,
}

/// Cumulative engine counters (monotonic over the engine's life).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    pub steps: u64,
    /// Non-empty shard micro-batches.
    pub batches: u64,
    pub scored_frames: u64,
    pub completed: u64,
    /// Sessions that ended in a search error.
    pub failed: u64,
    /// Sessions moved between shards by work stealing.
    pub steals: u64,
    /// Sessions serialized out by [`ShardedScheduler::checkpoint`].
    pub checkpoints: u64,
    /// Sessions revived by [`ShardedScheduler::restore`].
    pub restores: u64,
    pub peak_active_sessions: usize,
    /// Largest single-shard micro-batch.
    pub peak_batch_frames: usize,
    /// Sessions flagged by the dark-side detector over the engine's life.
    pub flagged: u64,
}

/// The sharded streaming inference engine: global admission control in
/// front of per-shard session tables, stepped in parallel micro-batch
/// cycles.
pub struct ShardedScheduler {
    bundle: ModelBundle,
    degraded_bundle: ModelBundle,
    cfg: ServeConfig,
    admission: AdmissionController,
    shards: Vec<Shard>,
    next_id: u64,
    completed: Vec<ServedResult>,
    stats: EngineStats,
    /// The engine's own sink (windowed when telemetry is on): memo-cache
    /// and detector counters that belong to no single shard. Merged into
    /// [`ShardedScheduler::metrics`] alongside the shard sinks.
    recorder: SharedRecorder,
    /// Memo-cache counters at the last step, for per-step deltas (the
    /// graph's [`MemoStats`] are cumulative over its lifetime and the
    /// graph is shared engine-wide, so the delta must be taken once per
    /// step, never per session).
    last_memo: MemoStats,
    /// The exposition endpoint, when [`ServeConfig::exporter_port`] is set.
    exporter: Option<Exporter>,
    /// `None` until the first publish (which is never throttled).
    last_publish_ns: Option<u64>,
}

impl ShardedScheduler {
    /// Build the engine from a servable bundle and a validated config.
    /// Invalid configs and unbuildable policies fail here, not
    /// per-admission.
    pub fn build(bundle: ModelBundle, cfg: ServeConfig) -> Result<Self, Error> {
        cfg.validate()?;
        bundle.build_policy()?;
        let degraded_bundle = degraded(&bundle);
        degraded_bundle.build_policy()?;
        let make_recorder = || match cfg.telemetry {
            Some(window) => SharedRecorder::windowed(window),
            None => SharedRecorder::new(),
        };
        let shards = (0..cfg.shards)
            .map(|_| {
                Shard::new(
                    bundle.scorer.clone(),
                    bundle.beam,
                    cfg.workers,
                    cfg.max_batch_frames,
                    make_recorder(),
                )
            })
            .collect();
        let exporter = match cfg.exporter_port {
            Some(port) => Some(Exporter::start(port)?),
            None => None,
        };
        Ok(Self {
            admission: AdmissionController::new(&cfg),
            last_memo: bundle.graph.memo_stats().unwrap_or_default(),
            bundle,
            degraded_bundle,
            cfg,
            shards,
            next_id: 0,
            completed: Vec::new(),
            stats: EngineStats::default(),
            recorder: make_recorder(),
            exporter,
            last_publish_ns: None,
        })
    }

    /// Offer one whole utterance: admission decision, then (when served) a
    /// session carrying every frame with input already closed. The common
    /// path for request/response serving and the load generator. Shed
    /// offers return `Err` with a typed
    /// [`darkside_error::RejectReason`] — nothing was buffered.
    pub fn offer(&mut self, frames: Vec<Frame>) -> Result<SubmitResponse, Error> {
        let response = self.open(frames.len())?;
        let id = response.id();
        self.push(id, frames)?;
        self.close_input(id);
        Ok(response)
    }

    /// Open a streaming session expected to push about `frames_hint`
    /// frames (the admission queue check uses the hint; actual pushes are
    /// re-checked against the live budget).
    pub fn open(&mut self, frames_hint: usize) -> Result<SubmitResponse, Error> {
        let observed = self.slo_observation();
        match self.admission.offer(frames_hint, observed) {
            Err(e) => Err(self.count_rejection(e)),
            Ok(decision) => {
                let degraded = decision == Admission::Degraded;
                let bundle = if degraded {
                    &self.degraded_bundle
                } else {
                    &self.bundle
                };
                let id = SessionId(self.next_id);
                let mut session = Session::new(
                    id,
                    bundle.graph.clone(),
                    bundle.graph_kind,
                    bundle.precision,
                    bundle.build_policy()?,
                    degraded,
                )?;
                if let Some(detector) = self.cfg.detector {
                    session = session.with_detector(detector, bundle.dense_hyps_baseline);
                }
                self.next_id += 1;
                let home = self.home(id);
                self.shards[home].adopt(session);
                self.admission.on_open();
                self.stats.peak_active_sessions =
                    self.stats.peak_active_sessions.max(self.active_sessions());
                if degraded {
                    trace::counter("serve.degraded", 1);
                }
                Ok(if degraded {
                    SubmitResponse::Degraded(id)
                } else {
                    SubmitResponse::Admitted(id)
                })
            }
        }
    }

    /// Push frames into an open session. Fails (without buffering
    /// anything) when the session is unknown, a frame's dimensionality
    /// does not match the scorer, or the frames would exceed the queue
    /// budget — the latter as a typed
    /// [`darkside_error::RejectReason::QueueBudget`] rejection: explicit
    /// backpressure, never unbounded buffering.
    pub fn push(&mut self, id: SessionId, frames: Vec<Frame>) -> Result<(), Error> {
        let dim = self.bundle.scorer.input_dim();
        if let Some(bad) = frames.iter().find(|f| f.dim() != dim) {
            return Err(Error::shape(
                "serve.push",
                format!("frame dim {} but scorer expects {dim}", bad.dim()),
            ));
        }
        if !self.admission.queue_has_room(frames.len()) {
            let e = Error::rejected("serve.push", RejectReason::QueueBudget);
            return Err(self.count_rejection(e));
        }
        let shard = self
            .locate(id)
            .ok_or_else(|| Error::config("serve", format!("no live session {id}")))?;
        let session = self.shards[shard]
            .session_mut(id)
            .expect("located session exists");
        let n = frames.len();
        session.push(frames);
        self.admission.on_enqueue(n);
        Ok(())
    }

    /// Mark a session's input complete; it finalizes once scored through.
    /// Unknown ids are a no-op (the session may already have finished).
    pub fn close_input(&mut self, id: SessionId) {
        if let Some(shard) = self.locate(id) {
            if let Some(s) = self.shards[shard].session_mut(id) {
                s.close_input();
            }
        }
    }

    /// The best hypothesis a live session holds right now (`None` once the
    /// session has finalized — its result is in
    /// [`ShardedScheduler::take_completed`]).
    pub fn partial(&self, id: SessionId) -> Option<PartialHypothesis> {
        let shard = self.locate(id)?;
        self.shards[shard].session(id).map(Session::partial)
    }

    /// One engine cycle: rebalance (work stealing) → step every busy shard
    /// (in parallel when 2+ have sessions) → sweep results and report
    /// budget transitions to admission.
    pub fn step(&mut self) -> Result<StepStats, Error> {
        let _span = trace::span!("serve.step");
        self.stats.steps += 1;
        let steals = self.rebalance();
        let shard_steps = self.step_shards();
        let mut agg = StepStats {
            steals,
            ..StepStats::default()
        };
        for st in &shard_steps {
            agg.scored_frames += st.scored_frames;
            agg.batch_sessions += st.batch_sessions;
            agg.completed += st.completed;
            // Flags the shards counted at reap time (sessions that flagged
            // and finished inside this very step); the sweep below adds
            // the still-live ones it downgrades.
            agg.flagged += st.flagged;
            self.admission
                .on_scored(st.scored_frames + st.freed_unscored);
            for _ in 0..st.completed {
                self.admission.on_close();
            }
            self.stats.failed += st.failed as u64;
            if st.scored_frames > 0 {
                self.stats.batches += 1;
            }
            self.stats.peak_batch_frames = self.stats.peak_batch_frames.max(st.scored_frames);
        }
        self.stats.scored_frames += agg.scored_frames as u64;
        self.stats.completed += agg.completed as u64;
        self.stats.steals += steals as u64;
        agg.flagged += self.sweep_flagged()?;
        self.stats.flagged += agg.flagged as u64;
        self.record_memo_delta();
        for shard in &mut self.shards {
            self.completed.append(&mut shard.completed);
        }
        trace::gauge("serve.queue.depth", self.admission.queued_frames() as f64);
        trace::gauge("serve.sessions.active", self.active_sessions() as f64);
        self.publish_exposition(false);
        Ok(agg)
    }

    /// Graceful shutdown: stop admitting, close every session's input,
    /// step until every shard is empty, and hand back everything served.
    /// Terminates unconditionally — every remaining session either
    /// contributes to some shard's next batch or reaps as done, so each
    /// step makes progress no matter how sessions migrate.
    pub fn drain(&mut self) -> Result<Vec<ServedResult>, Error> {
        self.admission.begin_drain();
        for shard in &mut self.shards {
            for s in shard.sessions_mut() {
                s.close_input();
            }
        }
        while self.active_sessions() > 0 {
            self.step()?;
        }
        // Scrapers polling through a drain see the final state, not a
        // snapshot from up to one publish interval earlier.
        self.publish_exposition(true);
        Ok(self.take_completed())
    }

    /// Results finalized since the last call (submit order not guaranteed;
    /// each carries its [`SessionId`]).
    pub fn take_completed(&mut self) -> Vec<ServedResult> {
        for shard in &mut self.shards {
            self.completed.append(&mut shard.completed);
        }
        std::mem::take(&mut self.completed)
    }

    /// Serialize a live session out of the engine at the current frame
    /// boundary (destructive: its budget is released and the session is
    /// gone; see [`SessionCheckpoint`]). Errored sessions refuse — their
    /// result is already decided, reap it via [`ShardedScheduler::step`].
    pub fn checkpoint(&mut self, id: SessionId) -> Result<SessionCheckpoint, Error> {
        let shard = self
            .locate(id)
            .ok_or_else(|| Error::config("serve.checkpoint", format!("no live session {id}")))?;
        let ckpt = self.shards[shard]
            .session(id)
            .expect("located session exists")
            .checkpoint()?;
        let session = self.shards[shard]
            .export(id)
            .expect("located session exists");
        self.admission.on_scored(session.pending_unscored());
        self.admission.on_close();
        self.stats.checkpoints += 1;
        trace::counter("serve.checkpoint", 1);
        Ok(ckpt)
    }

    /// Revive a checkpointed session on this engine (its home shard here —
    /// any shard of any engine serving the same bundle works). Re-reserves
    /// the session + queue budget through admission
    /// ([`AdmissionController::readmit`]); the restored session finishes
    /// bit-for-bit identical to an uninterrupted run.
    pub fn restore(&mut self, ckpt: &SessionCheckpoint) -> Result<SessionId, Error> {
        let id = ckpt.id();
        if self.locate(id).is_some() {
            return Err(Error::config(
                "serve.restore",
                format!("session {id} is already live on this engine"),
            ));
        }
        let bundle = if ckpt.degraded() {
            &self.degraded_bundle
        } else {
            &self.bundle
        };
        let mut session = Session::restore(
            ckpt,
            bundle.graph.clone(),
            bundle.graph_kind,
            bundle.precision,
            bundle.build_policy()?,
        )?;
        // Health is derived observation, not checkpoint state: a restored
        // session starts a fresh streak (and re-flags within one window if
        // the pathology persists).
        if let Some(detector) = self.cfg.detector {
            session = session.with_detector(detector, bundle.dense_hyps_baseline);
        }
        if let Err(e) = self.admission.readmit(ckpt.pending_frames()) {
            return Err(self.count_rejection(e));
        }
        self.admission.on_open();
        self.admission.on_enqueue(ckpt.pending_frames());
        let home = self.home(id);
        self.shards[home].adopt(session);
        // Never mint a fresh id that collides with a restored one.
        self.next_id = self.next_id.max(id.0 + 1);
        self.stats.restores += 1;
        self.stats.peak_active_sessions =
            self.stats.peak_active_sessions.max(self.active_sessions());
        trace::counter("serve.restore", 1);
        Ok(id)
    }

    pub fn active_sessions(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    pub fn queued_frames(&self) -> usize {
        self.admission.queued_frames()
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    pub fn bundle(&self) -> &ModelBundle {
        &self.bundle
    }

    /// The fleet-wide per-frame p99, nanoseconds — the SLO signal, merged
    /// exactly from the per-shard `serve.frame.ns` histograms. `None`
    /// until any frame has been scored.
    pub fn frame_p99_ns(&self) -> Option<f64> {
        self.merged_frame_histogram().map(|h| h.quantile(0.99))
    }

    /// The union of every shard's metrics (counters add, histograms
    /// merge) plus the engine's own sink — one fleet-wide snapshot for
    /// reports.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.union_recorder().snapshot()
    }

    /// The fleet-wide [`TelemetrySnapshot`]: cumulative metrics plus, when
    /// [`ServeConfig::telemetry`] is set, the live windowed rates (the
    /// cross-shard window merge is exact — slots align on absolute time).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.union_recorder().telemetry_snapshot()
    }

    /// Where the exposition endpoint is listening (`None` when
    /// [`ServeConfig::exporter_port`] is unset). With port 0 this is how
    /// the caller learns the ephemeral port.
    pub fn exporter_addr(&self) -> Option<std::net::SocketAddr> {
        self.exporter.as_ref().map(Exporter::local_addr)
    }

    fn union_recorder(&self) -> SharedRecorder {
        let union = match self.cfg.telemetry {
            Some(window) => SharedRecorder::windowed(window),
            None => SharedRecorder::new(),
        };
        union.absorb(&self.recorder);
        for shard in &self.shards {
            union.absorb(&shard.recorder);
        }
        union
    }

    /// Detector bookkeeping, after the shards step: every freshly flagged
    /// session is downgraded to the degraded tier (fresh policy from the
    /// degraded bundle — policies are per-frame, so the swap takes over at
    /// the session's next advance), counted on its shard's sink and typed
    /// in admission. No-op when the detector is off.
    fn sweep_flagged(&mut self) -> Result<usize, Error> {
        if self.cfg.detector.is_none() {
            return Ok(0);
        }
        let mut flagged = 0;
        for shard in &mut self.shards {
            let recorder = shard.recorder.clone();
            for s in shard.sessions_mut() {
                if !s.needs_degrade() {
                    continue;
                }
                s.degrade(self.degraded_bundle.build_policy()?);
                recorder.counter("serve.detector.flagged", 1);
                if let Some(at) = s.flagged_at() {
                    recorder.sample("serve.detector.frames_to_flag", at as f64);
                }
                self.admission.on_detector_degrade();
                flagged += 1;
            }
        }
        Ok(flagged)
    }

    /// Surface the shared graph's memo-cache counters as per-step deltas
    /// (satellite of ISSUE 9): the graph is one engine-wide `Arc`, so the
    /// delta is taken once per step against [`Self::last_memo`] — never
    /// per session, which would multiply-count the shared cache. Eager
    /// graphs have no memo and skip this entirely.
    fn record_memo_delta(&mut self) {
        let Some(stats) = self.bundle.graph.memo_stats() else {
            return;
        };
        let last = std::mem::replace(&mut self.last_memo, stats);
        self.recorder
            .counter("wfst.memo.hits", stats.hits.saturating_sub(last.hits));
        self.recorder
            .counter("wfst.memo.misses", stats.misses.saturating_sub(last.misses));
        self.recorder.counter(
            "wfst.memo.evictions",
            stats.evictions.saturating_sub(last.evictions),
        );
        self.recorder
            .gauge("wfst.memo.resident_states", stats.resident as f64);
    }

    /// Re-render the fleet snapshot for the exposition endpoint, at most
    /// every [`PUBLISH_INTERVAL_NS`] (`force` skips the throttle — drain
    /// publishes the final state). No-op without an exporter.
    fn publish_exposition(&mut self, force: bool) {
        if self.exporter.is_none() {
            return;
        }
        let now = trace::now_ns();
        let throttled = self
            .last_publish_ns
            .is_some_and(|last| now.saturating_sub(last) < PUBLISH_INTERVAL_NS);
        if !force && throttled {
            return;
        }
        self.last_publish_ns = Some(now);
        let exposition = self.render_exposition();
        if let Some(exporter) = &self.exporter {
            exporter.publish(exposition);
        }
    }

    /// Render the fleet state in both exposition formats: Prometheus text
    /// (fleet-wide series, per-shard labelled series, and one
    /// `darkside_serve_session_frames` gauge per live session) and one
    /// JSONL event carrying the [`TelemetrySnapshot`] plus per-shard and
    /// per-session tables.
    fn render_exposition(&self) -> Exposition {
        use std::fmt::Write as _;
        let telemetry = self.telemetry();
        let mut prometheus = telemetry.to_prometheus();
        let mut shards_json = Vec::new();
        let mut sessions_json = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let label = i.to_string();
            render_prometheus(
                &mut prometheus,
                &shard.recorder.snapshot(),
                &[("shard", &label)],
            );
            shards_json.push(Json::obj(vec![
                ("shard", (i as u64).into()),
                ("sessions", (shard.len() as u64).into()),
                ("ready_frames", (shard.ready_frames() as u64).into()),
            ]));
            for s in shard.sessions() {
                let _ = writeln!(
                    prometheus,
                    "darkside_serve_session_frames{{shard=\"{i}\",session=\"{}\",\
                     degraded=\"{}\",flagged=\"{}\"}} {}",
                    s.id(),
                    s.is_degraded(),
                    s.flagged_at().is_some(),
                    s.frames_in(),
                );
                sessions_json.push(Json::obj(vec![
                    ("id", Json::Str(s.id().to_string())),
                    ("shard", (i as u64).into()),
                    ("frames_in", (s.frames_in() as u64).into()),
                    ("ready", (s.ready() as u64).into()),
                    ("degraded", s.is_degraded().into()),
                    (
                        "flagged_at",
                        match s.flagged_at() {
                            Some(at) => (at as u64).into(),
                            None => Json::Null,
                        },
                    ),
                ]));
            }
        }
        let event = Json::obj(vec![
            ("telemetry", telemetry.to_json()),
            ("shards", Json::Arr(shards_json)),
            ("sessions", Json::Arr(sessions_json)),
        ]);
        Exposition {
            prometheus,
            event_json: event.render(),
        }
    }

    fn home(&self, id: SessionId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    /// Find the shard holding `id`: home first (the common case), then a
    /// scan (the session may have been stolen or restored elsewhere).
    fn locate(&self, id: SessionId) -> Option<usize> {
        let home = self.home(id);
        if self.shards[home].session(id).is_some() {
            return Some(home);
        }
        (0..self.shards.len()).find(|&i| i != home && self.shards[i].session(id).is_some())
    }

    /// The observed p99 admission should judge against: `None` when no
    /// SLO is configured (skip the histogram locks entirely) or while the
    /// fleet has fewer than [`SLO_WARMUP_SAMPLES`] frame samples.
    fn slo_observation(&self) -> Option<f64> {
        self.cfg.slo_p99_ms?;
        let merged = self.merged_frame_histogram()?;
        if merged.count() < SLO_WARMUP_SAMPLES {
            return None;
        }
        Some(merged.quantile(0.99))
    }

    fn merged_frame_histogram(&self) -> Option<LogHistogram> {
        let mut merged: Option<LogHistogram> = None;
        for shard in &self.shards {
            if let Some(h) = shard.recorder.histogram("serve.frame.ns") {
                match &mut merged {
                    Some(m) => m.merge(&h),
                    None => merged = Some(h),
                }
            }
        }
        merged.filter(|m| m.count() > 0)
    }

    /// Work stealing, phase 1 of [`ShardedScheduler::step`]: each shard
    /// with zero ready frames takes one ready session from the busiest
    /// shard — if that donor has at least
    /// [`crate::ServeConfig::steal_threshold`] ready frames spread over
    /// ≥ 2 ready sessions (never strand the donor, never ping-pong a lone
    /// session). Runs single-threaded between shard steps, so the hot
    /// path stays lock-free.
    fn rebalance(&mut self) -> usize {
        if self.cfg.steal_threshold == 0 || self.shards.len() < 2 {
            return 0;
        }
        let mut moved = 0;
        for thief in 0..self.shards.len() {
            if self.shards[thief].ready_frames() > 0 {
                continue;
            }
            let donor = (0..self.shards.len())
                .filter(|&i| i != thief)
                .filter(|&i| {
                    self.shards[i].ready_sessions() >= 2
                        && self.shards[i].ready_frames() >= self.cfg.steal_threshold
                })
                .max_by_key(|&i| self.shards[i].ready_frames());
            let Some(donor) = donor else { continue };
            let Some(victim) = self.shards[donor].steal_candidate() else {
                continue;
            };
            let session = self.shards[donor]
                .export(victim)
                .expect("steal candidate exists");
            self.shards[thief].adopt(session);
            trace::counter("serve.steals", 1);
            moved += 1;
        }
        moved
    }

    /// Phase 2: run every non-empty shard's micro-batch cycle. One busy
    /// shard steps inline; two or more step on parallel scoped threads,
    /// each recording into its own shard sink.
    fn step_shards(&mut self) -> Vec<ShardStep> {
        let busy: Vec<&mut Shard> = self.shards.iter_mut().filter(|s| !s.is_empty()).collect();
        if busy.len() <= 1 {
            return busy.into_iter().map(|s| s.step()).collect();
        }
        let mut out = Vec::with_capacity(busy.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = busy
                .into_iter()
                .map(|shard| scope.spawn(move || shard.step()))
                .collect();
            for h in handles {
                out.push(h.join().expect("shard step panicked"));
            }
        });
        out
    }

    /// Mirror a typed rejection into trace counters keyed by the same
    /// variant, then pass the error through.
    fn count_rejection(&mut self, e: Error) -> Error {
        if let Some(reason) = e.reject_reason() {
            trace::counter("serve.rejected", 1);
            match reason {
                RejectReason::Draining => trace::counter("serve.rejected.draining", 1),
                RejectReason::SessionBudget => trace::counter("serve.rejected.session_budget", 1),
                RejectReason::QueueBudget => trace::counter("serve.rejected.queue_budget", 1),
                RejectReason::SloBreach => trace::counter("serve.rejected.slo_breach", 1),
            }
        }
        e
    }
}

/// The degraded operating point: beam narrowed, policy downgraded to the
/// paper's bounded loose N-best (which caps per-frame survivors no matter
/// how much pruning inflated the search — exactly the property overload
/// shedding wants). A bundle already on N-best keeps its table geometry.
fn degraded(bundle: &ModelBundle) -> ModelBundle {
    let beam = BeamConfig {
        beam: bundle.beam.beam * DEGRADED_BEAM_SCALE,
        ..bundle.beam
    };
    let policy = match bundle.policy {
        PolicyKind::LooseNBest(cfg) => PolicyKind::LooseNBest(cfg),
        PolicyKind::Beam | PolicyKind::UnfoldHash(_) => PolicyKind::LooseNBest(DEGRADED_TABLE),
    };
    bundle.with_policy(policy, beam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_core::{Pipeline, PipelineConfig, ServableSpec};
    use darkside_nn::Rng;

    /// An untrained smoke pipeline: model quality is irrelevant to the
    /// scheduler mechanics, and skipping training keeps these tests fast.
    fn test_bundle() -> ModelBundle {
        let config = PipelineConfig::smoke().with_training(0, 0);
        Pipeline::build(config)
            .unwrap()
            .servable(ServableSpec::dense())
            .unwrap()
    }

    fn test_config() -> ServeConfig {
        // Deterministic shard count regardless of host cores.
        ServeConfig::default().with_shards(2)
    }

    fn utterances(bundle: &ModelBundle, n: usize, len: usize, seed: u64) -> Vec<Vec<Frame>> {
        let dim = bundle.scorer.input_dim();
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                (0..len)
                    .map(|_| Frame((0..dim).map(|_| rng.normal()).collect()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn serves_concurrent_sessions_to_completion_across_shards() {
        let bundle = test_bundle();
        let mut engine = ShardedScheduler::build(
            bundle.clone(),
            test_config().with_workers(2).with_max_batch_frames(16),
        )
        .unwrap();
        let utts = utterances(&bundle, 6, 11, 0xA);
        let mut ids = Vec::new();
        for u in utts {
            match engine.offer(u).unwrap() {
                SubmitResponse::Admitted(id) => ids.push(id),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(engine.active_sessions(), 6);
        // Sessions hashed onto both shards by id.
        assert_eq!(engine.shards[0].len(), 3);
        assert_eq!(engine.shards[1].len(), 3);
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 6);
        assert_eq!(engine.active_sessions(), 0);
        assert_eq!(engine.queued_frames(), 0);
        for r in &served {
            let d = r.decode.as_ref().unwrap();
            assert_eq!(d.stats.active_tokens.len(), 11);
            assert!(r.latency_ns > 0);
        }
        let mut served_ids: Vec<_> = served.iter().map(|r| r.id).collect();
        served_ids.sort();
        assert_eq!(served_ids, ids);
        let stats = engine.stats();
        assert_eq!(stats.scored_frames, 66);
        assert!(stats.peak_batch_frames <= 16);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
        // Per-frame latency evidence accumulated across shard sinks.
        assert!(engine.frame_p99_ns().unwrap() > 0.0);
        assert_eq!(engine.metrics().counters["serve.session.completed"], 6);
    }

    #[test]
    fn over_budget_offers_are_typed_rejections_not_queued() {
        let bundle = test_bundle();
        let mut engine = ShardedScheduler::build(
            bundle.clone(),
            test_config()
                .with_max_sessions(3)
                .with_degrade_fraction(1.0),
        )
        .unwrap();
        let utts = utterances(&bundle, 5, 4, 0xB);
        let mut rejected = 0;
        for u in utts {
            if let Err(e) = engine.offer(u) {
                assert_eq!(e.reject_reason(), Some(RejectReason::SessionBudget));
                rejected += 1;
            }
        }
        assert_eq!(rejected, 2);
        assert_eq!(engine.active_sessions(), 3);
        // The budget frees as sessions finish; the engine drains clean.
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 3);
        assert_eq!(engine.admission().rejected(), 2);
        assert_eq!(
            engine.admission().rejections(RejectReason::SessionBudget),
            2
        );
    }

    #[test]
    fn overload_degrades_sessions_to_the_bounded_policy() {
        let bundle = test_bundle();
        let mut engine = ShardedScheduler::build(
            bundle.clone(),
            test_config()
                .with_max_sessions(4)
                .with_degrade_fraction(0.5),
        )
        .unwrap();
        let utts = utterances(&bundle, 4, 4, 0xC);
        let mut responses = Vec::new();
        for u in utts {
            responses.push(engine.offer(u).unwrap());
        }
        assert!(matches!(responses[0], SubmitResponse::Admitted(_)));
        assert!(matches!(responses[1], SubmitResponse::Admitted(_)));
        assert!(matches!(responses[2], SubmitResponse::Degraded(_)));
        assert!(matches!(responses[3], SubmitResponse::Degraded(_)));
        let served = engine.drain().unwrap();
        assert_eq!(served.iter().filter(|r| r.degraded).count(), 2);
        // Degraded sessions still produce decodes.
        for r in &served {
            assert!(r.decode.is_ok());
        }
    }

    #[test]
    fn streaming_push_partials_and_backpressure() {
        let bundle = test_bundle();
        let mut engine = ShardedScheduler::build(
            bundle.clone(),
            test_config()
                .with_max_queue_frames(8)
                .with_max_batch_frames(8)
                .with_degrade_fraction(1.0),
        )
        .unwrap();
        let id = engine.open(4).unwrap().id();
        let utt = utterances(&bundle, 1, 6, 0xD).pop().unwrap();
        engine.push(id, utt[..4].to_vec()).unwrap();
        // Over the queue budget: typed rejection, nothing buffered.
        let err = engine
            .push(id, utterances(&bundle, 1, 6, 0xE).pop().unwrap())
            .unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::QueueBudget));
        engine.step().unwrap();
        let partial = engine.partial(id).unwrap();
        assert_eq!(partial.frames, 4);
        engine.push(id, utt[4..].to_vec()).unwrap();
        engine.close_input(id);
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].frames, 6);
        assert!(engine.partial(id).is_none());
    }

    #[test]
    fn wrong_frame_dim_is_a_shape_error() {
        let bundle = test_bundle();
        let mut engine = ShardedScheduler::build(bundle, test_config()).unwrap();
        let id = engine.open(1).unwrap().id();
        let err = engine.push(id, vec![Frame(vec![0.0; 3])]).unwrap_err();
        assert!(matches!(err, Error::Shape { .. }));
        engine.close_input(id);
        assert_eq!(engine.drain().unwrap().len(), 1);
    }

    #[test]
    fn degraded_bundle_downgrades_beam_to_nbest() {
        let bundle = test_bundle();
        let d = degraded(&bundle);
        assert!(matches!(d.policy, PolicyKind::LooseNBest(_)));
        assert!((d.beam.beam - bundle.beam.beam * DEGRADED_BEAM_SCALE).abs() < 1e-6);
        assert_eq!(d.beam.acoustic_scale, bundle.beam.acoustic_scale);
    }

    #[test]
    fn dry_shards_steal_from_the_busiest_donor() {
        let bundle = test_bundle();
        // 4 shards, stealing kicks in at 2 ready frames. Open ids 0..4 so
        // every shard holds exactly one home session, then feed frames
        // only to the shard-0 and shard-1 sessions — shards 2/3 are dry.
        let mut engine = ShardedScheduler::build(
            bundle.clone(),
            ServeConfig::default()
                .with_shards(4)
                .with_steal_threshold(2)
                .with_max_batch_frames(2)
                .with_degrade_fraction(1.0),
        )
        .unwrap();
        let utts = utterances(&bundle, 2, 12, 0xF);
        let mut ids = Vec::new();
        for (i, u) in utts.into_iter().enumerate() {
            // Sessions 0 and 1: long utterances, still streaming (input
            // open, so they stay alive as frames drain).
            let id = engine.open(12).unwrap().id();
            assert_eq!(id.0, i as u64);
            engine.push(id, u).unwrap();
            ids.push(id);
        }
        // Two more sessions (home shards 2 and 3) with no frames at all.
        for _ in 0..2 {
            engine.open(0).unwrap();
        }
        assert_eq!(engine.shards[2].ready_frames(), 0);
        // Shards 2 and 3 are dry but there is only ONE ready session per
        // busy shard — no ping-pong of a lone session.
        let st = engine.step().unwrap();
        assert_eq!(st.steals, 0);
        // Now pile a second ready session onto shard 0: donor has 2 ready
        // sessions and enough frames, so a dry shard may steal.
        let id4 = engine.open(12).unwrap().id();
        assert_eq!(engine.home(id4), 0);
        engine
            .push(id4, utterances(&bundle, 1, 12, 0x10).pop().unwrap())
            .unwrap();
        let st = engine.step().unwrap();
        assert!(st.steals > 0, "dry shard should have stolen: {st:?}");
        assert!(engine.stats().steals > 0);
        // Stolen sessions remain addressable (locate scans past home).
        for id in ids {
            engine.close_input(id);
        }
        engine.close_input(id4);
        for i in 0..4u64 {
            engine.close_input(SessionId(i + 2));
        }
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 5);
    }

    #[test]
    fn checkpoint_releases_budget_and_restore_reclaims_it() {
        let bundle = test_bundle();
        let mut engine = ShardedScheduler::build(
            bundle.clone(),
            test_config()
                .with_max_sessions(2)
                .with_max_batch_frames(4)
                .with_degrade_fraction(1.0),
        )
        .unwrap();
        let utt = utterances(&bundle, 1, 9, 0x11).pop().unwrap();
        let id = engine.offer(utt).unwrap().id();
        engine.step().unwrap();
        let queued_before = engine.queued_frames();
        let ckpt = engine.checkpoint(id).unwrap();
        assert_eq!(engine.active_sessions(), 0);
        assert_eq!(engine.queued_frames(), 0);
        assert!(queued_before >= ckpt.pending_frames());
        // Unknown id now.
        assert!(engine.checkpoint(id).is_err());
        // Restore revives it; double-restore is rejected.
        let back = engine.restore(&ckpt).unwrap();
        assert_eq!(back, id);
        assert!(engine.restore(&ckpt).is_err());
        assert_eq!(engine.queued_frames(), ckpt.pending_frames());
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].frames, 9);
        assert!(served[0].decode.is_ok());
        let stats = engine.stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.restores, 1);
    }

    #[test]
    fn lazy_graph_memo_counters_surface_per_step() {
        // A lazy-composed graph has a memo; serving must surface its
        // traffic as engine-level counters (ISSUE 9 satellite). The delta
        // baseline is taken at build, so the servable-export probe decode
        // does not leak into serving counters.
        let config = PipelineConfig::smoke()
            .with_training(0, 0)
            .with_lazy_graph(256);
        let bundle = Pipeline::build(config)
            .unwrap()
            .servable(ServableSpec::dense())
            .unwrap();
        let mut engine = ShardedScheduler::build(bundle.clone(), test_config()).unwrap();
        for u in utterances(&bundle, 2, 6, 0x20) {
            engine.offer(u).unwrap();
        }
        engine.drain().unwrap();
        let metrics = engine.metrics();
        let hits = metrics.counters.get("wfst.memo.hits").copied().unwrap_or(0);
        let misses = metrics
            .counters
            .get("wfst.memo.misses")
            .copied()
            .unwrap_or(0);
        assert!(
            hits + misses > 0,
            "lazy serving must touch the memo: {:?}",
            metrics.counters
        );
        assert!(
            metrics.gauges.contains_key("wfst.memo.resident_states"),
            "{:?}",
            metrics.gauges
        );
        // An eager engine surfaces none of this.
        let eager = test_bundle();
        let mut engine = ShardedScheduler::build(eager.clone(), test_config()).unwrap();
        for u in utterances(&eager, 1, 4, 0x21) {
            engine.offer(u).unwrap();
        }
        engine.drain().unwrap();
        assert!(!engine.metrics().counters.contains_key("wfst.memo.hits"));
    }

    #[test]
    fn fresh_ids_never_collide_with_restored_sessions() {
        let bundle = test_bundle();
        let mut engine = ShardedScheduler::build(bundle.clone(), test_config()).unwrap();
        let utt = utterances(&bundle, 1, 5, 0x12).pop().unwrap();
        let id = engine.offer(utt).unwrap().id();
        let ckpt = engine.checkpoint(id).unwrap();
        // A second engine restores the session, then opens new ones.
        let mut other = ShardedScheduler::build(bundle, test_config()).unwrap();
        other.restore(&ckpt).unwrap();
        let fresh = other.open(0).unwrap().id();
        assert!(fresh.0 > id.0, "fresh {fresh} collides with restored {id}");
        other.close_input(fresh);
        let served = other.drain().unwrap();
        assert_eq!(served.len(), 2);
    }
}
