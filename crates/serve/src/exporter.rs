//! The metrics exposition endpoint (ISSUE 9): a zero-dependency TCP
//! server publishing the engine's fleet snapshot in two formats.
//!
//! * `GET /metrics` — Prometheus text exposition: the fleet-wide merged
//!   [`darkside_trace::TelemetrySnapshot`], per-shard labelled series, and
//!   one gauge per live session. One response per connection.
//! * `GET /events` — a JSONL stream: every time the scheduler publishes a
//!   new snapshot, one JSON object is written as a line. The connection
//!   stays open until the client hangs up or the exporter shuts down.
//!
//! The engine's stepping thread *renders* ([`Exporter::publish`]); the
//! exporter's background thread only ever *serves* the last rendered
//! [`Exposition`] — a scrape never touches a recorder, a mutex on the hot
//! path, or the scheduler itself. `std::net` only, per the workspace's
//! no-external-deps rule (the same reason this speaks just enough HTTP/1.0
//! for `curl` and a Prometheus scraper: request line in, full response
//! out, connection close delimits the body).

use darkside_error::Error;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How often a `/events` streamer checks for a new generation.
const EVENT_POLL: Duration = Duration::from_millis(10);

/// One rendered fleet snapshot, in both exposition formats.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// Prometheus text exposition (`GET /metrics`).
    pub prometheus: String,
    /// One JSON object, no trailing newline (`GET /events` appends one per
    /// publish).
    pub event_json: String,
}

struct ExporterState {
    shutdown: AtomicBool,
    /// Generation counter + the latest snapshot; the generation lets an
    /// `/events` streamer emit each publish exactly once.
    exposition: Mutex<(u64, Exposition)>,
}

/// The background exposition server. Bound at construction (so the port is
/// known immediately), serving until dropped.
pub struct Exporter {
    addr: SocketAddr,
    state: Arc<ExporterState>,
    acceptor: Option<JoinHandle<()>>,
}

impl Exporter {
    /// Bind `127.0.0.1:port` (0 picks an ephemeral port — read it back via
    /// [`Exporter::local_addr`]) and start the acceptor thread.
    pub fn start(port: u16) -> Result<Self, Error> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| Error::config("Exporter", format!("bind 127.0.0.1:{port}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::config("Exporter", format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::config("Exporter", format!("set_nonblocking: {e}")))?;
        let state = Arc::new(ExporterState {
            shutdown: AtomicBool::new(false),
            exposition: Mutex::new((0, Exposition::default())),
        });
        let accept_state = state.clone();
        let acceptor = std::thread::spawn(move || accept_loop(listener, accept_state));
        Ok(Self {
            addr,
            state,
            acceptor: Some(acceptor),
        })
    }

    /// Where the endpoint is listening.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swap in a freshly rendered snapshot: subsequent `/metrics` scrapes
    /// serve it, and every open `/events` stream emits its JSON line.
    pub fn publish(&self, exposition: Exposition) {
        let mut slot = self
            .state
            .exposition
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        slot.0 += 1;
        slot.1 = exposition;
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ExporterState>) {
    // Handler threads park here so shutdown can wait for in-flight
    // responses instead of racing the process teardown.
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !state.shutdown.load(Ordering::SeqCst) {
        handlers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                let state = state.clone();
                handlers.push(std::thread::spawn(move || serve_connection(stream, state)));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn serve_connection(mut stream: TcpStream, state: Arc<ExporterState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    match path.as_str() {
        "/metrics" => {
            let body = {
                let slot = state.exposition.lock().unwrap_or_else(|p| p.into_inner());
                slot.1.prometheus.clone()
            };
            let _ = write!(
                stream,
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len(),
            );
        }
        "/events" => {
            if stream
                .write_all(
                    b"HTTP/1.0 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                      Connection: close\r\n\r\n",
                )
                .is_err()
            {
                return;
            }
            let mut seen = 0u64;
            while !state.shutdown.load(Ordering::SeqCst) {
                let line = {
                    let slot = state.exposition.lock().unwrap_or_else(|p| p.into_inner());
                    (slot.0 > seen).then(|| {
                        seen = slot.0;
                        slot.1.event_json.clone()
                    })
                };
                match line {
                    Some(line) => {
                        if writeln!(stream, "{line}")
                            .and_then(|()| stream.flush())
                            .is_err()
                        {
                            return; // client hung up
                        }
                    }
                    None => std::thread::sleep(EVENT_POLL),
                }
            }
        }
        _ => {
            let _ = stream.write_all(
                b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            );
        }
    }
}

/// Read the request line (`GET <path> HTTP/1.x`) and return the path.
/// Anything malformed — wrong method, no path, client timeout — is `None`
/// and the connection just closes.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 1024];
    let mut filled = 0;
    // Read until the request line is complete (terminated by "\r\n"); the
    // buffer bounds a hostile or babbling client.
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(2).any(|w| w == b"\r\n") {
                    break;
                }
            }
        }
    }
    let text = std::str::from_utf8(&buf[..filled]).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    parts.next().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_published_prometheus_text_and_404s_elsewhere() {
        let exporter = Exporter::start(0).unwrap();
        let addr = exporter.local_addr();
        exporter.publish(Exposition {
            prometheus: "darkside_up 1\n".into(),
            event_json: "{\"up\":true}".into(),
        });
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        assert!(response.contains("darkside_up 1"), "{response}");
        // Re-publish replaces the body wholesale.
        exporter.publish(Exposition {
            prometheus: "darkside_up 2\n".into(),
            event_json: "{\"up\":2}".into(),
        });
        let response = http_get(addr, "/metrics");
        assert!(response.contains("darkside_up 2"), "{response}");
        assert!(!response.contains("darkside_up 1"), "{response}");
        let response = http_get(addr, "/nope");
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
    }

    #[test]
    fn event_stream_emits_one_line_per_publish() {
        let exporter = Exporter::start(0).unwrap();
        let addr = exporter.local_addr();
        exporter.publish(Exposition {
            prometheus: String::new(),
            event_json: "{\"n\":1}".into(),
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /events HTTP/1.0\r\n\r\n").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 4096];
        // First line arrives from the snapshot published before connecting.
        while !String::from_utf8_lossy(&got).contains("{\"n\":1}\n") {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "stream closed early");
            got.extend_from_slice(&buf[..n]);
        }
        // The second only after the next publish.
        exporter.publish(Exposition {
            prometheus: String::new(),
            event_json: "{\"n\":2}".into(),
        });
        while !String::from_utf8_lossy(&got).contains("{\"n\":2}\n") {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "stream closed early");
            got.extend_from_slice(&buf[..n]);
        }
        let text = String::from_utf8_lossy(&got);
        assert_eq!(text.matches("{\"n\":1}").count(), 1, "{text}");
        drop(exporter); // shutdown closes the stream rather than hanging it
    }

    #[test]
    fn exporter_shuts_down_on_drop_and_frees_the_port() {
        let exporter = Exporter::start(0).unwrap();
        let addr = exporter.local_addr();
        drop(exporter);
        // The acceptor has exited; the port can be rebound.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }
}
