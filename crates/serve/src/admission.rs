//! Admission control (ISSUE 5, redesigned in ISSUE 7): bounded budgets
//! plus a live latency SLO, with typed shed decisions.
//!
//! The serving engine never queues unboundedly. Every utterance offer is
//! judged against the session budget, the frame-queue budget, and — when
//! [`crate::ServeConfig::slo_p99_ms`] is set — the *observed* per-frame
//! p99 latency the shards are currently delivering, and gets one of three
//! explicit answers:
//!
//! * **`Ok(Admission::Full)`** — full-quality service under the bundle's
//!   policy;
//! * **`Ok(Admission::Degraded)`** — served, but under a narrowed beam and
//!   the bounded loose N-best policy (the paper's own mitigation: cap
//!   per-frame work so a pruning-inflated search cannot take the tail
//!   down with it). Chosen when either budget is past
//!   [`crate::ServeConfig::degrade_fraction`] occupancy, **or** the
//!   observed p99 is past the SLO target;
//! * **`Err(Error::Rejected { .. })`** — shed, with a typed
//!   [`RejectReason`] (`Draining`, `SessionBudget`, `QueueBudget`, or
//!   `SloBreach` when the observed p99 is past 2× the target). The caller
//!   sheds the request instead of the engine deadlocking or growing
//!   without bound, and per-reason counters key off the same variants.
//!
//! The SLO signal is latency-first admission: occupancy budgets bound
//! *memory*, but a pruning-inflated search can blow the tail while the
//! queue looks healthy — the controller reads the fleet-wide
//! `serve.frame.ns` p99 (merged from the per-shard recorders by
//! [`crate::ShardedScheduler`]) and sheds on evidence, not occupancy.
//!
//! The controller is pure bookkeeping — the scheduler asks it for
//! decisions and reports session/queue transitions back — so its decision
//! table is unit-testable without threads or models.

use crate::ServeConfig;
use darkside_error::{Error, RejectReason};

/// How an admitted offer will be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Full-quality service under the bundle's policy.
    Full,
    /// Narrowed beam + bounded N-best policy.
    Degraded,
}

/// Budget + SLO bookkeeping for the serving engine. Built by
/// [`crate::ShardedScheduler::build`] from a validated [`ServeConfig`].
#[derive(Debug)]
pub struct AdmissionController {
    max_sessions: usize,
    max_queue_frames: usize,
    degrade_fraction: f64,
    /// SLO target in nanoseconds (from [`ServeConfig::slo_p99_ms`]).
    slo_p99_ns: Option<f64>,
    active: usize,
    queued_frames: usize,
    draining: bool,
    admitted: u64,
    degraded: u64,
    /// Sessions the dark-side detector downgraded mid-stream (ISSUE 9) —
    /// typed separately from `degraded` (admission-time degrades), so the
    /// two degrade paths stay distinguishable in reports.
    detector_degraded: u64,
    /// Cumulative rejections, indexed parallel to [`RejectReason::ALL`].
    rejected_by: [u64; RejectReason::ALL.len()],
}

fn reason_index(reason: RejectReason) -> usize {
    RejectReason::ALL
        .iter()
        .position(|r| *r == reason)
        .expect("RejectReason::ALL covers every variant")
}

impl AdmissionController {
    pub(crate) fn new(cfg: &ServeConfig) -> Self {
        Self {
            max_sessions: cfg.max_sessions,
            max_queue_frames: cfg.max_queue_frames,
            degrade_fraction: cfg.degrade_fraction,
            slo_p99_ns: cfg.slo_p99_ms.map(|ms| ms * 1e6),
            active: 0,
            queued_frames: 0,
            draining: false,
            admitted: 0,
            degraded: 0,
            detector_degraded: 0,
            rejected_by: [0; RejectReason::ALL.len()],
        }
    }

    /// Judge an offer of one utterance expected to buffer `frames_hint`
    /// frames, given the currently observed fleet-wide per-frame p99
    /// (`None` until enough samples exist), and record the decision. On
    /// `Ok` the caller opens the session ([`AdmissionController::on_open`])
    /// and enqueues its frames; a rejection changes no budget state.
    pub fn offer(
        &mut self,
        frames_hint: usize,
        observed_p99_ns: Option<f64>,
    ) -> Result<Admission, Error> {
        match self.decide(frames_hint, observed_p99_ns) {
            Ok(Admission::Full) => {
                self.admitted += 1;
                Ok(Admission::Full)
            }
            Ok(Admission::Degraded) => {
                self.degraded += 1;
                Ok(Admission::Degraded)
            }
            Err(reason) => {
                self.rejected_by[reason_index(reason)] += 1;
                Err(Error::rejected("serve.offer", reason))
            }
        }
    }

    fn decide(
        &self,
        frames_hint: usize,
        observed_p99_ns: Option<f64>,
    ) -> Result<Admission, RejectReason> {
        if self.draining {
            return Err(RejectReason::Draining);
        }
        if self.active >= self.max_sessions {
            return Err(RejectReason::SessionBudget);
        }
        if self.queued_frames + frames_hint > self.max_queue_frames {
            return Err(RejectReason::QueueBudget);
        }
        let mut slo_degrade = false;
        if let (Some(slo), Some(p99)) = (self.slo_p99_ns, observed_p99_ns) {
            if p99 > 2.0 * slo {
                return Err(RejectReason::SloBreach);
            }
            slo_degrade = p99 > slo;
        }
        let session_load = (self.active + 1) as f64 / self.max_sessions as f64;
        let queue_load = (self.queued_frames + frames_hint) as f64 / self.max_queue_frames as f64;
        if slo_degrade || session_load.max(queue_load) > self.degrade_fraction {
            Ok(Admission::Degraded)
        } else {
            Ok(Admission::Full)
        }
    }

    /// Budget check for restoring a checkpointed session
    /// ([`crate::ShardedScheduler::restore`]): the session's quality tier
    /// is already decided (it travels in the checkpoint), so only the
    /// draining flag and the hard budgets apply — no degrade decision, no
    /// SLO gate. Counts as an admission on success.
    pub fn readmit(&mut self, frames_hint: usize) -> Result<(), Error> {
        let reason = if self.draining {
            Some(RejectReason::Draining)
        } else if self.active >= self.max_sessions {
            Some(RejectReason::SessionBudget)
        } else if self.queued_frames + frames_hint > self.max_queue_frames {
            Some(RejectReason::QueueBudget)
        } else {
            None
        };
        match reason {
            Some(reason) => {
                self.rejected_by[reason_index(reason)] += 1;
                Err(Error::rejected("serve.restore", reason))
            }
            None => {
                self.admitted += 1;
                Ok(())
            }
        }
    }

    /// A session opened (post-`offer` accept).
    pub fn on_open(&mut self) {
        self.active += 1;
    }

    /// A session finalized, failed, or checkpointed out of the engine.
    pub fn on_close(&mut self) {
        self.active = self.active.saturating_sub(1);
    }

    /// `n` frames buffered into a session's pending queue.
    pub fn on_enqueue(&mut self, n: usize) {
        self.queued_frames += n;
    }

    /// `n` pending frames consumed by a scored micro-batch (or released by
    /// a reaped/checkpointed session).
    pub fn on_scored(&mut self, n: usize) {
        self.queued_frames = self.queued_frames.saturating_sub(n);
    }

    /// Whether `n` more frames fit the queue budget (streaming pushes into
    /// an already-open session).
    pub fn queue_has_room(&self, n: usize) -> bool {
        self.queued_frames + n <= self.max_queue_frames
    }

    /// Stop admitting; existing sessions run to completion.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    pub fn is_draining(&self) -> bool {
        self.draining
    }

    pub fn active_sessions(&self) -> usize {
        self.active
    }

    pub fn queued_frames(&self) -> usize {
        self.queued_frames
    }

    /// Offers admitted at full quality.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Offers admitted degraded.
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    /// A live session was flagged by the dark-side detector and downgraded
    /// mid-stream (the scheduler's [`crate::ShardedScheduler::step`]
    /// sweep).
    pub fn on_detector_degrade(&mut self) {
        self.detector_degraded += 1;
    }

    /// Sessions downgraded mid-stream by the dark-side detector (distinct
    /// from [`AdmissionController::degraded`], which counts admission-time
    /// degrades).
    pub fn detector_degraded(&self) -> u64 {
        self.detector_degraded
    }

    /// Total rejections, every reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_by.iter().sum()
    }

    /// Rejections for one typed reason — the same variant the
    /// corresponding [`Error::Rejected`] carried.
    pub fn rejections(&self, reason: RejectReason) -> u64 {
        self.rejected_by[reason_index(reason)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(max_sessions: usize, max_queue: usize, degrade: f64) -> AdmissionController {
        AdmissionController::new(
            &ServeConfig::default()
                .with_max_sessions(max_sessions)
                .with_max_queue_frames(max_queue)
                .with_degrade_fraction(degrade),
        )
    }

    fn reason_of(err: Error) -> RejectReason {
        err.reject_reason()
            .expect("admission errors carry a reason")
    }

    #[test]
    fn admits_then_degrades_then_rejects_on_session_budget() {
        let mut ac = controller(4, 1000, 0.5);
        // 1/4 and 2/4 occupancy ≤ 0.5 → full quality; 3/4 and 4/4 → degraded.
        for expect in [
            Admission::Full,
            Admission::Full,
            Admission::Degraded,
            Admission::Degraded,
        ] {
            assert_eq!(ac.offer(10, None).unwrap(), expect);
            ac.on_open();
            ac.on_enqueue(10);
        }
        assert_eq!(
            reason_of(ac.offer(10, None).unwrap_err()),
            RejectReason::SessionBudget
        );
        assert_eq!(ac.admitted(), 2);
        assert_eq!(ac.degraded(), 2);
        assert_eq!(ac.rejected(), 1);
        assert_eq!(ac.rejections(RejectReason::SessionBudget), 1);
        assert_eq!(ac.rejections(RejectReason::QueueBudget), 0);
        // A finished session frees budget again.
        ac.on_close();
        ac.on_scored(40);
        assert_eq!(ac.offer(10, None).unwrap(), Admission::Degraded);
    }

    #[test]
    fn queue_budget_bounds_buffered_frames() {
        let mut ac = controller(100, 50, 1.0);
        assert_eq!(ac.offer(30, None).unwrap(), Admission::Full);
        ac.on_open();
        ac.on_enqueue(30);
        // 30 + 30 > 50: rejected outright, never buffered.
        assert_eq!(
            reason_of(ac.offer(30, None).unwrap_err()),
            RejectReason::QueueBudget
        );
        assert_eq!(ac.offer(20, None).unwrap(), Admission::Full);
        assert!(ac.queue_has_room(20));
        assert!(!ac.queue_has_room(21));
        // Scoring frees queue room.
        ac.on_scored(30);
        assert_eq!(ac.queued_frames(), 0);
        assert_eq!(ac.offer(50, None).unwrap(), Admission::Full);
    }

    #[test]
    fn draining_rejects_everything_new() {
        let mut ac = controller(4, 1000, 1.0);
        ac.begin_drain();
        assert_eq!(
            reason_of(ac.offer(1, None).unwrap_err()),
            RejectReason::Draining
        );
        assert!(ac.is_draining());
        assert_eq!(
            reason_of(ac.readmit(1).unwrap_err()),
            RejectReason::Draining
        );
    }

    #[test]
    fn degrade_fraction_one_never_degrades_on_occupancy() {
        let mut ac = controller(2, 100, 1.0);
        assert_eq!(ac.offer(100, None).unwrap(), Admission::Full);
        ac.on_open();
        assert_eq!(ac.offer(0, None).unwrap(), Admission::Full);
    }

    #[test]
    fn slo_pressure_degrades_then_sheds() {
        let slo_ms = 10.0;
        let slo_ns = slo_ms * 1e6;
        let mut ac = AdmissionController::new(
            &ServeConfig::default()
                .with_max_sessions(100)
                .with_degrade_fraction(1.0)
                .with_slo_p99_ms(slo_ms),
        );
        // Under target, or no evidence yet: full quality.
        assert_eq!(ac.offer(1, None).unwrap(), Admission::Full);
        assert_eq!(ac.offer(1, Some(slo_ns * 0.9)).unwrap(), Admission::Full);
        // Past target: degraded. Past 2× target: shed with SloBreach.
        assert_eq!(
            ac.offer(1, Some(slo_ns * 1.5)).unwrap(),
            Admission::Degraded
        );
        let err = ac.offer(1, Some(slo_ns * 2.5)).unwrap_err();
        assert_eq!(reason_of(err), RejectReason::SloBreach);
        assert_eq!(ac.rejections(RejectReason::SloBreach), 1);
        // Budgets still bind first: draining beats SLO.
        ac.begin_drain();
        assert_eq!(
            reason_of(ac.offer(1, Some(slo_ns * 9.0)).unwrap_err()),
            RejectReason::Draining
        );
    }

    #[test]
    fn readmit_checks_budgets_but_never_degrades() {
        let mut ac = controller(1, 10, 0.1);
        ac.readmit(5).unwrap();
        ac.on_open();
        ac.on_enqueue(5);
        assert_eq!(
            reason_of(ac.readmit(1).unwrap_err()),
            RejectReason::SessionBudget
        );
        ac.on_close();
        assert_eq!(
            reason_of(ac.readmit(6).unwrap_err()),
            RejectReason::QueueBudget
        );
        ac.readmit(5).unwrap();
        assert_eq!(ac.admitted(), 2);
    }
}
