//! Admission control (ISSUE 5): bounded budgets with explicit shed
//! decisions.
//!
//! The serving engine never queues unboundedly. Every utterance offer is
//! judged against two budgets — concurrent sessions and total buffered
//! (un-scored) frames — and gets one of three explicit answers:
//!
//! * **Admitted** — full-quality service under the bundle's policy;
//! * **Degraded** — served, but under a narrowed beam and the bounded
//!   loose N-best policy (the paper's own mitigation: cap per-frame work
//!   so a pruning-inflated search cannot take the tail down with it).
//!   Chosen when either budget is past
//!   [`crate::ServeConfig::degrade_fraction`] occupancy;
//! * **Rejected** — budget exhausted (or the engine is draining); the
//!   caller sheds the request instead of the engine deadlocking or
//!   growing without bound.
//!
//! The controller is pure bookkeeping — the [`crate::Scheduler`] asks it
//! for decisions and reports session/queue transitions back — so its
//! decision table is unit-testable without threads or models.

use crate::ServeConfig;

/// Why an offer was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The engine is draining toward shutdown; no new sessions.
    Draining,
    /// The concurrent-session budget is exhausted.
    SessionBudget,
    /// Buffering the utterance would exceed the frame-queue budget.
    QueueBudget,
}

/// The controller's answer to one utterance offer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    Admitted,
    Degraded,
    Rejected(RejectReason),
}

/// Budget bookkeeping for the serving engine.
#[derive(Debug)]
pub struct AdmissionController {
    max_sessions: usize,
    max_queue_frames: usize,
    degrade_fraction: f64,
    active: usize,
    queued_frames: usize,
    draining: bool,
    /// Cumulative decision counts, for reports and the load generator.
    pub admitted: u64,
    pub degraded: u64,
    pub rejected: u64,
}

impl AdmissionController {
    pub fn new(cfg: &ServeConfig) -> Self {
        Self {
            max_sessions: cfg.max_sessions,
            max_queue_frames: cfg.max_queue_frames,
            degrade_fraction: cfg.degrade_fraction,
            active: 0,
            queued_frames: 0,
            draining: false,
            admitted: 0,
            degraded: 0,
            rejected: 0,
        }
    }

    /// Judge an offer of one utterance expected to buffer `frames_hint`
    /// frames, and record the decision. On `Admitted`/`Degraded` the
    /// caller opens the session ([`AdmissionController::on_open`]) and
    /// enqueues its frames; a rejected offer changes no budget state.
    pub fn offer(&mut self, frames_hint: usize) -> Admission {
        let decision = self.decide(frames_hint);
        match decision {
            Admission::Admitted => self.admitted += 1,
            Admission::Degraded => self.degraded += 1,
            Admission::Rejected(_) => self.rejected += 1,
        }
        decision
    }

    fn decide(&self, frames_hint: usize) -> Admission {
        if self.draining {
            return Admission::Rejected(RejectReason::Draining);
        }
        if self.active >= self.max_sessions {
            return Admission::Rejected(RejectReason::SessionBudget);
        }
        if self.queued_frames + frames_hint > self.max_queue_frames {
            return Admission::Rejected(RejectReason::QueueBudget);
        }
        let session_load = (self.active + 1) as f64 / self.max_sessions as f64;
        let queue_load = (self.queued_frames + frames_hint) as f64 / self.max_queue_frames as f64;
        if session_load.max(queue_load) > self.degrade_fraction {
            Admission::Degraded
        } else {
            Admission::Admitted
        }
    }

    /// A session opened (post-`offer` accept).
    pub fn on_open(&mut self) {
        self.active += 1;
    }

    /// A session finalized or failed.
    pub fn on_close(&mut self) {
        self.active = self.active.saturating_sub(1);
    }

    /// `n` frames buffered into a session's pending queue.
    pub fn on_enqueue(&mut self, n: usize) {
        self.queued_frames += n;
    }

    /// `n` pending frames consumed by a scored micro-batch.
    pub fn on_scored(&mut self, n: usize) {
        self.queued_frames = self.queued_frames.saturating_sub(n);
    }

    /// Whether `n` more frames fit the queue budget (streaming pushes into
    /// an already-open session).
    pub fn queue_has_room(&self, n: usize) -> bool {
        self.queued_frames + n <= self.max_queue_frames
    }

    /// Stop admitting; existing sessions run to completion.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    pub fn is_draining(&self) -> bool {
        self.draining
    }

    pub fn active_sessions(&self) -> usize {
        self.active
    }

    pub fn queued_frames(&self) -> usize {
        self.queued_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(max_sessions: usize, max_queue: usize, degrade: f64) -> AdmissionController {
        AdmissionController::new(&ServeConfig {
            max_sessions,
            max_queue_frames: max_queue,
            degrade_fraction: degrade,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn admits_then_degrades_then_rejects_on_session_budget() {
        let mut ac = controller(4, 1000, 0.5);
        // 1/4 and 2/4 occupancy ≤ 0.5 → full quality; 3/4 and 4/4 → degraded.
        for expect in [
            Admission::Admitted,
            Admission::Admitted,
            Admission::Degraded,
            Admission::Degraded,
        ] {
            assert_eq!(ac.offer(10), expect);
            ac.on_open();
            ac.on_enqueue(10);
        }
        assert_eq!(
            ac.offer(10),
            Admission::Rejected(RejectReason::SessionBudget)
        );
        assert_eq!(ac.admitted, 2);
        assert_eq!(ac.degraded, 2);
        assert_eq!(ac.rejected, 1);
        // A finished session frees budget again.
        ac.on_close();
        ac.on_scored(40);
        assert_eq!(ac.offer(10), Admission::Degraded);
    }

    #[test]
    fn queue_budget_bounds_buffered_frames() {
        let mut ac = controller(100, 50, 1.0);
        assert_eq!(ac.offer(30), Admission::Admitted);
        ac.on_open();
        ac.on_enqueue(30);
        // 30 + 30 > 50: rejected outright, never buffered.
        assert_eq!(ac.offer(30), Admission::Rejected(RejectReason::QueueBudget));
        assert_eq!(ac.offer(20), Admission::Admitted);
        assert!(ac.queue_has_room(20));
        assert!(!ac.queue_has_room(21));
        // Scoring frees queue room.
        ac.on_scored(30);
        assert_eq!(ac.queued_frames(), 0);
        assert_eq!(ac.offer(50), Admission::Admitted);
    }

    #[test]
    fn draining_rejects_everything_new() {
        let mut ac = controller(4, 1000, 1.0);
        ac.begin_drain();
        assert_eq!(ac.offer(1), Admission::Rejected(RejectReason::Draining));
        assert!(ac.is_draining());
    }

    #[test]
    fn degrade_fraction_one_never_degrades() {
        let mut ac = controller(2, 100, 1.0);
        assert_eq!(ac.offer(100), Admission::Admitted);
        ac.on_open();
        assert_eq!(ac.offer(0), Admission::Admitted);
    }
}
