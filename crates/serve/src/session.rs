//! One live streaming utterance (ISSUE 5): an owning decoder plus its
//! per-utterance pruning policy, fed frames incrementally.
//!
//! A session's decode is the *same recursion* as the offline
//! [`darkside_decoder::decode_with_policy`] — the
//! [`darkside_decoder::SearchCore`] advances one frame per scored cost
//! row, in arrival order, no matter how the [`crate::Scheduler`] slices
//! those rows into cross-session micro-batches. That is what makes
//! streaming results bit-for-bit identical to one-shot decodes
//! (`tests/streaming_equivalence.rs`), and it is the property that lets a
//! serving engine micro-batch aggressively without changing what it
//! answers.

use crate::checkpoint::SessionCheckpoint;
use crate::DetectorConfig;
use darkside_decoder::{wire, DecodeResult, Error, PartialHypothesis, PruningPolicy, SearchCore};
use darkside_nn::{Frame, Matrix, Precision};
use darkside_trace as trace;
use darkside_wfst::{GraphKind, SharedGraph};
use std::collections::VecDeque;

/// Engine-assigned session identity (monotonic per scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finished session, as delivered by [`crate::Scheduler::take_completed`].
#[derive(Debug)]
pub struct ServedResult {
    pub id: SessionId,
    /// The decode, or the search error that killed the session (e.g. every
    /// hypothesis pruned away mid-utterance). Either way the session is
    /// closed and its budget released — one bad utterance never wedges the
    /// engine.
    pub decode: Result<DecodeResult, Error>,
    /// Whether this session was served under the degraded (narrow-beam,
    /// bounded N-best) configuration.
    pub degraded: bool,
    /// Feature frames the caller pushed.
    pub frames: usize,
    /// Submit-to-final wall time, nanoseconds (the served latency the
    /// closed-loop bench reports percentiles of).
    pub latency_ns: u64,
    /// Frame index at which the dark-side detector flagged this session
    /// (margin collapse / hypothesis blowup streak), or `None` if it
    /// stayed healthy or the detector was off. A flagged session keeps
    /// serving, downgraded to the degraded tier — never silently dropped.
    pub flagged_at: Option<u32>,
}

/// Per-session dark-side health (ISSUE 9): watches the live margin and
/// hypothesis count every frame the decoder advances and latches a flag
/// after [`DetectorConfig::window_frames`] consecutive unhealthy frames.
/// Pure observation — it never touches the search itself, so a session
/// with a health tracker decodes bit-for-bit identically until the
/// scheduler acts on the flag.
#[derive(Clone, Copy, Debug)]
pub struct SessionHealth {
    cfg: DetectorConfig,
    /// `hyps_multiple × dense_hyps_baseline`; ≤ 0 disables the workload
    /// check (no baseline probe data).
    hyps_threshold: f64,
    unhealthy_streak: u32,
    flagged_at: Option<u32>,
}

impl SessionHealth {
    pub fn new(cfg: DetectorConfig, dense_hyps_baseline: f64) -> Self {
        Self {
            cfg,
            hyps_threshold: cfg.hyps_multiple * dense_hyps_baseline.max(0.0),
            unhealthy_streak: 0,
            flagged_at: None,
        }
    }

    /// Fold in one decoded frame. `frame` is the session's frame index
    /// (1-based count of frames decoded so far), `margin` the
    /// best-vs-runner-up cost gap (`INFINITY` when fewer than two
    /// hypotheses survive — trivially healthy), `active` the surviving
    /// hypothesis count.
    pub fn observe(&mut self, frame: usize, margin: f32, active: usize) {
        if self.flagged_at.is_some() {
            return;
        }
        let hyps_bad = self.hyps_threshold > 0.0 && active as f64 > self.hyps_threshold;
        let margin_bad = margin < self.cfg.margin_floor;
        if hyps_bad || margin_bad {
            self.unhealthy_streak += 1;
            if self.unhealthy_streak >= self.cfg.window_frames {
                self.flagged_at = Some(frame.min(u32::MAX as usize) as u32);
            }
        } else {
            self.unhealthy_streak = 0;
        }
    }

    pub fn flagged_at(&self) -> Option<u32> {
        self.flagged_at
    }
}

/// One live utterance: pending (un-scored) frames in front of an owning
/// frame-synchronous decoder.
pub struct Session {
    id: SessionId,
    core: SearchCore<SharedGraph>,
    /// Which representation the shared graph is (stamped into
    /// checkpoints; restore refuses a mismatched engine).
    graph_kind: GraphKind,
    /// Which precision the bundle's scorer computes in (stamped into
    /// checkpoints; restore refuses a mismatched engine — f32 and int8
    /// posteriors differ, so switching mid-utterance corrupts the decode).
    precision: Precision,
    policy: Box<dyn PruningPolicy + Send>,
    pending: VecDeque<Frame>,
    input_closed: bool,
    degraded: bool,
    frames_in: usize,
    submitted_ns: u64,
    /// First search error; the session stops advancing once set.
    error: Option<Error>,
    /// Dark-side health tracker; `None` when the detector is off.
    /// Deliberately *not* part of the checkpoint wire format — health is
    /// derived observation, and a restored session restarts its streak
    /// from scratch (the pathology re-flags within one window if still
    /// present).
    health: Option<SessionHealth>,
}

impl Session {
    pub fn new(
        id: SessionId,
        graph: SharedGraph,
        graph_kind: GraphKind,
        precision: Precision,
        policy: Box<dyn PruningPolicy + Send>,
        degraded: bool,
    ) -> Result<Self, Error> {
        Ok(Self {
            id,
            core: SearchCore::new(graph)?,
            graph_kind,
            precision,
            policy,
            pending: VecDeque::new(),
            input_closed: false,
            degraded,
            frames_in: 0,
            submitted_ns: trace::now_ns(),
            error: None,
            health: None,
        })
    }

    /// Attach a dark-side health tracker (detector on).
    /// `dense_hyps_baseline` comes from the bundle
    /// ([`darkside_core::ModelBundle::dense_hyps_baseline`]).
    pub fn with_detector(mut self, cfg: DetectorConfig, dense_hyps_baseline: f64) -> Self {
        self.health = Some(SessionHealth::new(cfg, dense_hyps_baseline));
        self
    }

    pub fn id(&self) -> SessionId {
        self.id
    }

    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Frame index at which the detector flagged this session, if it has.
    pub fn flagged_at(&self) -> Option<u32> {
        self.health.and_then(|h| h.flagged_at())
    }

    /// Flagged by the detector and not yet downgraded — the scheduler's
    /// cue to swap this session onto the degraded tier.
    pub fn needs_degrade(&self) -> bool {
        self.flagged_at().is_some() && !self.degraded
    }

    /// Downgrade a flagged session mid-stream: swap in a fresh policy of
    /// the degraded tier (policies are per-frame — the new one simply
    /// takes over at the next `advance`) and mark the session degraded so
    /// its [`ServedResult`] says so.
    pub fn degrade(&mut self, policy: Box<dyn PruningPolicy + Send>) {
        self.policy.end_utterance();
        self.policy = policy;
        self.degraded = true;
    }

    /// Buffer more feature frames (ignored after [`Session::close_input`]).
    pub fn push(&mut self, frames: impl IntoIterator<Item = Frame>) {
        if self.input_closed {
            return;
        }
        for f in frames {
            self.pending.push_back(f);
            self.frames_in += 1;
        }
    }

    /// No more frames will arrive; once pending drains, the session is done.
    pub fn close_input(&mut self) {
        self.input_closed = true;
    }

    /// Un-scored frames waiting for a micro-batch slot.
    pub fn ready(&self) -> usize {
        if self.error.is_some() {
            0
        } else {
            self.pending.len()
        }
    }

    /// Hand up to `max` pending frames to the scheduler's micro-batch.
    pub fn take_ready(&mut self, max: usize) -> Vec<Frame> {
        let n = max.min(self.ready());
        self.pending.drain(..n).collect()
    }

    /// Advance the decoder over this session's slice of the scored batch
    /// (`rows` indexes `costs`), one frame per row in arrival order. A
    /// search error (all hypotheses died) is latched: the session reports
    /// done and surfaces the error in its [`ServedResult`].
    pub fn advance_rows(&mut self, costs: &Matrix, rows: std::ops::Range<usize>) {
        for r in rows {
            if self.error.is_some() {
                return;
            }
            if let Err(e) = self.core.advance(costs.row(r), self.policy.as_mut()) {
                self.error = Some(e);
            } else if let Some(health) = &mut self.health {
                health.observe(
                    self.core.frames(),
                    self.core.frame_margin(),
                    self.core.active_hypotheses(),
                );
            }
        }
    }

    /// The best hypothesis so far (streaming partial result).
    pub fn partial(&self) -> PartialHypothesis {
        self.core.partial()
    }

    /// Total frames pushed so far.
    pub fn frames_in(&self) -> usize {
        self.frames_in
    }

    /// Input closed and every buffered frame scored (or the search died):
    /// ready to finalize.
    pub fn is_done(&self) -> bool {
        self.error.is_some() || (self.input_closed && self.pending.is_empty())
    }

    /// Buffered frames that will never be scored (non-zero only when a
    /// search error killed the session early); the scheduler hands their
    /// queue budget back on reap.
    pub fn pending_unscored(&self) -> usize {
        self.pending.len()
    }

    /// Submit-time monotonic timestamp, for latency accounting.
    pub fn submitted_ns(&self) -> u64 {
        self.submitted_ns
    }

    /// Serialize this session at a frame boundary (ISSUE 7): decoder
    /// state, policy accounting, buffered frames, identity, and quality
    /// tier. Only callable between micro-batches — which is the only time
    /// the scheduler holds the session anyway. Errored sessions cannot be
    /// checkpointed (their result is already decided; reap them instead).
    pub fn checkpoint(&self) -> Result<SessionCheckpoint, Error> {
        if self.error.is_some() {
            return Err(Error::config(
                "Session::checkpoint",
                format!("session {} died mid-search; nothing to resume", self.id),
            ));
        }
        let mut core = Vec::new();
        self.core.save_state(&mut core);
        let mut policy = Vec::new();
        self.policy.save_state(&mut policy);
        Ok(SessionCheckpoint {
            id: self.id,
            graph_kind: self.graph_kind,
            precision: self.precision,
            degraded: self.degraded,
            input_closed: self.input_closed,
            frames_in: self.frames_in,
            submitted_ns: self.submitted_ns,
            pending: self.pending.iter().cloned().collect(),
            core,
            policy,
        })
    }

    /// Rebuild a live session from a checkpoint, on any shard of any
    /// engine serving the same bundle. `policy` must be a **fresh** policy
    /// of the same kind and geometry the session was opened with (the
    /// caller picks full vs degraded via [`SessionCheckpoint::degraded`]);
    /// its cumulative accounting is restored from the blob. `graph_kind`
    /// is the target engine's representation — it must match the kind the
    /// checkpoint was taken against (mid-utterance token state indexes
    /// that graph's state space). The restored session finishes
    /// bit-for-bit as the original would have.
    pub fn restore(
        ckpt: &SessionCheckpoint,
        graph: SharedGraph,
        graph_kind: GraphKind,
        precision: Precision,
        mut policy: Box<dyn PruningPolicy + Send>,
    ) -> Result<Self, Error> {
        if ckpt.graph_kind != graph_kind {
            return Err(Error::config(
                "Session::restore",
                format!(
                    "checkpoint was taken against a {} graph but this engine serves a {} one",
                    ckpt.graph_kind.label(),
                    graph_kind.label()
                ),
            ));
        }
        if ckpt.precision != precision {
            return Err(Error::config(
                "Session::restore",
                format!(
                    "checkpoint was scored at {} but this engine serves an {} scorer",
                    ckpt.precision.label(),
                    precision.label()
                ),
            ));
        }
        let mut r = wire::Reader::new(&ckpt.core);
        let core = SearchCore::restore(graph, &mut r)?;
        r.finish("Session::restore.core")?;
        let mut r = wire::Reader::new(&ckpt.policy);
        policy.restore_state(&mut r)?;
        r.finish("Session::restore.policy")?;
        Ok(Self {
            id: ckpt.id,
            core,
            graph_kind,
            precision,
            policy,
            pending: ckpt.pending.iter().cloned().collect(),
            input_closed: ckpt.input_closed,
            degraded: ckpt.degraded,
            frames_in: ckpt.frames_in,
            submitted_ns: ckpt.submitted_ns,
            error: None,
            health: None,
        })
    }

    /// Close the utterance: let the policy export its cumulative metrics,
    /// trace back the best path, and package the result.
    pub fn finalize(mut self) -> ServedResult {
        self.policy.end_utterance();
        let latency_ns = trace::now_ns().saturating_sub(self.submitted_ns);
        let decode = match self.error {
            Some(e) => Err(e),
            None => Ok(self.core.finish()),
        };
        ServedResult {
            id: self.id,
            decode,
            degraded: self.degraded,
            frames: self.frames_in,
            latency_ns,
            flagged_at: self.health.and_then(|h| h.flagged_at()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_decoder::{decode, BeamConfig, BeamPolicy};
    use darkside_wfst::{Arc as FstArc, Fst, TropicalWeight, EPSILON};
    use std::sync::Arc;

    /// The decoder's toy shape: two states, class 0 loops, class 1 emits
    /// word 5 into the final state.
    fn toy_graph() -> Fst {
        let mut g = Fst::new();
        let s0 = g.add_state();
        let s1 = g.add_state();
        g.set_start(s0);
        g.set_final(s1, TropicalWeight::ONE);
        for (from, to) in [(s0, s0), (s1, s1)] {
            g.add_arc(
                from,
                FstArc {
                    ilabel: 1,
                    olabel: EPSILON,
                    weight: TropicalWeight(0.1),
                    next: to,
                },
            );
        }
        for from in [s0, s1] {
            g.add_arc(
                from,
                FstArc {
                    ilabel: 2,
                    olabel: 6,
                    weight: TropicalWeight(0.1),
                    next: s1,
                },
            );
        }
        g
    }

    fn beam_session(graph: &SharedGraph) -> Session {
        Session::new(
            SessionId(7),
            graph.clone(),
            GraphKind::Eager,
            Precision::F32,
            Box::new(BeamPolicy::new(BeamConfig::default().beam)),
            false,
        )
        .unwrap()
    }

    #[test]
    fn incremental_session_matches_oneshot_decode() {
        let graph: SharedGraph = Arc::new(toy_graph());
        let costs = Matrix::new(
            3,
            2,
            vec![
                0.1, 2.0, //
                0.1, 2.0, //
                2.0, 0.1,
            ],
        )
        .unwrap();
        let mut s = beam_session(&graph);
        // Frames arrive in two pushes; rows are scored in two "batches".
        s.push((0..2).map(|t| Frame(costs.row(t).to_vec())));
        assert_eq!(s.ready(), 2);
        let taken = s.take_ready(2);
        assert_eq!(taken.len(), 2);
        s.advance_rows(&costs, 0..2);
        assert_eq!(s.partial().frames, 2);
        assert!(!s.is_done());
        s.push(std::iter::once(Frame(costs.row(2).to_vec())));
        s.close_input();
        let _ = s.take_ready(8);
        s.advance_rows(&costs, 2..3);
        assert!(s.is_done());
        let served = s.finalize();
        let oneshot = decode(&graph, &costs, &BeamConfig::default()).unwrap();
        let streamed = served.decode.unwrap();
        assert_eq!(streamed.words, oneshot.words);
        assert_eq!(streamed.cost, oneshot.cost);
        assert_eq!(served.frames, 3);
    }

    #[test]
    fn zero_frame_session_finalizes_to_the_empty_path() {
        let graph: SharedGraph = Arc::new(toy_graph());
        let mut s = beam_session(&graph);
        s.close_input();
        assert!(s.is_done());
        let served = s.finalize();
        let decode = served.decode.unwrap();
        assert!(decode.words.is_empty());
        assert!(!decode.reached_final);
    }

    #[test]
    fn search_death_is_latched_not_panicked() {
        struct RejectAll;
        impl PruningPolicy for RejectAll {
            fn name(&self) -> &'static str {
                "reject-all"
            }
            fn admit(&mut self, _s: u32, _c: f32) -> darkside_decoder::Admit {
                darkside_decoder::Admit::Reject
            }
            fn end_frame(&mut self) -> darkside_decoder::FramePruneStats {
                darkside_decoder::FramePruneStats::default()
            }
        }
        let graph: SharedGraph = Arc::new(toy_graph());
        let mut s = Session::new(
            SessionId(1),
            graph,
            GraphKind::Eager,
            Precision::F32,
            Box::new(RejectAll),
            false,
        )
        .unwrap();
        let costs = Matrix::new(2, 2, vec![0.1, 0.1, 0.1, 0.1]).unwrap();
        s.push((0..2).map(|t| Frame(costs.row(t).to_vec())));
        s.close_input();
        let _ = s.take_ready(2);
        s.advance_rows(&costs, 0..2);
        assert!(s.is_done());
        assert_eq!(s.ready(), 0);
        assert!(s.finalize().decode.is_err());
    }

    #[test]
    fn checkpoint_mid_utterance_resumes_bit_identical() {
        let graph: SharedGraph = Arc::new(toy_graph());
        let costs = Matrix::new(
            3,
            2,
            vec![
                0.1, 2.0, //
                0.1, 2.0, //
                2.0, 0.1,
            ],
        )
        .unwrap();
        // Uninterrupted reference.
        let mut whole = beam_session(&graph);
        whole.push((0..3).map(|t| Frame(costs.row(t).to_vec())));
        whole.close_input();
        let _ = whole.take_ready(3);
        whole.advance_rows(&costs, 0..3);
        let reference = whole.finalize().decode.unwrap();

        // Checkpoint after frame 1, round-trip through bytes, resume.
        let mut s = beam_session(&graph);
        s.push((0..3).map(|t| Frame(costs.row(t).to_vec())));
        s.close_input();
        let _ = s.take_ready(1);
        s.advance_rows(&costs, 0..1);
        let blob = s.checkpoint().unwrap().to_bytes();
        drop(s);
        let ckpt = SessionCheckpoint::from_bytes(&blob).unwrap();
        assert_eq!(ckpt.pending_frames(), 2);
        assert_eq!(ckpt.graph_kind(), GraphKind::Eager);
        // Restoring into an engine serving the other graph kind is refused.
        assert!(Session::restore(
            &ckpt,
            graph.clone(),
            GraphKind::Lazy,
            Precision::F32,
            Box::new(BeamPolicy::new(BeamConfig::default().beam)),
        )
        .is_err());
        // As is restoring onto a scorer of a different precision (wire v3).
        assert_eq!(ckpt.precision(), Precision::F32);
        assert!(Session::restore(
            &ckpt,
            graph.clone(),
            GraphKind::Eager,
            Precision::Int8,
            Box::new(BeamPolicy::new(BeamConfig::default().beam)),
        )
        .is_err());
        let mut resumed = Session::restore(
            &ckpt,
            graph.clone(),
            GraphKind::Eager,
            Precision::F32,
            Box::new(BeamPolicy::new(BeamConfig::default().beam)),
        )
        .unwrap();
        assert_eq!(resumed.id(), SessionId(7));
        let taken = resumed.take_ready(2);
        assert_eq!(taken.len(), 2);
        resumed.advance_rows(&costs, 1..3);
        assert!(resumed.is_done());
        let got = resumed.finalize().decode.unwrap();
        assert_eq!(got.words, reference.words);
        assert_eq!(got.cost.to_bits(), reference.cost.to_bits());
        assert_eq!(got.stats, reference.stats);
    }

    #[test]
    fn errored_sessions_refuse_to_checkpoint() {
        struct RejectAll;
        impl PruningPolicy for RejectAll {
            fn name(&self) -> &'static str {
                "reject-all"
            }
            fn admit(&mut self, _s: u32, _c: f32) -> darkside_decoder::Admit {
                darkside_decoder::Admit::Reject
            }
            fn end_frame(&mut self) -> darkside_decoder::FramePruneStats {
                darkside_decoder::FramePruneStats::default()
            }
        }
        let graph: SharedGraph = Arc::new(toy_graph());
        let mut s = Session::new(
            SessionId(1),
            graph,
            GraphKind::Eager,
            Precision::F32,
            Box::new(RejectAll),
            false,
        )
        .unwrap();
        let costs = Matrix::new(1, 2, vec![0.1, 0.1]).unwrap();
        s.push(std::iter::once(Frame(costs.row(0).to_vec())));
        let _ = s.take_ready(1);
        s.advance_rows(&costs, 0..1);
        assert!(s.checkpoint().is_err());
    }

    #[test]
    fn health_flags_only_after_a_full_unhealthy_streak_and_latches() {
        let cfg = DetectorConfig::default()
            .with_hyps_multiple(2.0)
            .with_window_frames(3);
        let mut h = SessionHealth::new(cfg, 10.0); // workload threshold: 20 hyps
        for f in 1..=10 {
            h.observe(f, f32::INFINITY, 5);
        }
        assert_eq!(h.flagged_at(), None);
        // A broken streak resets the count.
        h.observe(11, f32::INFINITY, 50);
        h.observe(12, f32::INFINITY, 50);
        h.observe(13, f32::INFINITY, 5);
        assert_eq!(h.flagged_at(), None);
        // Three consecutive unhealthy frames latch the flag at the third.
        h.observe(14, f32::INFINITY, 50);
        h.observe(15, f32::INFINITY, 50);
        h.observe(16, f32::INFINITY, 50);
        assert_eq!(h.flagged_at(), Some(16));
        // Latched: later healthy frames never clear it.
        h.observe(17, f32::INFINITY, 5);
        assert_eq!(h.flagged_at(), Some(16));
    }

    #[test]
    fn health_margin_floor_catches_confidence_collapse() {
        let cfg = DetectorConfig::default()
            .with_margin_floor(0.5)
            .with_window_frames(2);
        // Baseline 0 disables the workload check; only the margin matters.
        let mut h = SessionHealth::new(cfg, 0.0);
        h.observe(1, 0.1, 1000);
        h.observe(2, 0.1, 1000);
        assert_eq!(h.flagged_at(), Some(2));
        // A lone surviving hypothesis has INFINITE margin — trivially
        // healthy, not a collapse.
        let mut h = SessionHealth::new(cfg, 0.0);
        h.observe(1, f32::INFINITY, 1);
        h.observe(2, f32::INFINITY, 1);
        assert_eq!(h.flagged_at(), None);
    }

    #[test]
    fn pushes_after_close_are_ignored() {
        let graph: SharedGraph = Arc::new(toy_graph());
        let mut s = beam_session(&graph);
        s.close_input();
        s.push(std::iter::once(Frame(vec![0.0, 0.0])));
        assert_eq!(s.frames_in(), 0);
        assert!(s.is_done());
    }
}
