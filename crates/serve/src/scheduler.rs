//! The serving scheduler (ISSUE 5 tentpole): N concurrent sessions, one
//! scoring call per micro-batch, a worker pool for the decoders.
//!
//! Each [`Scheduler::step`] is one closed micro-batch cycle:
//!
//! ```text
//!  sessions (id order)          gather ≤ max_batch_frames, fair share
//!  s0: [f f f] ──┐
//!  s3: [f f]   ──┼──► one FrameScorer::score_frames(batch)   (the GEMM
//!  s7: [f f f] ──┘        │                                   amortization)
//!                         ▼
//!                 acoustic_costs → per-session row ranges
//!                         │
//!          ┌──────────────┼──────────────┐     worker pool
//!          ▼              ▼              ▼
//!     s0.advance×3   s3.advance×2   s7.advance×3   (SearchCore + policy,
//!          │              │              │          frame-synchronous)
//!          └──────────────┴──────────────┘
//!                 reap finished → ServedResult
//! ```
//!
//! Scoring batches **across sessions** is the serving-side version of
//! ISSUE 1's within-utterance batching: at smoke scale a single session
//! hands the scorer a few dozen rows, but eight concurrent sessions fill a
//! multi-hundred-row GEMM per call — and the decode fan-out runs the
//! pruning-inflated Viterbi work (the paper's tail) on parallel workers
//! instead of serializing it behind one thread.
//!
//! Worker threads re-install the scheduler's [`SharedRecorder`] (when one
//! is attached) so their `decode.frame.*` samples aggregate into the same
//! run report as the main thread's queue/batch gauges — the ISSUE 5 trace
//! satellite.

use crate::admission::{Admission, AdmissionController, RejectReason};
use crate::session::{ServedResult, Session, SessionId};
use crate::ServeConfig;
use darkside_core::{ModelBundle, PolicyKind};
use darkside_decoder::{acoustic_costs, BeamConfig, PartialHypothesis};
use darkside_error::Error;
use darkside_nn::{Frame, Matrix};
use darkside_trace::{self as trace, Recorder as _, SharedRecorder};
use darkside_viterbi_accel::NBestTableConfig;

/// The degraded-service table: small enough to bind (cap per-frame work)
/// even on smoke-scale graphs, 8-way like the paper's Table III.
const DEGRADED_TABLE: NBestTableConfig = NBestTableConfig {
    entries: 64,
    ways: 8,
};

/// How much the beam narrows for degraded sessions.
const DEGRADED_BEAM_SCALE: f32 = 0.5;

/// The engine's answer to an utterance offer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitResponse {
    /// Full-quality service under the bundle's policy.
    Admitted(SessionId),
    /// Served, but under the narrowed beam + bounded N-best policy.
    Degraded(SessionId),
    /// Shed: budget exhausted or draining. No state was buffered.
    Rejected(RejectReason),
}

impl SubmitResponse {
    /// The session id, when one was opened.
    pub fn id(&self) -> Option<SessionId> {
        match *self {
            SubmitResponse::Admitted(id) | SubmitResponse::Degraded(id) => Some(id),
            SubmitResponse::Rejected(_) => None,
        }
    }
}

/// What one [`Scheduler::step`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Frames scored in this step's micro-batch (0 = idle step).
    pub scored_frames: usize,
    /// Sessions that contributed frames to the batch.
    pub batch_sessions: usize,
    /// Sessions finalized this step.
    pub completed: usize,
}

/// Cumulative engine counters (monotonic over the scheduler's life).
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulerStats {
    pub steps: u64,
    pub batches: u64,
    pub scored_frames: u64,
    pub completed: u64,
    /// Sessions that ended in a search error.
    pub failed: u64,
    pub peak_active_sessions: usize,
    pub peak_batch_frames: usize,
}

/// The streaming inference engine: admission control in front of a session
/// table, stepped in micro-batch cycles.
pub struct Scheduler {
    bundle: ModelBundle,
    degraded_bundle: ModelBundle,
    cfg: ServeConfig,
    admission: AdmissionController,
    /// Live sessions in ascending id order (ids are monotonic, sessions
    /// are appended — so iteration order is deterministic and fair).
    sessions: Vec<Session>,
    next_id: u64,
    completed: Vec<ServedResult>,
    recorder: Option<SharedRecorder>,
    stats: SchedulerStats,
}

impl Scheduler {
    pub fn new(bundle: ModelBundle, cfg: ServeConfig) -> Result<Self, Error> {
        cfg.validate()?;
        // Fail on unbuildable policies now, not per-admission.
        bundle.build_policy()?;
        let degraded_bundle = degraded(&bundle);
        degraded_bundle.build_policy()?;
        Ok(Self {
            admission: AdmissionController::new(&cfg),
            bundle,
            degraded_bundle,
            cfg,
            sessions: Vec::new(),
            next_id: 0,
            completed: Vec::new(),
            recorder: None,
            stats: SchedulerStats::default(),
        })
    }

    /// Attach a shared recorder: worker threads install clones of it so
    /// their per-frame decode metrics aggregate with the main thread's.
    /// Drive the scheduler inside `recorder.scoped(..)` (or any ambient
    /// install of the same handle) to also capture the main-thread gauges.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Offer one whole utterance: admission decision, then (when served) a
    /// session carrying every frame with input already closed. The common
    /// path for request/response serving and the load generator.
    pub fn offer(&mut self, frames: Vec<Frame>) -> Result<SubmitResponse, Error> {
        let response = self.open(frames.len())?;
        if let Some(id) = response.id() {
            self.push(id, frames)?;
            self.close_input(id);
        }
        Ok(response)
    }

    /// Open a streaming session expected to push about `frames_hint`
    /// frames (the admission queue check uses the hint; actual pushes are
    /// re-checked against the live budget).
    pub fn open(&mut self, frames_hint: usize) -> Result<SubmitResponse, Error> {
        match self.admission.offer(frames_hint) {
            Admission::Rejected(reason) => {
                trace::counter("serve.rejected", 1);
                Ok(SubmitResponse::Rejected(reason))
            }
            decision => {
                let degraded = decision == Admission::Degraded;
                let bundle = if degraded {
                    &self.degraded_bundle
                } else {
                    &self.bundle
                };
                let id = SessionId(self.next_id);
                let session =
                    Session::new(id, bundle.graph.clone(), bundle.build_policy()?, degraded)?;
                self.next_id += 1;
                self.sessions.push(session);
                self.admission.on_open();
                self.stats.peak_active_sessions =
                    self.stats.peak_active_sessions.max(self.sessions.len());
                if degraded {
                    trace::counter("serve.degraded", 1);
                }
                Ok(if degraded {
                    SubmitResponse::Degraded(id)
                } else {
                    SubmitResponse::Admitted(id)
                })
            }
        }
    }

    /// Push frames into an open session. Fails (without buffering
    /// anything) when the session is unknown, a frame's dimensionality
    /// does not match the scorer, or the frames would exceed the queue
    /// budget — explicit backpressure, never unbounded buffering.
    pub fn push(&mut self, id: SessionId, frames: Vec<Frame>) -> Result<(), Error> {
        let dim = self.bundle.scorer.input_dim();
        if let Some(bad) = frames.iter().find(|f| f.dim() != dim) {
            return Err(Error::shape(
                "serve.push",
                format!("frame dim {} but scorer expects {dim}", bad.dim()),
            ));
        }
        if !self.admission.queue_has_room(frames.len()) {
            return Err(Error::config(
                "serve.push",
                format!("{} frames would exceed the queue budget", frames.len()),
            ));
        }
        let session = self.session_mut(id)?;
        let n = frames.len();
        session.push(frames);
        self.admission.on_enqueue(n);
        Ok(())
    }

    /// Mark a session's input complete; it finalizes once scored through.
    /// Unknown ids are a no-op (the session may already have finished).
    pub fn close_input(&mut self, id: SessionId) {
        if let Ok(s) = self.session_mut(id) {
            s.close_input();
        }
    }

    /// The best hypothesis a live session holds right now (`None` once the
    /// session has finalized — its result is in [`Scheduler::take_completed`]).
    pub fn partial(&self, id: SessionId) -> Option<PartialHypothesis> {
        self.session(id).map(Session::partial)
    }

    /// One micro-batch cycle: reap → gather → score once → fan out to the
    /// worker pool → reap. Idle (no ready frames) steps only update gauges.
    pub fn step(&mut self) -> Result<StepStats, Error> {
        let _span = trace::span!("serve.step");
        self.stats.steps += 1;
        let mut completed = self.reap();
        let (scored_frames, batch_sessions) = self.run_batch();
        completed += self.reap();
        trace::gauge("serve.queue.depth", self.admission.queued_frames() as f64);
        trace::gauge("serve.sessions.active", self.sessions.len() as f64);
        Ok(StepStats {
            scored_frames,
            batch_sessions,
            completed,
        })
    }

    /// Graceful shutdown: stop admitting, close every session's input,
    /// step until the table is empty, and hand back everything served.
    /// Terminates unconditionally — every remaining session either
    /// contributes to the next batch or reaps as done, so each step makes
    /// progress.
    pub fn drain(&mut self) -> Result<Vec<ServedResult>, Error> {
        self.admission.begin_drain();
        for s in &mut self.sessions {
            s.close_input();
        }
        while !self.sessions.is_empty() {
            self.step()?;
        }
        Ok(self.take_completed())
    }

    /// Results finalized since the last call (submit order not guaranteed;
    /// each carries its [`SessionId`]).
    pub fn take_completed(&mut self) -> Vec<ServedResult> {
        std::mem::take(&mut self.completed)
    }

    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    pub fn queued_frames(&self) -> usize {
        self.admission.queued_frames()
    }

    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    pub fn bundle(&self) -> &ModelBundle {
        &self.bundle
    }

    /// Gather a fair micro-batch, score it in one call, and advance every
    /// contributing session over its rows on the worker pool. Returns
    /// `(scored_frames, batch_sessions)`.
    fn run_batch(&mut self) -> (usize, usize) {
        let ready = self.sessions.iter().filter(|s| s.ready() > 0).count();
        if ready == 0 {
            return (0, 0);
        }
        // Fair share: the batch cap divides across ready sessions (≥ 1
        // frame each), so one long utterance cannot starve the rest.
        let fair = (self.cfg.max_batch_frames / ready).max(1);
        let mut batch: Vec<Frame> = Vec::new();
        let mut parts: Vec<(usize, usize, usize)> = Vec::new(); // (session idx, row0, rows)
        for (i, s) in self.sessions.iter_mut().enumerate() {
            if batch.len() >= self.cfg.max_batch_frames {
                break;
            }
            let room = self.cfg.max_batch_frames - batch.len();
            let frames = s.take_ready(fair.min(room));
            if frames.is_empty() {
                continue;
            }
            parts.push((i, batch.len(), frames.len()));
            batch.extend(frames);
        }
        let scored = batch.len();
        self.admission.on_scored(scored);
        let costs = {
            let _s = trace::span!("serve.score");
            let scores = self.bundle.scorer.score_frames(&batch);
            acoustic_costs(&scores, &self.bundle.beam)
        };
        self.fan_out(&parts, &costs);
        self.stats.batches += 1;
        self.stats.scored_frames += scored as u64;
        self.stats.peak_batch_frames = self.stats.peak_batch_frames.max(scored);
        trace::sample("serve.batch.frames", scored as f64);
        trace::sample("serve.batch.sessions", parts.len() as f64);
        (scored, parts.len())
    }

    /// Advance each contributing session over its slice of the scored
    /// batch, split across the worker pool. Sessions are independent
    /// decoders, so the split is embarrassingly parallel; each worker
    /// re-installs the shared recorder so per-frame metrics aggregate.
    fn fan_out(&mut self, parts: &[(usize, usize, usize)], costs: &Matrix) {
        // Disjoint &mut Session in parts order, from one sweep.
        let mut work: Vec<(&mut Session, usize, usize)> = Vec::with_capacity(parts.len());
        let mut want = parts.iter().peekable();
        for (i, s) in self.sessions.iter_mut().enumerate() {
            match want.peek() {
                Some(&&(pi, row0, rows)) if pi == i => {
                    want.next();
                    work.push((s, row0, rows));
                }
                _ => {}
            }
        }
        let workers = self.cfg.workers.min(work.len()).max(1);
        if workers == 1 {
            for (s, row0, rows) in &mut work {
                s.advance_rows(costs, *row0..*row0 + *rows);
            }
            return;
        }
        let chunk = work.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for piece in work.chunks_mut(chunk) {
                let recorder = self.recorder.clone();
                scope.spawn(move || {
                    let mut run = || {
                        for (s, row0, rows) in piece.iter_mut() {
                            s.advance_rows(costs, *row0..*row0 + *rows);
                        }
                    };
                    match recorder {
                        Some(r) => r.scoped(run),
                        None => run(),
                    }
                });
            }
        });
    }

    /// Finalize every done session: release its budget, export its trace
    /// metrics, move its result to the completed queue.
    fn reap(&mut self) -> usize {
        let mut n = 0;
        let mut i = 0;
        while i < self.sessions.len() {
            if !self.sessions[i].is_done() {
                i += 1;
                continue;
            }
            let s = self.sessions.remove(i);
            // An errored session may die with un-scored frames buffered;
            // give their queue budget back.
            let leftover = s.pending_unscored();
            if leftover > 0 {
                self.admission.on_scored(leftover);
            }
            self.admission.on_close();
            let t0 = s.submitted_ns();
            let served = s.finalize();
            self.stats.completed += 1;
            if served.decode.is_err() {
                self.stats.failed += 1;
                trace::counter("serve.session.failed", 1);
            } else {
                trace::counter("serve.session.completed", 1);
            }
            trace::counter("serve.session.frames", served.frames as u64);
            trace::sample("serve.session.latency_ns", served.latency_ns as f64);
            // The per-session span: recorded with the session's own
            // submit→final timestamps on the shared sink (the ambient RAII
            // span API cannot backdate an enter).
            if let Some(r) = &self.recorder {
                let t1 = t0 + served.latency_ns;
                r.span_enter("serve.session", 1, t0);
                r.span_exit("serve.session", 1, t0, t1);
            }
            self.completed.push(served);
            n += 1;
        }
        n
    }

    fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions
            .binary_search_by_key(&id, Session::id)
            .ok()
            .map(|i| &self.sessions[i])
    }

    fn session_mut(&mut self, id: SessionId) -> Result<&mut Session, Error> {
        self.sessions
            .binary_search_by_key(&id, Session::id)
            .map(|i| &mut self.sessions[i])
            .map_err(|_| Error::config("serve", format!("no live session {id}")))
    }
}

/// The degraded operating point: beam narrowed, policy downgraded to the
/// paper's bounded loose N-best (which caps per-frame survivors no matter
/// how much pruning inflated the search — exactly the property overload
/// shedding wants). A bundle already on N-best keeps its table geometry.
fn degraded(bundle: &ModelBundle) -> ModelBundle {
    let beam = BeamConfig {
        beam: bundle.beam.beam * DEGRADED_BEAM_SCALE,
        ..bundle.beam
    };
    let policy = match bundle.policy {
        PolicyKind::LooseNBest(cfg) => PolicyKind::LooseNBest(cfg),
        PolicyKind::Beam | PolicyKind::UnfoldHash(_) => PolicyKind::LooseNBest(DEGRADED_TABLE),
    };
    bundle.with_policy(policy, beam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkside_core::{Pipeline, PipelineConfig};
    use darkside_nn::Rng;

    /// An untrained smoke pipeline: model quality is irrelevant to the
    /// scheduler mechanics, and skipping training keeps these tests fast.
    fn test_bundle() -> ModelBundle {
        let config = PipelineConfig::smoke().with_training(0, 0);
        Pipeline::build(config).unwrap().servable_dense()
    }

    fn utterances(bundle: &ModelBundle, n: usize, len: usize, seed: u64) -> Vec<Vec<Frame>> {
        let dim = bundle.scorer.input_dim();
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                (0..len)
                    .map(|_| Frame((0..dim).map(|_| rng.normal()).collect()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn serves_concurrent_sessions_to_completion() {
        let bundle = test_bundle();
        let mut engine = Scheduler::new(
            bundle.clone(),
            ServeConfig {
                workers: 2,
                max_batch_frames: 16,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let utts = utterances(&bundle, 6, 11, 0xA);
        let mut ids = Vec::new();
        for u in utts {
            match engine.offer(u).unwrap() {
                SubmitResponse::Admitted(id) => ids.push(id),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(engine.active_sessions(), 6);
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 6);
        assert_eq!(engine.active_sessions(), 0);
        assert_eq!(engine.queued_frames(), 0);
        for r in &served {
            let d = r.decode.as_ref().unwrap();
            assert_eq!(d.stats.active_tokens.len(), 11);
            assert!(r.latency_ns > 0);
        }
        let mut served_ids: Vec<_> = served.iter().map(|r| r.id).collect();
        served_ids.sort();
        assert_eq!(served_ids, ids);
        let stats = engine.stats();
        assert_eq!(stats.scored_frames, 66);
        assert!(stats.peak_batch_frames <= 16);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn over_budget_offers_are_rejected_not_queued() {
        let bundle = test_bundle();
        let mut engine = Scheduler::new(
            bundle.clone(),
            ServeConfig {
                max_sessions: 3,
                degrade_fraction: 1.0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let utts = utterances(&bundle, 5, 4, 0xB);
        let mut rejected = 0;
        for u in utts {
            if let SubmitResponse::Rejected(reason) = engine.offer(u).unwrap() {
                assert_eq!(reason, RejectReason::SessionBudget);
                rejected += 1;
            }
        }
        assert_eq!(rejected, 2);
        assert_eq!(engine.active_sessions(), 3);
        // The budget frees as sessions finish; the engine drains clean.
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 3);
        assert_eq!(engine.admission().rejected, 2);
    }

    #[test]
    fn overload_degrades_sessions_to_the_bounded_policy() {
        let bundle = test_bundle();
        let mut engine = Scheduler::new(
            bundle.clone(),
            ServeConfig {
                max_sessions: 4,
                degrade_fraction: 0.5,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let utts = utterances(&bundle, 4, 4, 0xC);
        let mut responses = Vec::new();
        for u in utts {
            responses.push(engine.offer(u).unwrap());
        }
        assert!(matches!(responses[0], SubmitResponse::Admitted(_)));
        assert!(matches!(responses[1], SubmitResponse::Admitted(_)));
        assert!(matches!(responses[2], SubmitResponse::Degraded(_)));
        assert!(matches!(responses[3], SubmitResponse::Degraded(_)));
        let served = engine.drain().unwrap();
        assert_eq!(served.iter().filter(|r| r.degraded).count(), 2);
        // Degraded sessions still produce decodes.
        for r in &served {
            assert!(r.decode.is_ok());
        }
    }

    #[test]
    fn streaming_push_partials_and_backpressure() {
        let bundle = test_bundle();
        let mut engine = Scheduler::new(
            bundle.clone(),
            ServeConfig {
                max_queue_frames: 8,
                max_batch_frames: 8,
                degrade_fraction: 1.0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let id = engine.open(4).unwrap().id().unwrap();
        let utt = utterances(&bundle, 1, 6, 0xD).pop().unwrap();
        engine.push(id, utt[..4].to_vec()).unwrap();
        // Over the queue budget: explicit error, nothing buffered.
        assert!(engine
            .push(id, utterances(&bundle, 1, 6, 0xE).pop().unwrap())
            .is_err());
        engine.step().unwrap();
        let partial = engine.partial(id).unwrap();
        assert_eq!(partial.frames, 4);
        engine.push(id, utt[4..].to_vec()).unwrap();
        engine.close_input(id);
        let served = engine.drain().unwrap();
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].frames, 6);
        assert!(engine.partial(id).is_none());
    }

    #[test]
    fn wrong_frame_dim_is_a_shape_error() {
        let bundle = test_bundle();
        let mut engine = Scheduler::new(bundle, ServeConfig::default()).unwrap();
        let id = engine.open(1).unwrap().id().unwrap();
        let err = engine.push(id, vec![Frame(vec![0.0; 3])]).unwrap_err();
        assert!(matches!(err, Error::Shape { .. }));
        engine.close_input(id);
        assert_eq!(engine.drain().unwrap().len(), 1);
    }

    #[test]
    fn degraded_bundle_downgrades_beam_to_nbest() {
        let bundle = test_bundle();
        let d = degraded(&bundle);
        assert!(matches!(d.policy, PolicyKind::LooseNBest(_)));
        assert!((d.beam.beam - bundle.beam.beam * DEGRADED_BEAM_SCALE).abs() < 1e-6);
        assert_eq!(d.beam.acoustic_scale, bundle.beam.acoustic_scale);
    }
}
