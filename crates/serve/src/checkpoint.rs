//! Session checkpoint/restore (ISSUE 7): a live utterance, serialized at
//! a frame boundary.
//!
//! A [`SessionCheckpoint`] captures everything a [`crate::Session`] is
//! between micro-batches: its identity and quality tier, the un-scored
//! frames still buffered, the mid-utterance decoder state
//! ([`darkside_decoder::SearchCore::save_state`] — token set, word-link
//! arena, cumulative [`darkside_decoder::DecodeStats`]), and the pruning
//! policy's cumulative accounting
//! ([`darkside_decoder::PruningPolicy::save_state`]). Restoring on *any*
//! shard of *any* engine serving the same bundle finishes the utterance
//! **bit-for-bit** identical to an uninterrupted run — words, cost bits,
//! and every stats field (property-tested in
//! `tests/checkpoint_restore.rs`).
//!
//! The blob format is the `darkside_decoder::wire` codec (little-endian,
//! length-checked) behind a magic + version header, so a truncated,
//! foreign, or stale blob fails [`SessionCheckpoint::from_bytes`] cleanly
//! instead of resurrecting garbage.

use crate::session::SessionId;
use darkside_decoder::wire;
use darkside_error::Error;
use darkside_nn::{Frame, Precision};
use darkside_wfst::GraphKind;

/// `"DSCK"` — darkside checkpoint.
const MAGIC: u32 = u32::from_le_bytes(*b"DSCK");
/// v2 (ISSUE 8) added a graph-kind tag after the session id, so a blob
/// saved against a lazy graph is never restored into an engine serving an
/// eager one. v3 (ISSUE 10) adds a scoring-precision tag after it, so a
/// blob saved against an f32 scorer is never restored onto an int8 one
/// (different posteriors ⇒ a silently corrupted decode). Older blobs are
/// rejected — checkpoints are short-lived migration artifacts, not
/// archives.
const VERSION: u32 = 3;

/// A serialized mid-utterance session (see module docs). Obtain one from
/// [`crate::ShardedScheduler::checkpoint`] (or [`crate::Session::checkpoint`]
/// directly), move it as bytes, and hand it to
/// [`crate::ShardedScheduler::restore`].
#[derive(Clone, Debug)]
pub struct SessionCheckpoint {
    pub(crate) id: SessionId,
    /// Which graph representation the session was decoding against.
    pub(crate) graph_kind: GraphKind,
    /// Which scoring precision the session was decoded under.
    pub(crate) precision: Precision,
    pub(crate) degraded: bool,
    pub(crate) input_closed: bool,
    pub(crate) frames_in: usize,
    pub(crate) submitted_ns: u64,
    pub(crate) pending: Vec<Frame>,
    pub(crate) core: Vec<u8>,
    pub(crate) policy: Vec<u8>,
}

impl SessionCheckpoint {
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Whether the session was being served under the degraded
    /// (narrow-beam, bounded N-best) configuration; restore rebuilds the
    /// matching policy.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Which graph representation (eager / lazy) the session was decoding
    /// against; restore requires the target engine's bundle to match.
    pub fn graph_kind(&self) -> GraphKind {
        self.graph_kind
    }

    /// Which scoring precision (f32 / int8) the session was decoded under;
    /// restore requires the target engine's bundle to match.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Un-scored frames the checkpoint carries — the queue budget a
    /// restore must re-reserve.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Serialize to a self-describing byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u32(&mut out, MAGIC);
        wire::put_u32(&mut out, VERSION);
        wire::put_u64(&mut out, self.id.0);
        wire::put_u32(&mut out, self.graph_kind.tag());
        wire::put_u32(&mut out, self.precision.tag());
        wire::put_bool(&mut out, self.degraded);
        wire::put_bool(&mut out, self.input_closed);
        wire::put_usize(&mut out, self.frames_in);
        wire::put_u64(&mut out, self.submitted_ns);
        wire::put_usize(&mut out, self.pending.len());
        for f in &self.pending {
            wire::put_usize(&mut out, f.0.len());
            for &v in &f.0 {
                wire::put_f32(&mut out, v);
            }
        }
        wire::put_bytes(&mut out, &self.core);
        wire::put_bytes(&mut out, &self.policy);
        out
    }

    /// Deserialize a blob written by [`SessionCheckpoint::to_bytes`].
    /// Truncation, trailing bytes, a wrong magic, or an unknown version
    /// all fail with a `darkside-error` `Error`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        let mut r = wire::Reader::new(bytes);
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(Error::shape(
                "SessionCheckpoint",
                format!("bad magic {magic:#010x} (not a checkpoint blob)"),
            ));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(Error::shape(
                "SessionCheckpoint",
                format!("unsupported checkpoint version {version} (expected {VERSION})"),
            ));
        }
        let id = SessionId(r.u64()?);
        let graph_kind = GraphKind::from_tag(r.u32()?)?;
        let precision = Precision::from_tag(r.u32()?)?;
        let degraded = r.bool()?;
        let input_closed = r.bool()?;
        let frames_in = r.usize()?;
        let submitted_ns = r.u64()?;
        let num_pending = r.len(8)?;
        let mut pending = Vec::with_capacity(num_pending);
        for _ in 0..num_pending {
            let dim = r.len(4)?;
            let mut frame = Vec::with_capacity(dim);
            for _ in 0..dim {
                frame.push(r.f32()?);
            }
            pending.push(Frame(frame));
        }
        let core = r.bytes()?.to_vec();
        let policy = r.bytes()?.to_vec();
        r.finish("SessionCheckpoint")?;
        Ok(Self {
            id,
            graph_kind,
            precision,
            degraded,
            input_closed,
            frames_in,
            submitted_ns,
            pending,
            core,
            policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionCheckpoint {
        SessionCheckpoint {
            id: SessionId(42),
            graph_kind: GraphKind::Lazy,
            precision: Precision::Int8,
            degraded: true,
            input_closed: false,
            frames_in: 9,
            submitted_ns: 123_456_789,
            pending: vec![Frame(vec![1.5, -2.25]), Frame(vec![0.0, f32::MIN])],
            core: vec![1, 2, 3, 4],
            policy: vec![9, 8],
        }
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = SessionCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.id, ck.id);
        assert_eq!(back.graph_kind, GraphKind::Lazy);
        assert_eq!(back.precision, Precision::Int8);
        assert_eq!(back.degraded, ck.degraded);
        assert_eq!(back.input_closed, ck.input_closed);
        assert_eq!(back.frames_in, ck.frames_in);
        assert_eq!(back.submitted_ns, ck.submitted_ns);
        assert_eq!(back.pending.len(), 2);
        for (a, b) in back.pending.iter().zip(&ck.pending) {
            let a: Vec<u32> = a.0.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = b.0.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
        assert_eq!(back.core, ck.core);
        assert_eq!(back.policy, ck.policy);
        // Serialization is deterministic.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_blobs_fail_cleanly() {
        let bytes = sample().to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(SessionCheckpoint::from_bytes(&bad).is_err());
        // Unknown version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(SessionCheckpoint::from_bytes(&bad).is_err());
        // Unknown graph-kind tag (magic + version + id put it at 16..20).
        let mut bad = bytes.clone();
        bad[16..20].copy_from_slice(&99u32.to_le_bytes());
        assert!(SessionCheckpoint::from_bytes(&bad).is_err());
        // Unknown precision tag (right after the graph kind, at 20..24).
        let mut bad = bytes.clone();
        bad[20..24].copy_from_slice(&99u32.to_le_bytes());
        assert!(SessionCheckpoint::from_bytes(&bad).is_err());
        // Every truncation fails, none panic.
        for cut in 0..bytes.len() {
            assert!(
                SessionCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} should fail"
            );
        }
        // Trailing garbage fails.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(SessionCheckpoint::from_bytes(&bad).is_err());
    }
}
