//! # darkside-serve — streaming ASR serving engine (ISSUE 5)
//!
//! The paper's observation — pruning inflates per-frame Viterbi work and
//! blows up tail latency — only matters *operationally* when the pruned
//! model is serving live traffic. This crate turns the offline
//! reproduction into that serving context, with the workspace's
//! no-external-deps rule intact (std threads + mutexes only):
//!
//! * a [`Session`] holds one live utterance: an owning
//!   [`darkside_decoder::SearchCore`] (`Arc<Fst>`) plus its per-utterance
//!   [`darkside_decoder::PruningPolicy`], accepts feature frames
//!   incrementally, and yields partial
//!   ([`darkside_decoder::PartialHypothesis`]) and final
//!   ([`ServedResult`]) hypotheses;
//! * a [`Scheduler`] multiplexes N concurrent sessions: each
//!   [`Scheduler::step`] gathers ready frames across sessions into **one**
//!   [`darkside_nn::FrameScorer::score_frames`] micro-batch (amortizing
//!   the GEMM exactly like ISSUE 1's batched kernel, but across sessions
//!   instead of within one utterance), then fans the acoustic costs back
//!   to each session's decoder on a pool of worker threads;
//! * an [`AdmissionController`] enforces a session/queue-depth budget with
//!   explicit [`SubmitResponse::Rejected`] / degraded responses
//!   (beam-narrowing + policy downgrade to the paper's bounded loose
//!   N-best) instead of unbounded queueing, plus drain-based graceful
//!   shutdown ([`Scheduler::drain`]).
//!
//! The model enters as a [`darkside_core::ModelBundle`] — the servable
//! export of a finished `Pipeline` — so the engine serves dense and pruned
//! scorers through the identical path, which is what makes the paper's
//! served-p99-vs-sparsity story measurable (`darkside-bench --bin
//! serve_load`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use darkside_core::{Pipeline, PipelineConfig};
//! use darkside_serve::{Scheduler, ServeConfig, SubmitResponse};
//!
//! let pipeline = Pipeline::build(PipelineConfig::smoke()).unwrap();
//! let bundle = pipeline.servable_pruned(0.9).unwrap();
//! let mut engine = Scheduler::new(bundle, ServeConfig::default()).unwrap();
//! # let utterance_frames = Vec::new();
//! match engine.offer(utterance_frames).unwrap() {
//!     SubmitResponse::Admitted(id) | SubmitResponse::Degraded(id) => {
//!         while engine.active_sessions() > 0 {
//!             engine.step().unwrap();
//!         }
//!         let served = engine.take_completed();
//!         println!("{id}: {:?}", served[0].decode.as_ref().unwrap().words);
//!     }
//!     SubmitResponse::Rejected(reason) => eprintln!("shed: {reason:?}"),
//! }
//! ```

pub mod admission;
pub mod scheduler;
pub mod session;

pub use admission::{Admission, AdmissionController, RejectReason};
pub use scheduler::{Scheduler, SchedulerStats, StepStats, SubmitResponse};
pub use session::{ServedResult, Session, SessionId};

use darkside_error::Error;

/// Serving-engine knobs: worker pool size, micro-batch cap, and the
/// admission budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Decode worker threads the scheduler fans sessions across.
    pub workers: usize,
    /// Admission budget: maximum concurrent sessions.
    pub max_sessions: usize,
    /// Admission budget: maximum un-scored feature frames buffered across
    /// all sessions (bounds memory under overload — offers beyond it are
    /// rejected, never queued).
    pub max_queue_frames: usize,
    /// Micro-batch cap: at most this many frames are scored per
    /// [`Scheduler::step`], shared fairly across ready sessions.
    pub max_batch_frames: usize,
    /// Occupancy fraction of either budget beyond which newly admitted
    /// sessions are degraded (narrowed beam + bounded N-best policy)
    /// rather than served at full quality.
    pub degrade_fraction: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_sessions: 64,
            max_queue_frames: 16_384,
            max_batch_frames: 512,
            degrade_fraction: 0.75,
        }
    }
}

impl ServeConfig {
    pub(crate) fn validate(&self) -> Result<(), Error> {
        let fail = |detail: String| Err(Error::config("ServeConfig", detail));
        if self.workers == 0 {
            return fail("zero workers".into());
        }
        if self.max_sessions == 0 {
            return fail("zero max_sessions".into());
        }
        if self.max_batch_frames == 0 {
            return fail("zero max_batch_frames".into());
        }
        if self.max_queue_frames == 0 {
            return fail("zero max_queue_frames".into());
        }
        if !(0.0..=1.0).contains(&self.degrade_fraction) {
            return fail(format!("degrade_fraction {}", self.degrade_fraction));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_zero_budgets() {
        assert!(ServeConfig::default().validate().is_ok());
        for bad in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_sessions: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch_frames: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_queue_frames: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                degrade_fraction: 1.5,
                ..ServeConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }
}
