//! # darkside-serve — sharded streaming ASR serving engine (ISSUE 5 + 7)
//!
//! The paper's observation — pruning inflates per-frame Viterbi work and
//! blows up tail latency — only matters *operationally* when the pruned
//! model is serving live traffic. This crate turns the offline
//! reproduction into that serving context, with the workspace's
//! no-external-deps rule intact (std threads + mutexes only):
//!
//! * a [`Session`] holds one live utterance: an owning
//!   [`darkside_decoder::SearchCore`] (`Arc<Fst>`) plus its per-utterance
//!   [`darkside_decoder::PruningPolicy`], accepts feature frames
//!   incrementally, and yields partial
//!   ([`darkside_decoder::PartialHypothesis`]) and final
//!   ([`ServedResult`]) hypotheses; sessions checkpoint to bytes at frame
//!   boundaries ([`SessionCheckpoint`]) and restore on any shard with
//!   bit-identical results;
//! * a [`ShardedScheduler`] spreads sessions over
//!   [`ServeConfig::shards`] independent shards (home shard =
//!   `session id % shards`), each with its own session table, micro-batch
//!   loop, and metrics sink — shards step in parallel with **no shared
//!   mutex on the hot path**, and a dry shard steals ready sessions from
//!   the busiest one ([`ServeConfig::steal_threshold`]);
//! * an [`AdmissionController`] enforces session/queue budgets *and* a
//!   live latency SLO ([`ServeConfig::slo_p99_ms`], read from the shards'
//!   `serve.frame.ns` histograms): past-budget or past-2×SLO offers fail
//!   with a typed [`darkside_error::RejectReason`], borderline ones are
//!   served degraded (narrowed beam + bounded loose N-best — the paper's
//!   own mitigation for pruning-inflated search).
//!
//! The model enters as a [`darkside_core::ModelBundle`] — the servable
//! export of a finished `Pipeline` via
//! [`darkside_core::Pipeline::servable`] — so the engine serves dense and
//! pruned scorers through the identical path, which is what makes the
//! paper's served-p99-vs-sparsity story measurable (`darkside-bench --bin
//! serve_load`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use darkside_core::{Pipeline, PipelineConfig, ServableSpec};
//! use darkside_serve::{ServeConfig, ShardedScheduler};
//!
//! let pipeline = Pipeline::build(PipelineConfig::smoke()).unwrap();
//! let bundle = pipeline.servable(ServableSpec::pruned(0.9)).unwrap();
//! let cfg = ServeConfig::default()
//!     .with_shards(4)
//!     .with_slo_p99_ms(20.0);
//! let mut engine = ShardedScheduler::build(bundle, cfg).unwrap();
//! # let utterance_frames = Vec::new();
//! match engine.offer(utterance_frames) {
//!     Ok(response) => {
//!         while engine.active_sessions() > 0 {
//!             engine.step().unwrap();
//!         }
//!         let served = engine.take_completed();
//!         println!(
//!             "{}: {:?}",
//!             response.id(),
//!             served[0].decode.as_ref().unwrap().words
//!         );
//!     }
//!     Err(e) => eprintln!("shed: {:?}", e.reject_reason()),
//! }
//! ```

pub mod admission;
pub mod checkpoint;
pub mod exporter;
pub mod session;
mod shard;
pub mod sharded;

pub use admission::{Admission, AdmissionController};
pub use checkpoint::SessionCheckpoint;
pub use darkside_error::RejectReason;
pub use exporter::{Exporter, Exposition};
pub use session::{ServedResult, Session, SessionHealth, SessionId};
pub use sharded::{EngineStats, ShardedScheduler, StepStats, SubmitResponse};

use darkside_error::Error;
use darkside_trace::WindowConfig;

/// Per-session dark-side detector knobs (ISSUE 9): when to flag a live
/// session as exhibiting the paper's pruning pathology — score-margin
/// collapse and/or hypothesis blowup past a multiple of the dense
/// baseline. A session is flagged after [`DetectorConfig::window_frames`]
/// *consecutive* unhealthy frames (a streak, so one noisy frame never
/// flags), and a flagged session is downgraded to the bounded N-best
/// degrade tier — counted and typed, never silently.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectorConfig {
    /// Workload check: a frame is unhealthy when its live hypothesis count
    /// exceeds `hyps_multiple ×` the bundle's dense baseline
    /// (`ModelBundle::dense_hyps_baseline`; a non-positive baseline
    /// disables this check). The paper measures 3.63× at 90 % sparsity —
    /// the default 2.0 sits between healthy dense variance and that.
    pub hyps_multiple: f64,
    /// Confidence check: a frame is unhealthy when its best-vs-runner-up
    /// cost margin falls below this floor (the live analogue of the
    /// paper's softmax-confidence collapse). 0 disables the check
    /// (margins are non-negative).
    pub margin_floor: f32,
    /// Consecutive unhealthy frames before the session is flagged.
    pub window_frames: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            hyps_multiple: 2.0,
            margin_floor: 0.0,
            window_frames: 8,
        }
    }
}

impl DetectorConfig {
    pub fn with_hyps_multiple(mut self, hyps_multiple: f64) -> Self {
        self.hyps_multiple = hyps_multiple;
        self
    }

    pub fn with_margin_floor(mut self, margin_floor: f32) -> Self {
        self.margin_floor = margin_floor;
        self
    }

    pub fn with_window_frames(mut self, window_frames: u32) -> Self {
        self.window_frames = window_frames;
        self
    }

    fn validate(&self) -> Result<(), Error> {
        let fail = |detail: String| Err(Error::config("DetectorConfig", detail));
        if !(self.hyps_multiple.is_finite() && self.hyps_multiple > 1.0) {
            return fail(format!(
                "hyps_multiple {} must exceed 1",
                self.hyps_multiple
            ));
        }
        if !(self.margin_floor.is_finite() && self.margin_floor >= 0.0) {
            return fail(format!(
                "margin_floor {} must be finite ≥ 0",
                self.margin_floor
            ));
        }
        if self.window_frames == 0 {
            return fail("zero window_frames".into());
        }
        Ok(())
    }
}

/// Serving-engine knobs (validated at [`ShardedScheduler::build`], mirror
/// of the `PipelineConfig` builder idiom): shard/worker topology,
/// micro-batch cap, admission budgets, and the latency SLO.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Independent scheduler shards; sessions hash onto them by id and
    /// shards step in parallel. Default: one per available core, capped
    /// at 8.
    pub shards: usize,
    /// Decode worker threads **per shard** for the post-score fan-out.
    /// The default 1 keeps each shard single-threaded (parallelism comes
    /// from the shards themselves).
    pub workers: usize,
    /// Admission budget: maximum concurrent sessions, engine-wide.
    pub max_sessions: usize,
    /// Admission budget: maximum un-scored feature frames buffered across
    /// all sessions (bounds memory under overload — offers beyond it are
    /// rejected, never queued).
    pub max_queue_frames: usize,
    /// Micro-batch cap: at most this many frames are scored per shard per
    /// [`ShardedScheduler::step`], shared fairly across ready sessions.
    pub max_batch_frames: usize,
    /// Occupancy fraction of either budget beyond which newly admitted
    /// sessions are degraded (narrowed beam + bounded N-best policy)
    /// rather than served at full quality.
    pub degrade_fraction: f64,
    /// Per-frame p99 latency target, milliseconds. When set, admission
    /// reads the live `serve.frame.ns` p99 from the shard histograms:
    /// past the target new sessions degrade, past 2× they are rejected
    /// with [`RejectReason::SloBreach`]. `None` disables SLO admission.
    pub slo_p99_ms: Option<f64>,
    /// Work stealing: a shard with no ready frames steals a session from
    /// the busiest shard, provided the donor has at least this many ready
    /// frames (and ≥ 2 ready sessions, so stealing never ping-pongs a
    /// lone session). 0 disables stealing.
    pub steal_threshold: usize,
    /// Per-session dark-side detector (ISSUE 9). `None` (the default)
    /// disables it entirely: sessions carry no health state and decode
    /// bit-for-bit as before.
    pub detector: Option<DetectorConfig>,
    /// Sliding-window telemetry (ISSUE 9). When set, every shard recorder
    /// (and the scheduler's own) keeps windowed counter/histogram views
    /// with this geometry alongside the cumulative ones, and
    /// [`ShardedScheduler::telemetry`] reports live rates over the window.
    /// `None` (the default) keeps recorders cumulative-only.
    pub telemetry: Option<WindowConfig>,
    /// Metrics exposition endpoint (ISSUE 9). When set, the scheduler
    /// starts a background [`Exporter`] bound to `127.0.0.1:port` (0 picks
    /// an ephemeral port — read it back via
    /// [`ShardedScheduler::exporter_addr`]) serving the fleet-wide merged
    /// snapshot as Prometheus text (`GET /metrics`) and a JSONL event
    /// stream (`GET /events`).
    pub exporter_port: Option<u16>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            shards: cores.min(8),
            workers: 1,
            max_sessions: 64,
            max_queue_frames: 16_384,
            max_batch_frames: 512,
            degrade_fraction: 0.75,
            slo_p99_ms: None,
            steal_threshold: 32,
            detector: None,
            telemetry: None,
            exporter_port: None,
        }
    }
}

impl ServeConfig {
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    pub fn with_max_queue_frames(mut self, max_queue_frames: usize) -> Self {
        self.max_queue_frames = max_queue_frames;
        self
    }

    pub fn with_max_batch_frames(mut self, max_batch_frames: usize) -> Self {
        self.max_batch_frames = max_batch_frames;
        self
    }

    pub fn with_degrade_fraction(mut self, degrade_fraction: f64) -> Self {
        self.degrade_fraction = degrade_fraction;
        self
    }

    pub fn with_slo_p99_ms(mut self, slo_p99_ms: f64) -> Self {
        self.slo_p99_ms = Some(slo_p99_ms);
        self
    }

    pub fn with_steal_threshold(mut self, steal_threshold: usize) -> Self {
        self.steal_threshold = steal_threshold;
        self
    }

    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = Some(detector);
        self
    }

    pub fn with_telemetry(mut self, window: WindowConfig) -> Self {
        self.telemetry = Some(window);
        self
    }

    pub fn with_exporter_port(mut self, port: u16) -> Self {
        self.exporter_port = Some(port);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), Error> {
        let fail = |detail: String| Err(Error::config("ServeConfig", detail));
        if self.shards == 0 {
            return fail("zero shards".into());
        }
        if self.workers == 0 {
            return fail("zero workers".into());
        }
        if self.max_sessions == 0 {
            return fail("zero max_sessions".into());
        }
        if self.max_batch_frames == 0 {
            return fail("zero max_batch_frames".into());
        }
        if self.max_queue_frames == 0 {
            return fail("zero max_queue_frames".into());
        }
        if !(0.0..=1.0).contains(&self.degrade_fraction) {
            return fail(format!("degrade_fraction {}", self.degrade_fraction));
        }
        if let Some(slo) = self.slo_p99_ms {
            if !(slo.is_finite() && slo > 0.0) {
                return fail(format!("slo_p99_ms {slo} is not a positive duration"));
            }
        }
        if let Some(detector) = &self.detector {
            detector.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_zero_budgets() {
        assert!(ServeConfig::default().validate().is_ok());
        for bad in [
            ServeConfig::default().with_shards(0),
            ServeConfig::default().with_workers(0),
            ServeConfig::default().with_max_sessions(0),
            ServeConfig::default().with_max_batch_frames(0),
            ServeConfig::default().with_max_queue_frames(0),
            ServeConfig::default().with_degrade_fraction(1.5),
            ServeConfig::default().with_degrade_fraction(-0.1),
            ServeConfig::default().with_slo_p99_ms(0.0),
            ServeConfig::default().with_slo_p99_ms(f64::NAN),
            ServeConfig::default().with_detector(DetectorConfig::default().with_hyps_multiple(1.0)),
            ServeConfig::default()
                .with_detector(DetectorConfig::default().with_hyps_multiple(f64::NAN)),
            ServeConfig::default().with_detector(DetectorConfig::default().with_margin_floor(-1.0)),
            ServeConfig::default()
                .with_detector(DetectorConfig::default().with_margin_floor(f32::INFINITY)),
            ServeConfig::default().with_detector(DetectorConfig::default().with_window_frames(0)),
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn builder_chain_sets_every_knob() {
        let cfg = ServeConfig::default()
            .with_shards(3)
            .with_workers(2)
            .with_max_sessions(10)
            .with_max_queue_frames(100)
            .with_max_batch_frames(32)
            .with_degrade_fraction(0.5)
            .with_slo_p99_ms(12.5)
            .with_steal_threshold(7)
            .with_detector(
                DetectorConfig::default()
                    .with_hyps_multiple(3.0)
                    .with_margin_floor(0.25)
                    .with_window_frames(16),
            )
            .with_telemetry(WindowConfig::of_seconds(4.0, 8))
            .with_exporter_port(0);
        assert_eq!(cfg.shards, 3);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.max_sessions, 10);
        assert_eq!(cfg.max_queue_frames, 100);
        assert_eq!(cfg.max_batch_frames, 32);
        assert_eq!(cfg.degrade_fraction, 0.5);
        assert_eq!(cfg.slo_p99_ms, Some(12.5));
        assert_eq!(cfg.steal_threshold, 7);
        let detector = cfg.detector.expect("detector set");
        assert_eq!(detector.hyps_multiple, 3.0);
        assert_eq!(detector.margin_floor, 0.25);
        assert_eq!(detector.window_frames, 16);
        assert_eq!(cfg.telemetry, Some(WindowConfig::of_seconds(4.0, 8)));
        assert_eq!(cfg.exporter_port, Some(0));
        assert!(cfg.validate().is_ok());
    }
}
