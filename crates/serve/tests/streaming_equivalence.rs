//! ISSUE 5 satellite (re-based on the ISSUE 7 sharded engine): streaming
//! decodes are **bit-for-bit** identical to one-shot
//! [`decode_with_policy`] — same words, same f32 costs, same per-frame
//! effort stats — for all three pruning policies, on random graphs, at
//! two independent seeds.
//!
//! Two layers of the claim:
//!
//! 1. **Session level** — feeding a [`Session`] its cost rows in random
//!    chunk sizes (one frame at a time, ragged pieces, everything at once)
//!    cannot change the decode: the `SearchCore` recursion is
//!    frame-synchronous, so only row *order* matters, never grouping.
//! 2. **Engine level** — running many sessions concurrently through
//!    [`ShardedScheduler::step`] micro-batches (sessions hashed across
//!    shards, frames scored in cross-session GEMM batches, decoders
//!    advanced on per-shard worker pools, dry shards stealing ready
//!    sessions) still reproduces each utterance's one-shot decode exactly.
//!    This additionally leans on the batched-scoring row-equality property
//!    (`ragged_batches.rs`).

mod common;

use common::{
    assert_bit_identical, policies, random_costs, random_graph, random_mlp, random_utterance,
};
use darkside_decoder::{acoustic_costs, decode_with_policy, BeamConfig, DecodeResult};
use darkside_nn::check::run_cases;
use darkside_nn::{Frame, FrameScorer, Matrix, Precision};
use darkside_serve::{ServeConfig, Session, SessionId, ShardedScheduler, SubmitResponse};
use darkside_wfst::{Fst, GraphKind};
use std::sync::Arc;

/// Stream `costs` through a session in random-sized chunks (scheduler
/// batch boundaries land anywhere, including single frames).
fn stream_decode(
    graph: &Arc<Fst>,
    costs: &Matrix,
    kind: darkside_core::PolicyKind,
    beam: &BeamConfig,
    rng: &mut darkside_nn::Rng,
) -> Result<DecodeResult, darkside_decoder::Error> {
    let mut session = Session::new(
        SessionId(0),
        graph.clone(),
        GraphKind::Eager,
        Precision::F32,
        kind.build(beam).unwrap(),
        false,
    )
    .unwrap();
    let mut next = 0;
    while next < costs.rows() {
        let chunk = 1 + rng.below(costs.rows() - next);
        session.push((next..next + chunk).map(|t| Frame(costs.row(t).to_vec())));
        let taken = session.take_ready(chunk);
        assert_eq!(taken.len(), chunk);
        session.advance_rows(costs, next..next + chunk);
        next += chunk;
    }
    session.close_input();
    assert!(session.is_done());
    session.finalize().decode
}

fn session_streaming_case(seed: u64) {
    let beam = BeamConfig {
        beam: 4.0,
        ..BeamConfig::default()
    };
    run_cases(seed, 40, |rng, case| {
        let graph = Arc::new(random_graph(rng));
        let costs = random_costs(rng);
        for kind in policies() {
            let mut oneshot_policy = kind.build(&beam).unwrap();
            let oneshot = decode_with_policy(&graph, &costs, oneshot_policy.as_mut());
            let streamed = stream_decode(&graph, &costs, kind, &beam, rng);
            match (streamed, oneshot) {
                (Ok(streamed), Ok(oneshot)) => assert_bit_identical(
                    &streamed,
                    &oneshot,
                    &format!("case {case} policy {}", kind.label()),
                ),
                (Err(_), Err(_)) => {} // both searches died — equivalent too
                (streamed, oneshot) => panic!(
                    "case {case} policy {}: streamed ok={} vs oneshot ok={}",
                    kind.label(),
                    streamed.is_ok(),
                    oneshot.is_ok()
                ),
            }
        }
    });
}

#[test]
fn session_streaming_matches_oneshot_seed_a() {
    session_streaming_case(0x5EED_000A);
}

#[test]
fn session_streaming_matches_oneshot_seed_b() {
    session_streaming_case(0x5EED_000B);
}

fn sharded_streaming_case(seed: u64) {
    let beam = BeamConfig {
        beam: 6.0,
        ..BeamConfig::default()
    };
    run_cases(seed, 8, |rng, case| {
        let graph = Arc::new(random_graph(rng));
        let mlp = Arc::new(random_mlp(rng));
        let utts: Vec<Vec<Frame>> = (0..4)
            .map(|_| {
                let frames = 1 + rng.below(10);
                random_utterance(rng, mlp.input_dim(), frames)
            })
            .collect();
        for kind in policies() {
            let bundle = common::bundle_for(&graph, &mlp, beam, kind);
            // 2 shards + a tiny batch cap + an eager steal threshold: each
            // utterance's rows split across several cross-session
            // micro-batches, and sessions migrate mid-utterance when one
            // shard drains first. None of it may change a single bit.
            let mut engine = ShardedScheduler::build(
                bundle,
                ServeConfig::default()
                    .with_shards(2)
                    .with_workers(2)
                    .with_max_batch_frames(5)
                    .with_steal_threshold(1)
                    .with_degrade_fraction(1.0),
            )
            .unwrap();
            let mut ids = Vec::new();
            for u in &utts {
                match engine.offer(u.clone()).unwrap() {
                    SubmitResponse::Admitted(id) => ids.push(id),
                    other => panic!("case {case}: unexpected {other:?}"),
                }
            }
            let mut served = engine.drain().unwrap();
            served.sort_by_key(|r| r.id);
            assert_eq!(served.len(), utts.len());
            for (r, u) in served.iter().zip(&utts) {
                let costs = acoustic_costs(&mlp.score_frames(u), &beam);
                let mut policy = kind.build(&beam).unwrap();
                let oneshot = decode_with_policy(&graph, &costs, policy.as_mut());
                match (&r.decode, oneshot) {
                    (Ok(streamed), Ok(oneshot)) => assert_bit_identical(
                        streamed,
                        &oneshot,
                        &format!("case {case} policy {} session {}", kind.label(), r.id),
                    ),
                    (Err(_), Err(_)) => {}
                    (streamed, oneshot) => panic!(
                        "case {case} policy {} session {}: served ok={} vs oneshot ok={}",
                        kind.label(),
                        r.id,
                        streamed.is_ok(),
                        oneshot.is_ok()
                    ),
                }
            }
        }
    });
}

#[test]
fn sharded_microbatching_matches_oneshot_seed_a() {
    sharded_streaming_case(0xBA7C_000A);
}

#[test]
fn sharded_microbatching_matches_oneshot_seed_b() {
    sharded_streaming_case(0xBA7C_000B);
}
