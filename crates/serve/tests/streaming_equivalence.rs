//! ISSUE 5 satellite: streaming decodes are **bit-for-bit** identical to
//! one-shot [`decode_with_policy`] — same words, same f32 costs, same
//! per-frame effort stats — for all three pruning policies, on random
//! graphs, at two independent seeds.
//!
//! Two layers of the claim:
//!
//! 1. **Session level** — feeding a [`Session`] its cost rows in random
//!    chunk sizes (one frame at a time, ragged pieces, everything at once)
//!    cannot change the decode: the `SearchCore` recursion is
//!    frame-synchronous, so only row *order* matters, never grouping.
//! 2. **Scheduler level** — running many sessions concurrently through
//!    [`Scheduler::step`] micro-batches (frames scored in cross-session
//!    GEMM batches, decoders advanced on a worker pool) still reproduces
//!    each utterance's one-shot decode exactly. This additionally leans on
//!    the batched-scoring row-equality property (`ragged_batches.rs`).

use darkside_core::{ModelBundle, PolicyKind};
use darkside_decoder::{acoustic_costs, decode_with_policy, BeamConfig, DecodeResult};
use darkside_nn::check::run_cases;
use darkside_nn::{Frame, FrameScorer, Matrix, Mlp, Rng};
use darkside_serve::{Scheduler, ServeConfig, Session, SessionId, SubmitResponse};
use darkside_viterbi_accel::{NBestTableConfig, UnfoldHashConfig};
use darkside_wfst::{Arc as FstArc, Fst, TropicalWeight, EPSILON};
use std::sync::Arc;

const NUM_CLASSES: usize = 5;
const MAX_STATES: usize = 40;

/// The three policy kinds under test, with deliberately *bounded* storage
/// (a tight N-best table and a cramped UNFOLD hash) so eviction/overflow
/// paths are exercised — streaming must reproduce even lossy decodes
/// exactly, not just the well-behaved ones.
fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Beam,
        PolicyKind::UnfoldHash(UnfoldHashConfig {
            entries: 8,
            backup_capacity: 4,
        }),
        PolicyKind::LooseNBest(NBestTableConfig {
            entries: 16,
            ways: 4,
        }),
    ]
}

/// Random input-eps-free decoding graph (same family as the decoder's own
/// policy property tests): class ilabels, occasional word olabels,
/// continuous weights so cost ties are measure-zero.
fn random_graph(rng: &mut Rng) -> Fst {
    let n = 2 + rng.below(MAX_STATES - 1);
    let mut fst = Fst::new();
    for _ in 0..n {
        fst.add_state();
    }
    fst.set_start(0);
    for s in 0..n as u32 {
        for _ in 0..1 + rng.below(3) {
            let olabel = if rng.next_f32() < 0.3 {
                1 + rng.below(7) as u32
            } else {
                EPSILON
            };
            fst.add_arc(
                s,
                FstArc {
                    ilabel: 1 + rng.below(NUM_CLASSES) as u32,
                    olabel,
                    weight: TropicalWeight(rng.uniform(0.0, 2.0)),
                    next: rng.below(n) as u32,
                },
            );
        }
    }
    for s in 0..n as u32 {
        if rng.next_f32() < 0.3 {
            fst.set_final(s, TropicalWeight(rng.uniform(0.0, 1.0)));
        }
    }
    if (0..n as u32).all(|s| !fst.is_final(s)) {
        fst.set_final((n - 1) as u32, TropicalWeight::ONE);
    }
    fst
}

fn random_costs(rng: &mut Rng) -> Matrix {
    let frames = 1 + rng.below(12);
    Matrix::from_fn(frames, NUM_CLASSES, |_, _| rng.uniform(0.0, 4.0))
}

/// Every field the decode produces, bitwise. `cost` and `best_cost` are
/// compared through `to_bits` — "close enough" would hide a reordered
/// accumulation.
fn assert_bit_identical(streamed: &DecodeResult, oneshot: &DecodeResult, what: &str) {
    assert_eq!(streamed.words, oneshot.words, "{what}: words");
    assert_eq!(
        streamed.cost.to_bits(),
        oneshot.cost.to_bits(),
        "{what}: cost bits ({} vs {})",
        streamed.cost,
        oneshot.cost
    );
    assert_eq!(
        streamed.reached_final, oneshot.reached_final,
        "{what}: reached_final"
    );
    let s = &streamed.stats;
    let o = &oneshot.stats;
    assert_eq!(s.active_tokens, o.active_tokens, "{what}: active_tokens");
    assert_eq!(s.arcs_expanded, o.arcs_expanded, "{what}: arcs_expanded");
    assert_eq!(
        s.best_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        o.best_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        "{what}: best_cost bits"
    );
    assert_eq!(
        s.table_occupancy, o.table_occupancy,
        "{what}: table_occupancy"
    );
    assert_eq!(s.evictions, o.evictions, "{what}: evictions");
    assert_eq!(s.overflows, o.overflows, "{what}: overflows");
    assert_eq!(s.table_reads, o.table_reads, "{what}: table_reads");
    assert_eq!(s.table_writes, o.table_writes, "{what}: table_writes");
}

/// Stream `costs` through a session in random-sized chunks (scheduler
/// batch boundaries land anywhere, including single frames).
fn stream_decode(
    graph: &Arc<Fst>,
    costs: &Matrix,
    kind: PolicyKind,
    beam: &BeamConfig,
    rng: &mut Rng,
) -> Result<DecodeResult, darkside_decoder::Error> {
    let mut session = Session::new(
        SessionId(0),
        graph.clone(),
        kind.build(beam).unwrap(),
        false,
    )
    .unwrap();
    let mut next = 0;
    while next < costs.rows() {
        let chunk = 1 + rng.below(costs.rows() - next);
        session.push((next..next + chunk).map(|t| Frame(costs.row(t).to_vec())));
        let taken = session.take_ready(chunk);
        assert_eq!(taken.len(), chunk);
        session.advance_rows(costs, next..next + chunk);
        next += chunk;
    }
    session.close_input();
    assert!(session.is_done());
    session.finalize().decode
}

fn session_streaming_case(seed: u64) {
    let beam = BeamConfig {
        beam: 4.0,
        ..BeamConfig::default()
    };
    run_cases(seed, 40, |rng, case| {
        let graph = Arc::new(random_graph(rng));
        let costs = random_costs(rng);
        for kind in policies() {
            let mut oneshot_policy = kind.build(&beam).unwrap();
            let oneshot = decode_with_policy(&graph, &costs, oneshot_policy.as_mut());
            let streamed = stream_decode(&graph, &costs, kind, &beam, rng);
            match (streamed, oneshot) {
                (Ok(streamed), Ok(oneshot)) => assert_bit_identical(
                    &streamed,
                    &oneshot,
                    &format!("case {case} policy {}", kind.label()),
                ),
                (Err(_), Err(_)) => {} // both searches died — equivalent too
                (streamed, oneshot) => panic!(
                    "case {case} policy {}: streamed ok={} vs oneshot ok={}",
                    kind.label(),
                    streamed.is_ok(),
                    oneshot.is_ok()
                ),
            }
        }
    });
}

#[test]
fn session_streaming_matches_oneshot_seed_a() {
    session_streaming_case(0x5EED_000A);
}

#[test]
fn session_streaming_matches_oneshot_seed_b() {
    session_streaming_case(0x5EED_000B);
}

/// A small random acoustic MLP whose class count matches the random
/// graphs' ilabel alphabet.
fn random_mlp(rng: &mut Rng) -> Mlp {
    Mlp::kaldi_style(6, 8, 2, 1, NUM_CLASSES, rng)
}

fn random_utterance(rng: &mut Rng, dim: usize, frames: usize) -> Vec<Frame> {
    (0..frames)
        .map(|_| Frame((0..dim).map(|_| rng.normal()).collect()))
        .collect()
}

fn scheduler_streaming_case(seed: u64) {
    let beam = BeamConfig {
        beam: 6.0,
        ..BeamConfig::default()
    };
    run_cases(seed, 8, |rng, case| {
        let graph = Arc::new(random_graph(rng));
        let mlp = Arc::new(random_mlp(rng));
        let utts: Vec<Vec<Frame>> = (0..4)
            .map(|_| {
                let frames = 1 + rng.below(10);
                random_utterance(rng, mlp.input_dim(), frames)
            })
            .collect();
        for kind in policies() {
            let bundle = ModelBundle {
                graph: graph.clone(),
                scorer: mlp.clone(),
                beam,
                policy: kind,
                label: kind.label().to_string(),
                sparsity: 0.0,
                structure: "unstructured".to_string(),
            };
            // A tiny batch cap + 2 workers forces each utterance's rows to
            // split across several cross-session micro-batches.
            let mut engine = Scheduler::new(
                bundle,
                ServeConfig {
                    workers: 2,
                    max_batch_frames: 5,
                    degrade_fraction: 1.0,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let mut ids = Vec::new();
            for u in &utts {
                match engine.offer(u.clone()).unwrap() {
                    SubmitResponse::Admitted(id) => ids.push(id),
                    other => panic!("case {case}: unexpected {other:?}"),
                }
            }
            let mut served = engine.drain().unwrap();
            served.sort_by_key(|r| r.id);
            assert_eq!(served.len(), utts.len());
            for (r, u) in served.iter().zip(&utts) {
                let costs = acoustic_costs(&mlp.score_frames(u), &beam);
                let mut policy = kind.build(&beam).unwrap();
                let oneshot = decode_with_policy(&graph, &costs, policy.as_mut());
                match (&r.decode, oneshot) {
                    (Ok(streamed), Ok(oneshot)) => assert_bit_identical(
                        streamed,
                        &oneshot,
                        &format!("case {case} policy {} session {}", kind.label(), r.id),
                    ),
                    (Err(_), Err(_)) => {}
                    (streamed, oneshot) => panic!(
                        "case {case} policy {} session {}: served ok={} vs oneshot ok={}",
                        kind.label(),
                        r.id,
                        streamed.is_ok(),
                        oneshot.is_ok()
                    ),
                }
            }
        }
    });
}

#[test]
fn scheduler_microbatching_matches_oneshot_seed_a() {
    scheduler_streaming_case(0xBA7C_000A);
}

#[test]
fn scheduler_microbatching_matches_oneshot_seed_b() {
    scheduler_streaming_case(0xBA7C_000B);
}
