//! ISSUE 5 satellite: cross-session micro-batched scoring is **exactly**
//! per-utterance scoring — row for row, bit for bit — for the dense
//! [`Mlp`] and the CSR-backed [`PrunedMlp`], over ragged batch
//! compositions.
//!
//! This is the property the [`darkside_serve::ShardedScheduler`] stands on: it
//! concatenates ready frames from many sessions into one
//! [`FrameScorer::score_frames`] call and hands each session its row
//! slice, claiming the session cannot tell the difference. That claim is
//! exact (not approximate) because every layer in the stack is row-wise —
//! the GEMM accumulates each output element over `k` in a fixed order that
//! does not depend on how many other rows share the batch, and LDA /
//! p-norm / renormalize / softmax never mix rows. If someone later makes
//! the kernels batch-adaptive (tile by batch height, reorder reductions),
//! this test is the tripwire: serving would silently stop being
//! reproducible.

use darkside_nn::check::run_cases;
use darkside_nn::{Frame, FrameScorer, Mlp, Rng};
use darkside_pruning::{prune_mlp_to_sparsity, PrunedMlp};

/// Random batch compositions: up to 8 "sessions", each contributing 0–12
/// frames (zero-length contributions model sessions with nothing ready —
/// the scheduler never includes them, but the math must not care).
fn ragged_utterances(rng: &mut Rng, dim: usize) -> Vec<Vec<Frame>> {
    let sessions = 1 + rng.below(8);
    (0..sessions)
        .map(|_| {
            let frames = rng.below(13);
            (0..frames)
                .map(|_| Frame((0..dim).map(|_| rng.normal()).collect()))
                .collect()
        })
        .collect()
}

/// Score each utterance alone, then all concatenated in one call, and
/// demand bitwise row equality.
fn assert_batching_exact(scorer: &dyn FrameScorer, utts: &[Vec<Frame>], what: &str) {
    let batch: Vec<Frame> = utts.iter().flatten().cloned().collect();
    let batched = scorer.score_frames(&batch);
    assert_eq!(batched.num_frames(), batch.len());
    let mut row = 0;
    for (u, utt) in utts.iter().enumerate() {
        let solo = scorer.score_frames(utt);
        assert_eq!(solo.num_frames(), utt.len());
        for t in 0..utt.len() {
            let solo_row = solo.probs.row(t);
            let batch_row = batched.probs.row(row);
            for (c, (a, b)) in solo_row.iter().zip(batch_row).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{what}: utt {u} frame {t} class {c}: solo {a} vs batched {b}"
                );
            }
            row += 1;
        }
    }
    assert_eq!(row, batch.len());
}

#[test]
fn dense_mlp_batched_scoring_is_exact() {
    run_cases(0xD05E, 30, |rng, case| {
        let mlp = Mlp::kaldi_style(6, 8, 2, 1 + rng.below(2), 5, rng);
        let utts = ragged_utterances(rng, mlp.input_dim());
        assert_batching_exact(&mlp, &utts, &format!("dense case {case}"));
    });
}

#[test]
fn pruned_mlp_batched_scoring_is_exact() {
    run_cases(0x0005_EA5E, 30, |rng, case| {
        let mlp = Mlp::kaldi_style(6, 8, 2, 1, 5, rng);
        // Heavy pruning (the paper's regime) — the CSR spmm path must hold
        // the same row-independence property as the dense GEMM.
        let pruned = PrunedMlp::from_prune_result(&mlp, &prune_mlp_to_sparsity(&mlp, 0.9, 0.02));
        assert!(pruned.sparsity() > 0.5, "case {case}: prune ineffective");
        let utts = ragged_utterances(rng, mlp.input_dim());
        assert_batching_exact(&pruned, &utts, &format!("pruned case {case}"));
    });
}

/// The serving boundary case: one session dominating the batch next to
/// many single-frame sessions (the worst ragged skew the fair-share
/// gather can produce).
#[test]
fn skewed_composition_is_exact() {
    run_cases(0x53EF, 10, |rng, case| {
        let mlp = Mlp::kaldi_style(6, 8, 2, 1, 5, rng);
        let dim = mlp.input_dim();
        let mut utts = vec![(0..40)
            .map(|_| Frame((0..dim).map(|_| rng.normal()).collect()))
            .collect::<Vec<_>>()];
        for _ in 0..7 {
            utts.push(vec![Frame((0..dim).map(|_| rng.normal()).collect())]);
        }
        assert_batching_exact(&mlp, &utts, &format!("skew case {case}"));
    });
}
