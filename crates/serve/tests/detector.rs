//! ISSUE 9 satellites: the dark-side detector is decode-neutral while
//! sessions stay healthy (and when it is off entirely), flags degrade
//! sessions visibly — counted and typed, never silently — and the
//! exposition endpoint serves the live fleet state.

mod common;

use common::{assert_bit_identical, policies, random_graph, random_mlp, random_utterance};
use darkside_decoder::BeamConfig;
use darkside_nn::check::run_cases;
use darkside_nn::Frame;
use darkside_serve::{DetectorConfig, ServeConfig, ShardedScheduler};
use darkside_trace::WindowConfig;
use std::io::{Read, Write};
use std::sync::Arc;

/// Telemetry windows + a detector that can never fire (no margin floor,
/// astronomically high workload multiple) leave every served decode
/// bit-for-bit identical to the plain engine's: health tracking is pure
/// observation until a flag actually lands.
#[test]
fn armed_but_untriggered_detector_is_decode_neutral() {
    let beam = BeamConfig {
        beam: 6.0,
        ..BeamConfig::default()
    };
    run_cases(0xD7EC_700A, 6, |rng, case| {
        let graph = Arc::new(random_graph(rng));
        let mlp = Arc::new(random_mlp(rng));
        let utts: Vec<Vec<Frame>> = (0..4)
            .map(|_| {
                let frames = 1 + rng.below(10);
                random_utterance(rng, mlp.input_dim(), frames)
            })
            .collect();
        for kind in policies() {
            let base_cfg = ServeConfig::default()
                .with_shards(2)
                .with_max_batch_frames(5)
                .with_degrade_fraction(1.0);
            let serve = |cfg: ServeConfig| {
                let mut bundle = common::bundle_for(&graph, &mlp, beam, kind);
                bundle.dense_hyps_baseline = 1.0;
                let mut engine = ShardedScheduler::build(bundle, cfg).unwrap();
                for u in &utts {
                    engine.offer(u.clone()).unwrap();
                }
                let mut served = engine.drain().unwrap();
                served.sort_by_key(|r| r.id);
                served
            };
            let plain = serve(base_cfg);
            let armed = serve(
                base_cfg
                    .with_telemetry(WindowConfig::of_seconds(2.0, 4))
                    .with_detector(
                        DetectorConfig::default()
                            .with_hyps_multiple(1e12)
                            .with_margin_floor(0.0),
                    ),
            );
            for (p, a) in plain.iter().zip(&armed) {
                assert_eq!(p.id, a.id);
                assert_eq!(a.flagged_at, None, "case {case}: spurious flag");
                assert!(!a.degraded, "case {case}: spurious degrade");
                match (&p.decode, &a.decode) {
                    (Ok(p), Ok(a)) => assert_bit_identical(
                        a,
                        p,
                        &format!("case {case} policy {} detector-armed", kind.label()),
                    ),
                    (Err(_), Err(_)) => {}
                    (p, a) => panic!(
                        "case {case} policy {}: plain ok={} vs armed ok={}",
                        kind.label(),
                        p.is_ok(),
                        a.is_ok()
                    ),
                }
            }
        }
    });
}

/// A workload threshold below one hypothesis makes every frame unhealthy:
/// each session must flag exactly at the streak length, downgrade to the
/// degraded tier, and show up in every ledger — the result, the engine
/// stats, the typed admission counter, and the trace metrics.
#[test]
fn flagged_sessions_degrade_counted_and_typed() {
    let beam = BeamConfig {
        beam: 6.0,
        ..BeamConfig::default()
    };
    let mut rng = darkside_nn::Rng::new(0xD7EC_700B);
    let graph = Arc::new(random_graph(&mut rng));
    let mlp = Arc::new(random_mlp(&mut rng));
    let mut bundle = common::bundle_for(&graph, &mlp, beam, darkside_core::PolicyKind::Beam);
    // Threshold = 2.0 × 0.01 = 0.02 hypotheses: any live frame breaches it.
    bundle.dense_hyps_baseline = 0.01;
    let window_frames = 3;
    let mut engine = ShardedScheduler::build(
        bundle,
        ServeConfig::default()
            .with_shards(2)
            .with_max_batch_frames(4)
            .with_degrade_fraction(1.0)
            .with_detector(DetectorConfig::default().with_window_frames(window_frames)),
    )
    .unwrap();
    let n = 4;
    for _ in 0..n {
        let u = random_utterance(&mut rng, mlp.input_dim(), 10);
        engine.offer(u).unwrap();
    }
    let served = engine.drain().unwrap();
    assert_eq!(served.len(), n);
    for r in &served {
        assert!(r.decode.is_ok(), "{:?}", r.decode);
        assert_eq!(
            r.flagged_at,
            Some(window_frames),
            "session {} should flag exactly after the streak",
            r.id
        );
        assert!(r.degraded, "flagged session {} must be degraded", r.id);
    }
    assert_eq!(engine.stats().flagged, n as u64);
    assert_eq!(engine.admission().detector_degraded(), n as u64);
    // Admission-time degrades stayed zero — the two degrade paths are
    // typed apart.
    assert_eq!(engine.admission().degraded(), 0);
    let metrics = engine.metrics();
    assert_eq!(metrics.counters["serve.detector.flagged"], n as u64);
    let time_to_flag = &metrics.histograms["serve.detector.frames_to_flag"];
    assert_eq!(time_to_flag.count, n as u64);
    assert_eq!(time_to_flag.max, window_frames as f64);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// End-to-end exposition: a scrape mid-serve sees the fleet series,
/// per-shard labelled series, and one gauge per live session; a scrape
/// after drain sees the final counters.
#[test]
fn exposition_endpoint_serves_live_fleet_state() {
    let beam = BeamConfig {
        beam: 6.0,
        ..BeamConfig::default()
    };
    let mut rng = darkside_nn::Rng::new(0xD7EC_700C);
    let graph = Arc::new(random_graph(&mut rng));
    let mlp = Arc::new(random_mlp(&mut rng));
    let bundle = common::bundle_for(&graph, &mlp, beam, darkside_core::PolicyKind::Beam);
    let mut engine = ShardedScheduler::build(
        bundle,
        ServeConfig::default()
            .with_shards(2)
            .with_max_batch_frames(2)
            .with_degrade_fraction(1.0)
            .with_telemetry(WindowConfig::of_seconds(2.0, 4))
            .with_exporter_port(0),
    )
    .unwrap();
    let addr = engine.exporter_addr().expect("exporter configured");
    for _ in 0..2 {
        let u = random_utterance(&mut rng, mlp.input_dim(), 12);
        engine.offer(u).unwrap();
    }
    // One step scores 2×2 frames and publishes; both sessions stay live.
    engine.step().unwrap();
    let scrape = http_get(addr, "/metrics");
    assert!(scrape.starts_with("HTTP/1.0 200"), "{scrape}");
    assert!(
        scrape.contains("darkside_serve_frame_ns"),
        "fleet series missing:\n{scrape}"
    );
    assert!(
        scrape.contains("shard=\"0\"") && scrape.contains("shard=\"1\""),
        "per-shard series missing:\n{scrape}"
    );
    assert!(
        scrape.contains("darkside_serve_session_frames{shard=\"0\",session=\"s0\""),
        "per-session gauge missing:\n{scrape}"
    );
    // Windowed view flows through: the window-scoped series exist.
    assert!(
        scrape.contains("_window"),
        "windowed series missing:\n{scrape}"
    );
    engine.drain().unwrap();
    let scrape = http_get(addr, "/metrics");
    assert!(
        scrape.contains("darkside_serve_session_completed_total 2"),
        "final counters missing:\n{scrape}"
    );
    // Sessions are gone; no per-session gauges remain.
    assert!(
        !scrape.contains("darkside_serve_session_frames{"),
        "stale session gauges:\n{scrape}"
    );
}
