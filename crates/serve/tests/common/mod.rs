//! Shared generators and assertions for the serve integration tests
//! (`streaming_equivalence.rs`, `checkpoint_restore.rs`).

#![allow(dead_code)]

use darkside_core::{ModelBundle, PolicyKind};
use darkside_decoder::{BeamConfig, DecodeResult};
use darkside_nn::{Frame, Matrix, Mlp, Precision, Rng};
use darkside_viterbi_accel::{NBestTableConfig, UnfoldHashConfig};
use darkside_wfst::{Arc as FstArc, Fst, GraphKind, TropicalWeight, EPSILON};
use std::sync::Arc;

pub const NUM_CLASSES: usize = 5;
pub const MAX_STATES: usize = 40;

/// The three policy kinds under test, with deliberately *bounded* storage
/// (a tight N-best table and a cramped UNFOLD hash) so eviction/overflow
/// paths are exercised — streaming and checkpoint/restore must reproduce
/// even lossy decodes exactly, not just the well-behaved ones.
pub fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Beam,
        PolicyKind::UnfoldHash(UnfoldHashConfig {
            entries: 8,
            backup_capacity: 4,
        }),
        PolicyKind::LooseNBest(NBestTableConfig {
            entries: 16,
            ways: 4,
        }),
    ]
}

/// Random input-eps-free decoding graph (same family as the decoder's own
/// policy property tests): class ilabels, occasional word olabels,
/// continuous weights so cost ties are measure-zero.
pub fn random_graph(rng: &mut Rng) -> Fst {
    let n = 2 + rng.below(MAX_STATES - 1);
    let mut fst = Fst::new();
    for _ in 0..n {
        fst.add_state();
    }
    fst.set_start(0);
    for s in 0..n as u32 {
        for _ in 0..1 + rng.below(3) {
            let olabel = if rng.next_f32() < 0.3 {
                1 + rng.below(7) as u32
            } else {
                EPSILON
            };
            fst.add_arc(
                s,
                FstArc {
                    ilabel: 1 + rng.below(NUM_CLASSES) as u32,
                    olabel,
                    weight: TropicalWeight(rng.uniform(0.0, 2.0)),
                    next: rng.below(n) as u32,
                },
            );
        }
    }
    for s in 0..n as u32 {
        if rng.next_f32() < 0.3 {
            fst.set_final(s, TropicalWeight(rng.uniform(0.0, 1.0)));
        }
    }
    if (0..n as u32).all(|s| !fst.is_final(s)) {
        fst.set_final((n - 1) as u32, TropicalWeight::ONE);
    }
    fst
}

pub fn random_costs(rng: &mut Rng) -> Matrix {
    let frames = 1 + rng.below(12);
    Matrix::from_fn(frames, NUM_CLASSES, |_, _| rng.uniform(0.0, 4.0))
}

/// A small random acoustic MLP whose class count matches the random
/// graphs' ilabel alphabet.
pub fn random_mlp(rng: &mut Rng) -> Mlp {
    Mlp::kaldi_style(6, 8, 2, 1, NUM_CLASSES, rng)
}

pub fn random_utterance(rng: &mut Rng, dim: usize, frames: usize) -> Vec<Frame> {
    (0..frames)
        .map(|_| Frame((0..dim).map(|_| rng.normal()).collect()))
        .collect()
}

/// A bundle over a shared random graph + MLP for one policy kind.
pub fn bundle_for(
    graph: &Arc<Fst>,
    mlp: &Arc<Mlp>,
    beam: BeamConfig,
    kind: PolicyKind,
) -> ModelBundle {
    ModelBundle {
        graph: graph.clone(),
        graph_kind: GraphKind::Eager,
        scorer: mlp.clone(),
        beam,
        policy: kind,
        label: kind.label().to_string(),
        sparsity: 0.0,
        structure: "unstructured".to_string(),
        precision: Precision::F32,
        // No probe data for these synthetic bundles: the detector's
        // workload check stays off unless a test sets one.
        dense_hyps_baseline: 0.0,
    }
}

/// Every field the decode produces, bitwise. `cost` and `best_cost` are
/// compared through `to_bits` — "close enough" would hide a reordered
/// accumulation. `frame_ns` is the one exclusion: it is wall-clock timing
/// (populated only under an active trace recorder), not decode output.
pub fn assert_bit_identical(streamed: &DecodeResult, oneshot: &DecodeResult, what: &str) {
    assert_eq!(streamed.words, oneshot.words, "{what}: words");
    assert_eq!(
        streamed.cost.to_bits(),
        oneshot.cost.to_bits(),
        "{what}: cost bits ({} vs {})",
        streamed.cost,
        oneshot.cost
    );
    assert_eq!(
        streamed.reached_final, oneshot.reached_final,
        "{what}: reached_final"
    );
    let s = &streamed.stats;
    let o = &oneshot.stats;
    assert_eq!(s.active_tokens, o.active_tokens, "{what}: active_tokens");
    assert_eq!(s.arcs_expanded, o.arcs_expanded, "{what}: arcs_expanded");
    assert_eq!(
        s.best_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        o.best_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        "{what}: best_cost bits"
    );
    assert_eq!(
        s.table_occupancy, o.table_occupancy,
        "{what}: table_occupancy"
    );
    assert_eq!(s.evictions, o.evictions, "{what}: evictions");
    assert_eq!(s.overflows, o.overflows, "{what}: overflows");
    assert_eq!(s.table_reads, o.table_reads, "{what}: table_reads");
    assert_eq!(s.table_writes, o.table_writes, "{what}: table_writes");
}
