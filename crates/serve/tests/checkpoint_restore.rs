//! ISSUE 7 satellite: session checkpoint/restore is **lossless** — a
//! session checkpointed at a random frame boundary, serialized to bytes,
//! and restored (on a different shard of a different engine) finishes
//! bit-for-bit identical to an uninterrupted one-shot decode: same words,
//! same f32 cost bits, same per-frame effort stats, for all three pruning
//! policies. Plus the drain-termination guarantee: draining with work
//! stealing enabled always terminates, even when every long session homes
//! onto one shard.

mod common;

use common::{
    assert_bit_identical, policies, random_costs, random_graph, random_mlp, random_utterance,
};
use darkside_core::{Pipeline, PipelineConfig, ServableSpec};
use darkside_decoder::{acoustic_costs, decode_with_policy, BeamConfig};
use darkside_nn::check::run_cases;
use darkside_nn::{Frame, FrameScorer, Precision};
use darkside_serve::{ServeConfig, Session, SessionCheckpoint, SessionId, ShardedScheduler};
use darkside_wfst::GraphKind;
use std::sync::Arc;

/// Session-level property: push everything, score a random prefix,
/// checkpoint, byte-round-trip, restore into a *fresh* session (new policy
/// instance), score the rest — the decode must be bit-identical to the
/// uninterrupted one-shot for every policy. The prefix can be empty
/// (checkpoint before any scoring), including on errored-at-frame-0
/// searches.
fn checkpoint_boundary_case(seed: u64) {
    let beam = BeamConfig {
        beam: 4.0,
        ..BeamConfig::default()
    };
    run_cases(seed, 30, |rng, case| {
        let graph = Arc::new(random_graph(rng));
        let costs = random_costs(rng);
        for kind in policies() {
            let what = format!("case {case} policy {}", kind.label());
            let mut oneshot_policy = kind.build(&beam).unwrap();
            let oneshot = decode_with_policy(&graph, &costs, oneshot_policy.as_mut());
            // Random checkpoint boundary strictly before the last frame.
            let cut = rng.below(costs.rows());
            let mut session = Session::new(
                SessionId(7),
                graph.clone(),
                GraphKind::Eager,
                Precision::F32,
                kind.build(&beam).unwrap(),
                false,
            )
            .unwrap();
            session.push((0..costs.rows()).map(|t| Frame(costs.row(t).to_vec())));
            session.close_input();
            let taken = session.take_ready(cut);
            assert_eq!(taken.len(), cut, "{what}");
            session.advance_rows(&costs, 0..cut);
            let ckpt = match session.checkpoint() {
                Ok(ckpt) => ckpt,
                Err(_) => {
                    // The search died inside the prefix; the same
                    // deterministic search must die one-shot too.
                    assert!(oneshot.is_err(), "{what}: errored streamed, ok oneshot");
                    continue;
                }
            };
            // Through bytes, like a real migration would move it.
            let restored_ckpt = SessionCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
            assert_eq!(restored_ckpt.pending_frames(), costs.rows() - cut, "{what}");
            let mut restored = Session::restore(
                &restored_ckpt,
                graph.clone(),
                GraphKind::Eager,
                Precision::F32,
                kind.build(&beam).unwrap(),
            )
            .unwrap();
            let rest = restored.ready();
            assert_eq!(rest, costs.rows() - cut, "{what}: pending after restore");
            restored.take_ready(rest);
            restored.advance_rows(&costs, cut..costs.rows());
            assert!(restored.is_done(), "{what}: restored session not done");
            match (restored.finalize().decode, oneshot) {
                (Ok(resumed), Ok(oneshot)) => {
                    assert_bit_identical(&resumed, &oneshot, &format!("{what} cut {cut}"))
                }
                (Err(_), Err(_)) => {}
                (resumed, oneshot) => panic!(
                    "{what} cut {cut}: resumed ok={} vs oneshot ok={}",
                    resumed.is_ok(),
                    oneshot.is_ok()
                ),
            }
        }
    });
}

#[test]
fn random_boundary_checkpoints_resume_bit_identical_seed_a() {
    checkpoint_boundary_case(0xC4EC_000A);
}

#[test]
fn random_boundary_checkpoints_resume_bit_identical_seed_b() {
    checkpoint_boundary_case(0xC4EC_000B);
}

/// Engine-level: checkpoint a mid-utterance session out of a 3-shard
/// engine after a random number of micro-batch steps, move it as bytes to
/// a *different* engine with a *different* shard count (so the session's
/// home shard changes), and finish it there. Both the migrated session
/// and the sessions left behind must match their one-shot decodes
/// bit-for-bit.
#[test]
fn checkpoint_migrates_between_engines_with_different_shard_counts() {
    let beam = BeamConfig {
        beam: 6.0,
        ..BeamConfig::default()
    };
    run_cases(0xC4EC_00E0, 6, |rng, case| {
        let graph = Arc::new(random_graph(rng));
        let mlp = Arc::new(random_mlp(rng));
        let long = random_utterance(rng, mlp.input_dim(), 12);
        let background: Vec<Vec<Frame>> = (0..2)
            .map(|_| {
                let frames = 2 + rng.below(5);
                random_utterance(rng, mlp.input_dim(), frames)
            })
            .collect();
        for kind in policies() {
            let what = format!("case {case} policy {}", kind.label());
            let bundle = common::bundle_for(&graph, &mlp, beam, kind);
            let mut engine_a = ShardedScheduler::build(
                bundle.clone(),
                ServeConfig::default()
                    .with_shards(3)
                    .with_max_batch_frames(2)
                    .with_degrade_fraction(1.0),
            )
            .unwrap();
            let target = engine_a.offer(long.clone()).unwrap().id();
            for u in &background {
                engine_a.offer(u.clone()).unwrap();
            }
            // Score a random, partial prefix of the long utterance: with a
            // 2-frame cap per shard step, the 12-frame target survives.
            for _ in 0..1 + rng.below(3) {
                engine_a.step().unwrap();
            }
            let blob = engine_a.checkpoint(target).unwrap().to_bytes();
            let ckpt = SessionCheckpoint::from_bytes(&blob).unwrap();
            let mut engine_b = ShardedScheduler::build(
                bundle,
                ServeConfig::default()
                    .with_shards(2)
                    .with_degrade_fraction(1.0),
            )
            .unwrap();
            assert_eq!(engine_b.restore(&ckpt).unwrap(), target, "{what}");
            let served_b = engine_b.drain().unwrap();
            assert_eq!(served_b.len(), 1, "{what}");
            assert_eq!(served_b[0].id, target, "{what}");
            assert_eq!(served_b[0].frames, long.len(), "{what}");
            let costs = acoustic_costs(&mlp.score_frames(&long), &beam);
            let mut policy = kind.build(&beam).unwrap();
            let oneshot = decode_with_policy(&graph, &costs, policy.as_mut());
            match (&served_b[0].decode, oneshot) {
                (Ok(migrated), Ok(oneshot)) => {
                    assert_bit_identical(migrated, &oneshot, &format!("{what} migrated"))
                }
                (Err(_), Err(_)) => {}
                (migrated, oneshot) => panic!(
                    "{what}: migrated ok={} vs oneshot ok={}",
                    migrated.is_ok(),
                    oneshot.is_ok()
                ),
            }
            // The sessions left on engine A are untouched by the export.
            let mut served_a = engine_a.drain().unwrap();
            served_a.sort_by_key(|r| r.id);
            assert_eq!(served_a.len(), background.len(), "{what}");
            for (r, u) in served_a.iter().zip(&background) {
                let costs = acoustic_costs(&mlp.score_frames(u), &beam);
                let mut policy = kind.build(&beam).unwrap();
                let oneshot = decode_with_policy(&graph, &costs, policy.as_mut());
                match (&r.decode, oneshot) {
                    (Ok(stayed), Ok(oneshot)) => {
                        assert_bit_identical(stayed, &oneshot, &format!("{what} stayed {}", r.id))
                    }
                    (Err(_), Err(_)) => {}
                    (stayed, oneshot) => panic!(
                        "{what} stayed {}: ok={} vs oneshot ok={}",
                        r.id,
                        stayed.is_ok(),
                        oneshot.is_ok()
                    ),
                }
            }
        }
    });
}

/// ISSUE 8 satellite: a session decoding against a **lazy** composed
/// graph checkpoints mid-utterance, migrates as bytes into a fresh engine
/// serving the same lazy bundle, and finishes bit-for-bit identical to
/// the one-shot decode against that graph. An engine serving the *eager*
/// build of the same pipeline refuses the blob — the graph kind rides the
/// wire format (checkpoint v2), so mid-utterance token state can never be
/// replayed against the wrong representation.
#[test]
fn lazy_graph_sessions_migrate_and_reject_kind_mismatch() {
    let lazy = Pipeline::build(
        PipelineConfig::smoke()
            .with_training(0, 0)
            .with_lazy_graph(64),
    )
    .unwrap();
    let bundle = lazy.servable(ServableSpec::dense()).unwrap();
    assert_eq!(bundle.graph_kind, GraphKind::Lazy);
    let frames = lazy.test_set()[0].frames.clone();
    assert!(frames.len() >= 2, "need a mid-utterance boundary");

    let mut engine_a = ShardedScheduler::build(
        bundle.clone(),
        ServeConfig::default()
            .with_shards(2)
            .with_max_batch_frames(1)
            .with_degrade_fraction(1.0),
    )
    .unwrap();
    let target = engine_a.offer(frames.clone()).unwrap().id();
    engine_a.step().unwrap();
    let blob = engine_a.checkpoint(target).unwrap().to_bytes();
    let ckpt = SessionCheckpoint::from_bytes(&blob).unwrap();
    assert_eq!(ckpt.graph_kind(), GraphKind::Lazy);
    assert!(
        ckpt.pending_frames() > 0,
        "checkpoint must be mid-utterance"
    );

    // Same pipeline configuration, eager graph: the blob is refused.
    let eager = Pipeline::build(PipelineConfig::smoke().with_training(0, 0)).unwrap();
    let eager_bundle = eager.servable(ServableSpec::dense()).unwrap();
    assert_eq!(eager_bundle.graph_kind, GraphKind::Eager);
    let mut engine_wrong = ShardedScheduler::build(
        eager_bundle,
        ServeConfig::default().with_degrade_fraction(1.0),
    )
    .unwrap();
    assert!(engine_wrong.restore(&ckpt).is_err());

    // A fresh lazy engine finishes the migrated session bit-for-bit.
    let mut engine_b = ShardedScheduler::build(
        bundle.clone(),
        ServeConfig::default().with_degrade_fraction(1.0),
    )
    .unwrap();
    assert_eq!(engine_b.restore(&ckpt).unwrap(), target);
    let served = engine_b.drain().unwrap();
    assert_eq!(served.len(), 1);
    assert_eq!(served[0].id, target);
    let costs = acoustic_costs(&bundle.scorer.score_frames(&frames), &bundle.beam);
    let mut policy = bundle.build_policy().unwrap();
    let oneshot = decode_with_policy(&bundle.graph, &costs, policy.as_mut()).unwrap();
    assert_bit_identical(
        served[0].decode.as_ref().unwrap(),
        &oneshot,
        "lazy migrated",
    );
}

/// ISSUE 10 satellite: the scoring precision rides the wire format
/// (checkpoint v3). A session checkpointed against an f32-served bundle
/// is refused by an engine serving the int8 quantization of the *same*
/// model — their posteriors differ, so finishing the utterance on the
/// other scorer would silently corrupt the decode — and a same-precision
/// engine restores it and finishes bit-for-bit.
#[test]
fn precision_mismatch_is_refused_at_restore() {
    let pipeline = Pipeline::build(PipelineConfig::smoke().with_training(0, 0)).unwrap();
    let f32_bundle = pipeline.servable(ServableSpec::dense()).unwrap();
    assert_eq!(f32_bundle.precision, Precision::F32);
    let int8_bundle = pipeline
        .servable(ServableSpec::dense().with_precision(Precision::Int8))
        .unwrap();
    assert_eq!(int8_bundle.precision, Precision::Int8);

    let frames = pipeline.test_set()[0].frames.clone();
    assert!(frames.len() >= 2, "need a mid-utterance boundary");
    let mut engine_f32 = ShardedScheduler::build(
        f32_bundle.clone(),
        ServeConfig::default()
            .with_shards(2)
            .with_max_batch_frames(1)
            .with_degrade_fraction(1.0),
    )
    .unwrap();
    let target = engine_f32.offer(frames.clone()).unwrap().id();
    engine_f32.step().unwrap();
    let blob = engine_f32.checkpoint(target).unwrap().to_bytes();
    let ckpt = SessionCheckpoint::from_bytes(&blob).unwrap();
    assert_eq!(ckpt.precision(), Precision::F32);
    assert!(ckpt.pending_frames() > 0, "must be mid-utterance");

    // Same graph, same weights, int8 scorer: refused.
    let mut engine_int8 = ShardedScheduler::build(
        int8_bundle,
        ServeConfig::default().with_degrade_fraction(1.0),
    )
    .unwrap();
    assert!(engine_int8.restore(&ckpt).is_err());

    // A fresh f32 engine finishes the migrated session bit-for-bit.
    let mut engine_back = ShardedScheduler::build(
        f32_bundle.clone(),
        ServeConfig::default().with_degrade_fraction(1.0),
    )
    .unwrap();
    assert_eq!(engine_back.restore(&ckpt).unwrap(), target);
    let served = engine_back.drain().unwrap();
    assert_eq!(served.len(), 1);
    let costs = acoustic_costs(&f32_bundle.scorer.score_frames(&frames), &f32_bundle.beam);
    let mut policy = f32_bundle.build_policy().unwrap();
    let oneshot = decode_with_policy(&f32_bundle.graph, &costs, policy.as_mut()).unwrap();
    assert_bit_identical(
        served[0].decode.as_ref().unwrap(),
        &oneshot,
        "f32 migrated across precision-checked engines",
    );
}

/// Drain-termination under stealing: every long utterance homes onto
/// shard 0 (ids ≡ 0 mod 4), the other shards run dry after their short
/// sessions finish, and draining must still terminate — with the dry
/// shards actually stealing the stranded work.
#[test]
fn drain_with_stealing_terminates_and_rebalances() {
    let beam = BeamConfig {
        beam: 6.0,
        ..BeamConfig::default()
    };
    let mut rng = darkside_nn::Rng::new(0x57EA_1D01);
    let graph = Arc::new(random_graph(&mut rng));
    let mlp = Arc::new(random_mlp(&mut rng));
    let bundle = common::bundle_for(&graph, &mlp, beam, policies()[0]);
    let mut engine = ShardedScheduler::build(
        bundle,
        ServeConfig::default()
            .with_shards(4)
            .with_steal_threshold(1)
            .with_max_batch_frames(3)
            .with_degrade_fraction(1.0),
    )
    .unwrap();
    for i in 0..16 {
        // Home shard is id % 4: ids 0,4,8,12 (all home 0) get 24 frames,
        // everyone else 2 — shards 1..3 will run dry almost immediately.
        let frames = if i % 4 == 0 { 24 } else { 2 };
        let u = random_utterance(&mut rng, mlp.input_dim(), frames);
        engine.offer(u).unwrap();
    }
    let served = engine.drain().unwrap();
    assert_eq!(served.len(), 16);
    assert_eq!(engine.active_sessions(), 0);
    assert_eq!(engine.queued_frames(), 0);
    assert!(
        engine.stats().steals > 0,
        "dry shards never stole: {:?}",
        engine.stats()
    );
    for r in &served {
        assert!(r.decode.is_ok(), "session {} failed", r.id);
    }
}
