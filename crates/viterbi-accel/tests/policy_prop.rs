//! Policy-equivalence property tests (ISSUE 3 satellite).
//!
//! On random input-epsilon-free graphs:
//! * `LooseNBestPolicy` with *unbounded* capacity (one fully-associative
//!   set whose way count exceeds every possible active-state count, so
//!   nothing can ever be evicted or discarded) must decode identically to
//!   `BeamPolicy` with the same beam — same words, same cost, same
//!   per-frame stats;
//! * `UnfoldHashPolicy` must decode identically to `BeamPolicy` always
//!   (it stores every hypothesis somewhere; only the traffic accounting
//!   differs);
//! * a *bounded* N-best table never explores more hypotheses than the
//!   beam it loosens.

use darkside_decoder::{decode_with_policy, BeamPolicy, DecodeResult};
use darkside_nn::check::run_cases;
use darkside_nn::{Matrix, Rng};
use darkside_viterbi_accel::{
    LooseNBestPolicy, NBestTableConfig, UnfoldHashConfig, UnfoldHashPolicy,
};
use darkside_wfst::{Arc, Fst, TropicalWeight, EPSILON};

const NUM_CLASSES: usize = 5;
const MAX_STATES: usize = 50;

/// Random input-eps-free decoding graph: ≤50 states, class ilabels,
/// occasional word olabels, continuous weights (ties measure-zero).
fn random_graph(rng: &mut Rng) -> Fst {
    let n = 2 + rng.below(MAX_STATES - 1);
    let mut fst = Fst::new();
    for _ in 0..n {
        fst.add_state();
    }
    fst.set_start(0);
    for s in 0..n as u32 {
        for _ in 0..1 + rng.below(3) {
            let olabel = if rng.next_f32() < 0.3 {
                1 + rng.below(7) as u32
            } else {
                EPSILON
            };
            fst.add_arc(
                s,
                Arc {
                    ilabel: 1 + rng.below(NUM_CLASSES) as u32,
                    olabel,
                    weight: TropicalWeight(rng.uniform(0.0, 2.0)),
                    next: rng.below(n) as u32,
                },
            );
        }
    }
    for s in 0..n as u32 {
        if rng.next_f32() < 0.3 {
            fst.set_final(s, TropicalWeight(rng.uniform(0.0, 1.0)));
        }
    }
    if (0..n as u32).all(|s| !fst.is_final(s)) {
        fst.set_final((n - 1) as u32, TropicalWeight::ONE);
    }
    fst
}

fn random_costs(rng: &mut Rng) -> Matrix {
    let frames = 1 + rng.below(12);
    Matrix::from_fn(frames, NUM_CLASSES, |_, _| rng.uniform(0.0, 4.0))
}

fn assert_same_decode(a: &DecodeResult, b: &DecodeResult, what: &str) {
    assert_eq!(a.words, b.words, "{what}: words differ");
    assert_eq!(a.cost, b.cost, "{what}: cost differs");
    assert_eq!(a.reached_final, b.reached_final, "{what}: finish differs");
    assert_eq!(
        a.stats.active_tokens, b.stats.active_tokens,
        "{what}: active tokens differ"
    );
    assert_eq!(
        a.stats.arcs_expanded, b.stats.arcs_expanded,
        "{what}: arcs expanded differ"
    );
    assert_eq!(
        a.stats.best_cost, b.stats.best_cost,
        "{what}: best cost traces differ"
    );
}

#[test]
fn unbounded_nbest_equals_beam() {
    // One set, 64 ways ≥ 50 states: no set can ever fill, so no eviction
    // or discard is possible regardless of how states hash.
    let unbounded = NBestTableConfig {
        entries: 64,
        ways: 64,
    };
    let beam = 4.0f32;
    run_cases(0xAB3E, 60, |rng, case| {
        let graph = random_graph(rng);
        let costs = random_costs(rng);
        let mut beam_policy = BeamPolicy::new(beam);
        let mut nbest = LooseNBestPolicy::new(unbounded, beam).unwrap();
        let want = decode_with_policy(&graph, &costs, &mut beam_policy);
        let got = decode_with_policy(&graph, &costs, &mut nbest);
        match (want, got) {
            (Ok(want), Ok(got)) => {
                assert_same_decode(&got, &want, "nbest vs beam");
                assert_eq!(got.stats.evictions, 0, "case {case}: evicted");
                assert_eq!(got.stats.overflows, 0, "case {case}: discarded");
                // The table held exactly the admitted states each frame.
                assert!(got
                    .stats
                    .table_occupancy
                    .iter()
                    .zip(&got.stats.active_tokens)
                    .all(|(&occ, &active)| occ >= active));
            }
            (Err(_), Err(_)) => {} // both died on the same frame
            (want, got) => panic!(
                "case {case}: beam {:?} vs nbest {:?} disagree on failure",
                want.is_ok(),
                got.is_ok()
            ),
        }
    });
}

#[test]
fn unfold_equals_beam_always() {
    // Tiny hash + backup to force heavy collision/overflow traffic: the
    // decode must be unaffected because UNFOLD never drops a hypothesis.
    let cramped = UnfoldHashConfig {
        entries: 8,
        backup_capacity: 4,
    };
    let beam = 4.0f32;
    run_cases(0x0F01D, 60, |rng, case| {
        let graph = random_graph(rng);
        let costs = random_costs(rng);
        let mut beam_policy = BeamPolicy::new(beam);
        let mut unfold = UnfoldHashPolicy::new(cramped, beam).unwrap();
        let want = decode_with_policy(&graph, &costs, &mut beam_policy);
        let got = decode_with_policy(&graph, &costs, &mut unfold);
        match (want, got) {
            (Ok(want), Ok(got)) => {
                assert_same_decode(&got, &want, "unfold vs beam");
                assert_eq!(got.stats.evictions, 0, "case {case}: UNFOLD evicted");
            }
            (Err(_), Err(_)) => {}
            (want, got) => panic!(
                "case {case}: beam {:?} vs unfold {:?} disagree on failure",
                want.is_ok(),
                got.is_ok()
            ),
        }
    });
}

#[test]
fn bounded_nbest_never_explores_more_than_beam() {
    // A tight table (2 sets × 2 ways) loosens the beam *downward* only:
    // per-frame survivors, and therefore expanded arcs, can never exceed
    // the pure beam's.
    let tight = NBestTableConfig {
        entries: 4,
        ways: 2,
    };
    let beam = 6.0f32;
    run_cases(0xB071, 40, |rng, case| {
        let graph = random_graph(rng);
        let costs = random_costs(rng);
        let mut beam_policy = BeamPolicy::new(beam);
        let mut nbest = LooseNBestPolicy::new(tight, beam).unwrap();
        let want = decode_with_policy(&graph, &costs, &mut beam_policy);
        let got = decode_with_policy(&graph, &costs, &mut nbest);
        let (Ok(want), Ok(got)) = (want, got) else {
            return; // a died-out search has no effort to compare
        };
        for (frame, (&n, &b)) in got
            .stats
            .active_tokens
            .iter()
            .zip(&want.stats.active_tokens)
            .enumerate()
        {
            assert!(
                n <= b,
                "case {case} frame {frame}: nbest kept {n} tokens vs beam {b}"
            );
            assert!(n <= tight.entries, "case {case}: capacity exceeded");
        }
    });
}
