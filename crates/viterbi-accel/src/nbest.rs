//! The paper's loose N-best hypothesis selection (§IV, Fig. 8, Table III):
//! a K-way set-associative hash table whose sets keep their K cheapest
//! hypotheses via a Max-Heap replacement unit.
//!
//! Admission semantics, per candidate `(state, cost)`:
//! * hash the state to a set ([`NBestTableConfig::set_of`]);
//! * if the state is already held, update in place when the candidate is
//!   cheaper (a heap decrease-key, single sift);
//! * else insert when a way is free;
//! * else, when the candidate beats the set's worst entry (the heap root),
//!   replace the root and evict its state — the single-cycle Max-Heap
//!   replacement of Fig. 8;
//! * else discard the candidate (the "loose" part: a globally good
//!   hypothesis can be discarded because *its set* is full of better ones).
//!
//! The policy also applies the beam threshold at frame end, exactly like
//! [`darkside_decoder::BeamPolicy`] — the table bounds how many survivors
//! the threshold can let through, which is what keeps hypotheses/frame flat
//! across pruning levels (Fig. 7). With capacity no smaller than the
//! active-state set it admits everything the beam admits, making it
//! bit-identical to the beam policy (property-tested in
//! `tests/policy_prop.rs`).

use crate::NBestTableConfig;
use darkside_decoder::{wire, Admit, Error, FramePruneStats, PruningPolicy};
use darkside_hwmodel::{EnergyAccount, EnergyCoefficients};
use darkside_trace as trace;

/// CACTI-like per-access coefficients for the ~1 K-entry N-best table
/// (stand-in constants — DESIGN.md §2: paper-testbed energies enter only
/// as coefficients).
pub const NBEST_TABLE_ENERGY: EnergyCoefficients = EnergyCoefficients {
    read_pj: 1.2,
    write_pj: 1.4,
    leakage_pj_per_cycle: 0.05,
};

#[derive(Clone, Copy)]
struct Entry {
    state: u32,
    cost: f32,
}

/// The loose N-best pruning policy (paper geometry:
/// [`NBestTableConfig::paper`], 1024 entries × 8 ways).
pub struct LooseNBestPolicy {
    cfg: NBestTableConfig,
    beam: f32,
    best: f32,
    /// Per-set max-heaps (`sets[s].len() <= ways`, worst cost at the root).
    sets: Vec<Vec<Entry>>,
    frame: FramePruneStats,
    /// Cumulative eviction/overflow totals across the utterance, exported
    /// as named metrics by [`PruningPolicy::end_utterance`] (ISSUE 4).
    total_evictions: u64,
    total_overflows: u64,
    /// Cumulative table traffic across the utterance, for the energy model
    /// (multiply by [`NBEST_TABLE_ENERGY`]).
    pub energy: EnergyAccount,
}

impl LooseNBestPolicy {
    /// A policy over `cfg` geometry that also applies `beam` as the
    /// end-of-frame survivor threshold.
    pub fn new(cfg: NBestTableConfig, beam: f32) -> Result<Self, Error> {
        if cfg.ways == 0 || cfg.entries == 0 || !cfg.entries.is_multiple_of(cfg.ways) {
            return Err(Error::config(
                "LooseNBestPolicy",
                format!(
                    "{} entries not divisible into {}-way sets",
                    cfg.entries, cfg.ways
                ),
            ));
        }
        if !cfg.sets().is_power_of_two() {
            return Err(Error::config(
                "LooseNBestPolicy",
                format!("{} sets is not a power of two (XOR-fold hash)", cfg.sets()),
            ));
        }
        Ok(Self {
            cfg,
            beam,
            best: f32::INFINITY,
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets()],
            frame: FramePruneStats::default(),
            total_evictions: 0,
            total_overflows: 0,
            energy: EnergyAccount::default(),
        })
    }

    pub fn config(&self) -> NBestTableConfig {
        self.cfg
    }
}

impl PruningPolicy for LooseNBestPolicy {
    fn name(&self) -> &'static str {
        "nbest"
    }

    fn admit(&mut self, state: u32, cost: f32) -> Admit {
        self.best = self.best.min(cost);
        // Every candidate probes its set (tag compare across the ways).
        self.frame.reads += 1;
        self.energy.reads += 1;
        let ways = self.cfg.ways;
        let set = &mut self.sets[self.cfg.set_of(state as u64)];
        if let Some(i) = set.iter().position(|e| e.state == state) {
            if cost < set[i].cost {
                set[i].cost = cost;
                sift_down(set, i); // decrease-key in a max-heap
                self.frame.writes += 1;
                self.energy.writes += 1;
                Admit::Accept
            } else {
                Admit::Reject
            }
        } else if set.len() < ways {
            set.push(Entry { state, cost });
            let last = set.len() - 1;
            sift_up(set, last);
            self.frame.writes += 1;
            self.energy.writes += 1;
            Admit::Accept
        } else if cost < set[0].cost {
            // Fig. 8: replace the heap root (the set's worst) in one cycle.
            let victim = set[0].state;
            set[0] = Entry { state, cost };
            sift_down(set, 0);
            self.frame.writes += 1;
            self.energy.writes += 1;
            self.frame.evictions += 1;
            Admit::Replace(victim)
        } else {
            // Set full of cheaper hypotheses: the candidate is discarded.
            self.frame.overflows += 1;
            Admit::Reject
        }
    }

    fn end_frame(&mut self) -> FramePruneStats {
        let mut out = self.frame;
        out.cutoff = Some(self.best + self.beam);
        out.occupancy = self.sets.iter().map(Vec::len).sum();
        for set in &mut self.sets {
            set.clear(); // valid-bit flash; free in hardware
        }
        self.best = f32::INFINITY;
        self.frame = FramePruneStats::default();
        self.total_evictions += out.evictions;
        self.total_overflows += out.overflows;
        trace::sample("policy.nbest.occupancy", out.occupancy as f64);
        out
    }

    /// Export the utterance's cumulative table traffic and energy as named
    /// metrics (ISSUE 4). Call once per utterance — the totals are not
    /// reset (a fresh policy value per utterance is the documented contract).
    fn end_utterance(&mut self) {
        if !trace::active() {
            return;
        }
        trace::counter("policy.nbest.evictions", self.total_evictions);
        trace::counter("policy.nbest.overflows", self.total_overflows);
        self.energy.trace_as("nbest_table", &NBEST_TABLE_ENERGY);
    }

    /// Cross-frame state is pure accounting: the sets flash-clear at every
    /// [`PruningPolicy::end_frame`], so at a frame boundary only the
    /// cumulative totals persist (ISSUE 7 checkpoint).
    fn save_state(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.total_evictions);
        wire::put_u64(out, self.total_overflows);
        wire::put_u64(out, self.energy.reads);
        wire::put_u64(out, self.energy.writes);
        wire::put_u64(out, self.energy.powered_cycles);
    }

    fn restore_state(&mut self, r: &mut wire::Reader<'_>) -> Result<(), Error> {
        self.total_evictions = r.u64()?;
        self.total_overflows = r.u64()?;
        self.energy.reads = r.u64()?;
        self.energy.writes = r.u64()?;
        self.energy.powered_cycles = r.u64()?;
        Ok(())
    }
}

/// Restore the max-heap property upward from `i` (after a push).
fn sift_up(heap: &mut [Entry], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[i].cost > heap[parent].cost {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Restore the max-heap property downward from `i` (after a root
/// replacement or a decrease-key).
fn sift_down(heap: &mut [Entry], mut i: usize) {
    loop {
        let left = 2 * i + 1;
        let right = left + 1;
        let mut largest = i;
        if left < heap.len() && heap[left].cost > heap[largest].cost {
            largest = left;
        }
        if right < heap.len() && heap[right].cost > heap[largest].cost {
            largest = right;
        }
        if largest == i {
            break;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_set_policy(ways: usize) -> LooseNBestPolicy {
        LooseNBestPolicy::new(
            NBestTableConfig {
                entries: ways,
                ways,
            },
            f32::INFINITY,
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(LooseNBestPolicy::new(
            NBestTableConfig {
                entries: 10,
                ways: 4
            },
            1.0
        )
        .is_err());
        assert!(LooseNBestPolicy::new(
            NBestTableConfig {
                entries: 24,
                ways: 8
            },
            1.0
        )
        .is_err());
        assert!(LooseNBestPolicy::new(
            NBestTableConfig {
                entries: 0,
                ways: 8
            },
            1.0
        )
        .is_err());
    }

    #[test]
    fn full_set_evicts_its_worst_and_discards_worse() {
        let mut p = one_set_policy(2);
        assert_eq!(p.admit(1, 5.0), Admit::Accept);
        assert_eq!(p.admit(2, 3.0), Admit::Accept);
        // Worse than the set's worst (5.0): discarded.
        assert_eq!(p.admit(3, 6.0), Admit::Reject);
        // Better than the worst: replaces state 1 (the heap root).
        assert_eq!(p.admit(4, 4.0), Admit::Replace(1));
        // Update-in-place of a held state never evicts.
        assert_eq!(p.admit(2, 1.0), Admit::Accept);
        assert_eq!(p.admit(2, 2.0), Admit::Reject); // not an improvement
        let frame = p.end_frame();
        assert_eq!(frame.evictions, 1);
        assert_eq!(frame.overflows, 1);
        assert_eq!(frame.occupancy, 2);
        assert_eq!(frame.cutoff, Some(f32::INFINITY));
        // Table cleared for the next frame.
        assert_eq!(p.end_frame().occupancy, 0);
    }

    #[test]
    fn heap_replacement_always_targets_the_current_worst() {
        let mut p = one_set_policy(8);
        let costs = [9.0, 3.0, 7.0, 1.0, 8.0, 2.0, 6.0, 4.0];
        for (state, &cost) in costs.iter().enumerate() {
            assert_eq!(p.admit(state as u32, cost), Admit::Accept);
        }
        // Successive improving candidates must evict in worst-first order.
        assert_eq!(p.admit(100, 0.5), Admit::Replace(0)); // cost 9.0
        assert_eq!(p.admit(101, 0.5), Admit::Replace(4)); // cost 8.0
        assert_eq!(p.admit(102, 0.5), Admit::Replace(2)); // cost 7.0
        assert_eq!(p.end_frame().evictions, 3);
    }

    #[test]
    fn traffic_is_charged_to_the_energy_account() {
        let mut p = one_set_policy(2);
        p.admit(1, 1.0); // read + write
        p.admit(1, 2.0); // read only (no improvement)
        p.admit(2, 3.0); // read + write
        p.end_frame();
        assert_eq!(p.energy.reads, 3);
        assert_eq!(p.energy.writes, 2);
        assert!(p.energy.total_pj(&NBEST_TABLE_ENERGY) > 0.0);
    }
}
