//! The UNFOLD hypothesis-storage baseline (Yazdani et al., HPCA'17), as the
//! paper describes it in §II/§IV: a large hash table indexed by state id, a
//! small backup buffer that absorbs collisions, and an overflow path to
//! main memory when the backup buffer is also full.
//!
//! As a *pruning* policy UNFOLD is exactly the beam — it stores every
//! admitted hypothesis somewhere (hash slot, backup buffer, or spilled to
//! memory) and prunes only through the end-of-frame beam threshold, so its
//! decode results are bit-identical to [`darkside_decoder::BeamPolicy`]
//! (property-tested in `tests/policy_prop.rs`). What differs is the
//! *storage* accounting the paper compares against: a 32 K-entry table
//! burns ~7× the energy per access of the paper's 1 K-entry N-best table,
//! and every overflow is a DRAM round trip.
//!
//! Software model notes: the hash table is generation-stamped so per-frame
//! clearing is O(1); spilled states are not tracked, so every further touch
//! of a spilled state re-spills — pessimistic in the same direction as the
//! paper's overflow penalty.

use darkside_decoder::{wire, Admit, Error, FramePruneStats, PruningPolicy};
use darkside_hwmodel::{EnergyAccount, EnergyCoefficients};
use darkside_trace as trace;

/// CACTI-like per-access coefficients for the 32 K-entry UNFOLD hash
/// (stand-in constants — DESIGN.md §2).
pub const UNFOLD_HASH_ENERGY: EnergyCoefficients = EnergyCoefficients {
    read_pj: 8.7,
    write_pj: 9.3,
    leakage_pj_per_cycle: 1.6,
};

/// Energy charged per overflow-to-memory spill (one DRAM access, stand-in).
pub const DRAM_SPILL_PJ: f64 = 160.0;

/// Geometry of the UNFOLD hypothesis storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnfoldHashConfig {
    /// Direct-mapped hash slots (power of two). UNFOLD: 32 K entries.
    pub entries: usize,
    /// Collision backup buffer capacity.
    pub backup_capacity: usize,
}

impl UnfoldHashConfig {
    /// The configuration the paper compares against: 32 K-entry hash plus a
    /// backup buffer.
    pub fn paper() -> Self {
        Self {
            entries: 32_768,
            backup_capacity: 128,
        }
    }

    /// Scaled to this repo's DESIGN.md §4b graph sizes.
    pub fn scaled() -> Self {
        Self {
            entries: 4096,
            backup_capacity: 64,
        }
    }

    /// Multiplicative (Fibonacci) hash onto a slot index.
    fn slot_of(&self, state: u32) -> usize {
        if self.entries == 1 {
            return 0;
        }
        let shift = 64 - self.entries.trailing_zeros();
        ((state as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
    }
}

#[derive(Clone, Copy)]
struct Slot {
    /// Frame generation this slot was last written in (stale ⇒ empty).
    stamp: u32,
    state: u32,
    cost: f32,
}

#[derive(Clone, Copy)]
struct BackupEntry {
    state: u32,
    cost: f32,
}

/// The UNFOLD-baseline pruning policy: beam-pruned search with
/// hash + backup + overflow hypothesis storage.
pub struct UnfoldHashPolicy {
    cfg: UnfoldHashConfig,
    beam: f32,
    best: f32,
    slots: Vec<Slot>,
    backup: Vec<BackupEntry>,
    /// Current frame generation (slots with another stamp are empty).
    gen: u32,
    slots_used: usize,
    frame: FramePruneStats,
    /// Cumulative overflow-to-DRAM spills across the utterance, exported as
    /// named metrics by [`PruningPolicy::end_utterance`] (ISSUE 4).
    total_overflows: u64,
    /// Cumulative hash + backup traffic (multiply by
    /// [`UNFOLD_HASH_ENERGY`]); overflows are charged separately at
    /// [`DRAM_SPILL_PJ`] each.
    pub energy: EnergyAccount,
}

impl UnfoldHashPolicy {
    pub fn new(cfg: UnfoldHashConfig, beam: f32) -> Result<Self, Error> {
        if !cfg.entries.is_power_of_two() {
            return Err(Error::config(
                "UnfoldHashPolicy",
                format!("{} hash entries is not a power of two", cfg.entries),
            ));
        }
        Ok(Self {
            cfg,
            beam,
            best: f32::INFINITY,
            slots: vec![
                Slot {
                    stamp: u32::MAX,
                    state: 0,
                    cost: 0.0,
                };
                cfg.entries
            ],
            backup: Vec::with_capacity(cfg.backup_capacity),
            gen: 0,
            slots_used: 0,
            frame: FramePruneStats::default(),
            total_overflows: 0,
            energy: EnergyAccount::default(),
        })
    }

    pub fn config(&self) -> UnfoldHashConfig {
        self.cfg
    }
}

impl PruningPolicy for UnfoldHashPolicy {
    fn name(&self) -> &'static str {
        "unfold"
    }

    fn admit(&mut self, state: u32, cost: f32) -> Admit {
        self.best = self.best.min(cost);
        self.frame.reads += 1;
        self.energy.reads += 1;
        let idx = self.cfg.slot_of(state);
        let slot = &mut self.slots[idx];
        if slot.stamp != self.gen {
            *slot = Slot {
                stamp: self.gen,
                state,
                cost,
            };
            self.slots_used += 1;
            self.frame.writes += 1;
            self.energy.writes += 1;
            return Admit::Accept;
        }
        if slot.state == state {
            return if cost < slot.cost {
                slot.cost = cost;
                self.frame.writes += 1;
                self.energy.writes += 1;
                Admit::Accept
            } else {
                Admit::Reject
            };
        }
        // Collision: probe the backup buffer (hardware: parallel CAM).
        self.frame.reads += 1;
        self.energy.reads += 1;
        if let Some(entry) = self.backup.iter_mut().find(|e| e.state == state) {
            if cost < entry.cost {
                entry.cost = cost;
                self.frame.writes += 1;
                self.energy.writes += 1;
                Admit::Accept
            } else {
                Admit::Reject
            }
        } else if self.backup.len() < self.cfg.backup_capacity {
            self.backup.push(BackupEntry { state, cost });
            self.frame.writes += 1;
            self.energy.writes += 1;
            Admit::Accept
        } else {
            // Overflow path: the hypothesis spills to memory. UNFOLD never
            // drops it — it pays a DRAM access instead.
            self.frame.overflows += 1;
            Admit::Accept
        }
    }

    fn end_frame(&mut self) -> FramePruneStats {
        let mut out = self.frame;
        out.cutoff = Some(self.best + self.beam);
        out.occupancy = self.slots_used + self.backup.len();
        self.gen = self.gen.wrapping_add(1);
        self.slots_used = 0;
        self.backup.clear();
        self.best = f32::INFINITY;
        self.frame = FramePruneStats::default();
        self.total_overflows += out.overflows;
        trace::sample("policy.unfold.occupancy", out.occupancy as f64);
        out
    }

    /// Export the utterance's cumulative hash traffic, DRAM-spill count,
    /// and energy as named metrics (ISSUE 4). Call once per utterance — the
    /// totals are not reset (a fresh policy value per utterance is the
    /// documented contract).
    fn end_utterance(&mut self) {
        if !trace::active() {
            return;
        }
        trace::counter("policy.unfold.overflows", self.total_overflows);
        self.energy.trace_as("unfold_hash", &UNFOLD_HASH_ENERGY);
        trace::sample(
            "energy.dram_spill.pj",
            self.total_overflows as f64 * DRAM_SPILL_PJ,
        );
    }

    /// At a frame boundary the generation bump has already emptied the
    /// table and the backup buffer, so — like the N-best policy — only the
    /// cumulative accounting travels; a fresh policy's zeroed generation
    /// stamps make its slots empty by construction (ISSUE 7 checkpoint).
    fn save_state(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.total_overflows);
        wire::put_u64(out, self.energy.reads);
        wire::put_u64(out, self.energy.writes);
        wire::put_u64(out, self.energy.powered_cycles);
    }

    fn restore_state(&mut self, r: &mut wire::Reader<'_>) -> Result<(), Error> {
        self.total_overflows = r.u64()?;
        self.energy.reads = r.u64()?;
        self.energy.writes = r.u64()?;
        self.energy.powered_cycles = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two_tables() {
        assert!(UnfoldHashPolicy::new(
            UnfoldHashConfig {
                entries: 100,
                backup_capacity: 4
            },
            1.0
        )
        .is_err());
    }

    #[test]
    fn collisions_fall_back_to_backup_then_overflow() {
        // One-slot hash: every distinct second state collides.
        let cfg = UnfoldHashConfig {
            entries: 1,
            backup_capacity: 2,
        };
        let mut p = UnfoldHashPolicy::new(cfg, f32::INFINITY).unwrap();
        assert_eq!(p.admit(1, 1.0), Admit::Accept); // slot
        assert_eq!(p.admit(2, 2.0), Admit::Accept); // backup[0]
        assert_eq!(p.admit(3, 3.0), Admit::Accept); // backup[1]
        assert_eq!(p.admit(4, 4.0), Admit::Accept); // overflow (spilled, kept)
                                                    // Updates of held states stay in place.
        assert_eq!(p.admit(2, 0.5), Admit::Accept);
        assert_eq!(p.admit(2, 9.0), Admit::Reject);
        let frame = p.end_frame();
        assert_eq!(frame.overflows, 1);
        assert_eq!(frame.evictions, 0); // UNFOLD never evicts
        assert_eq!(frame.occupancy, 3); // slot + 2 backup (spill lives in DRAM)
                                        // Generation bump empties the table without touching the slots.
        assert_eq!(p.admit(7, 1.0), Admit::Accept);
        assert_eq!(p.end_frame().occupancy, 1);
    }

    #[test]
    fn slot_hash_stays_in_range() {
        let cfg = UnfoldHashConfig {
            entries: 4096,
            backup_capacity: 8,
        };
        for state in [0u32, 1, 4095, 4096, u32::MAX] {
            assert!(cfg.slot_of(state) < cfg.entries);
        }
    }
}
