//! # darkside-viterbi-accel — UNFOLD-like accelerator simulator
//!
//! DESIGN.md §3: an execution-driven functional+timing simulator of the
//! UNFOLD Viterbi accelerator (Fig. 6) and the paper's replacement for its
//! hypothesis storage — a K-way set-associative hash table whose sets track
//! their K cheapest hypotheses with a single-cycle Max-Heap replacement
//! unit (Fig. 8, Table III).
//!
//! **Status:** skeleton (ISSUE 1 creates the workspace; the pipeline and
//! hash/Max-Heap land with the accelerator PR). The configuration below is
//! final — it carries the paper's Table III N-best table geometry and the
//! DESIGN.md §4b scaled variant.

/// Geometry of the N-best hypothesis hash table (paper: 1024 entries, 8-way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NBestTableConfig {
    pub entries: usize,
    pub ways: usize,
}

impl NBestTableConfig {
    /// Paper configuration (Table III): 1024 entries, 8-way.
    pub fn paper() -> Self {
        Self {
            entries: 1024,
            ways: 8,
        }
    }

    /// DESIGN.md §4b scaled configuration: 256 entries, 8-way.
    pub fn scaled() -> Self {
        Self {
            entries: 256,
            ways: 8,
        }
    }

    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }

    /// XOR-fold a WFST state id onto a set index (UNFOLD's hash; the
    /// XOR-vs-multiplicative ablation rides on this hook).
    pub fn set_of(&self, state_id: u64) -> usize {
        let sets = self.sets();
        debug_assert!(sets.is_power_of_two());
        let mut x = state_id;
        let bits = sets.trailing_zeros();
        let mut folded = 0u64;
        while x != 0 {
            folded ^= x & (sets as u64 - 1);
            x >>= bits;
        }
        folded as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_and_scaled_geometry() {
        assert_eq!(NBestTableConfig::paper().sets(), 128);
        assert_eq!(NBestTableConfig::scaled().sets(), 32);
    }

    #[test]
    fn hash_stays_in_range_and_spreads() {
        let cfg = NBestTableConfig::paper();
        let mut hits = vec![0usize; cfg.sets()];
        for state in 0..10_000u64 {
            let s = cfg.set_of(state * 2_654_435_761);
            assert!(s < cfg.sets());
            hits[s] += 1;
        }
        // Every set should see traffic under a well-spread id stream.
        assert!(hits.iter().all(|&h| h > 0));
    }
}
