//! # darkside-viterbi-accel — UNFOLD-like accelerator simulator
//!
//! DESIGN.md §3: an execution-driven functional+timing simulator of the
//! UNFOLD Viterbi accelerator (Fig. 6) and the paper's replacement for its
//! hypothesis storage — a K-way set-associative hash table whose sets track
//! their K cheapest hypotheses with a single-cycle Max-Heap replacement
//! unit (Fig. 8, Table III).
//!
//! ISSUE 3: the two hypothesis-storage designs are implemented as
//! [`darkside_decoder::PruningPolicy`] implementations over the shared
//! [`darkside_decoder::SearchCore`]:
//!
//! * [`nbest::LooseNBestPolicy`] — the paper's 1024-entry 8-way table with
//!   per-set Max-Heap replacement (loose N-best selection);
//! * [`unfold::UnfoldHashPolicy`] — the UNFOLD baseline: a large hash
//!   table, a bounded backup buffer for collisions, and an
//!   overflow-to-memory path.
//!
//! Both charge their storage traffic to a
//! [`darkside_hwmodel::EnergyAccount`]; the per-access coefficients
//! ([`nbest::NBEST_TABLE_ENERGY`], [`unfold::UNFOLD_HASH_ENERGY`]) are
//! CACTI-like stand-in constants (DESIGN.md §2, last row). The cycle-level
//! pipeline model lands with the accelerator PR.

pub mod nbest;
pub mod unfold;

pub use nbest::{LooseNBestPolicy, NBEST_TABLE_ENERGY};
pub use unfold::{UnfoldHashConfig, UnfoldHashPolicy, DRAM_SPILL_PJ, UNFOLD_HASH_ENERGY};

/// Geometry of the N-best hypothesis hash table (paper: 1024 entries, 8-way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NBestTableConfig {
    pub entries: usize,
    pub ways: usize,
}

impl NBestTableConfig {
    /// Paper configuration (Table III): 1024 entries, 8-way.
    pub fn paper() -> Self {
        Self {
            entries: 1024,
            ways: 8,
        }
    }

    /// DESIGN.md §4b scaled configuration: 256 entries, 8-way.
    pub fn scaled() -> Self {
        Self {
            entries: 256,
            ways: 8,
        }
    }

    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }

    /// XOR-fold a WFST state id onto a set index (UNFOLD's hash; the
    /// XOR-vs-multiplicative ablation rides on this hook).
    pub fn set_of(&self, state_id: u64) -> usize {
        let sets = self.sets();
        debug_assert!(sets.is_power_of_two());
        let bits = sets.trailing_zeros();
        if bits == 0 {
            return 0; // fully-associative degenerate case: one set
        }
        let mut x = state_id;
        let mut folded = 0u64;
        while x != 0 {
            folded ^= x & (sets as u64 - 1);
            x >>= bits;
        }
        folded as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_and_scaled_geometry() {
        assert_eq!(NBestTableConfig::paper().sets(), 128);
        assert_eq!(NBestTableConfig::scaled().sets(), 32);
    }

    #[test]
    fn hash_stays_in_range_and_spreads() {
        let cfg = NBestTableConfig::paper();
        let mut hits = vec![0usize; cfg.sets()];
        for state in 0..10_000u64 {
            let s = cfg.set_of(state * 2_654_435_761);
            assert!(s < cfg.sets());
            hits[s] += 1;
        }
        // Every set should see traffic under a well-spread id stream.
        assert!(hits.iter().all(|&h| h > 0));
    }

    #[test]
    fn single_set_table_hashes_everything_to_set_zero() {
        // sets == 1 means 0 index bits; the fold must terminate and land
        // every id in set 0 (the fully-associative configuration the
        // unbounded-capacity property tests use).
        let cfg = NBestTableConfig {
            entries: 64,
            ways: 64,
        };
        assert_eq!(cfg.sets(), 1);
        for state in [0u64, 1, 17, u64::MAX] {
            assert_eq!(cfg.set_of(state), 0);
        }
    }

    #[test]
    fn random_ids_spread_within_2x_of_uniform() {
        // ISSUE 3 satellite: the set index must distribute random state ids
        // across sets within 2× of uniform in both directions.
        let cfg = NBestTableConfig::paper();
        let mut hits = vec![0usize; cfg.sets()];
        // Seeded SplitMix64 stream — random ids, not a crafted sequence.
        let mut x = 0x5EED_CAFE_u64;
        let n = 100_000usize;
        for _ in 0..n {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            hits[cfg.set_of(z)] += 1;
        }
        let expected = n / cfg.sets();
        for (set, &h) in hits.iter().enumerate() {
            assert!(
                h >= expected / 2 && h <= expected * 2,
                "set {set}: {h} hits vs uniform {expected}"
            );
        }
    }
}
