//! Batched vs per-frame utterance scoring (the ISSUE 1 amortization claim).
//!
//! Run: `cargo bench -p darkside-bench --bench batched_score`

use darkside_bench::bench;
use darkside_nn::{Frame, FrameScorer, Mlp, Rng};
use std::hint::black_box;

fn main() {
    // DESIGN.md §4b paper-shape model: 360 → 512 (pnorm/4 → 128) × 4 → 90.
    let mut rng = Rng::new(0xBA7C);
    let mlp = Mlp::kaldi_style(360, 512, 4, 4, 90, &mut rng);
    println!(
        "batched_score bench: {} params, input {} -> classes {}\n",
        mlp.num_params(),
        mlp.input_dim(),
        mlp.output_dim()
    );

    for &frames_per_utt in &[16usize, 64, 128] {
        let frames: Vec<Frame> = (0..frames_per_utt)
            .map(|_| Frame((0..360).map(|_| rng.normal()).collect()))
            .collect();

        let per_frame = bench(&format!("score_per_frame_{frames_per_utt}"), || {
            for f in &frames {
                black_box(mlp.score_frame(black_box(f)));
            }
        });
        let batched = bench(&format!("score_batched_{frames_per_utt}"), || {
            black_box(mlp.score_frames(black_box(&frames)));
        });
        println!("{}", per_frame.summary());
        println!("{}", batched.summary());
        println!(
            "  -> batching {frames_per_utt} frames: {:.2}x\n",
            batched.speedup_over(&per_frame)
        );
    }
}
