//! Sparse kernels vs their dense baselines across sparsity levels.
//!
//! Run: `cargo bench -p darkside-bench --bench spmv`

use darkside_bench::bench;
use darkside_nn::check::random_matrix;
use darkside_nn::{gemv_naive, Matrix, Rng};
use darkside_pruning::{prune_to_sparsity, Csr};
use std::hint::black_box;

fn main() {
    const SIZE: usize = 512;
    println!("spmv bench: {SIZE}x{SIZE} layer, f32\n");
    let mut rng = Rng::new(0x5EED);
    let dense = Matrix::from_fn(SIZE, SIZE, |_, _| rng.normal_scaled(0.0, 0.1));
    let x: Vec<f32> = (0..SIZE).map(|_| rng.normal()).collect();
    let mut y = vec![0.0f32; SIZE];

    let gemv = bench("gemv_dense", || {
        gemv_naive(
            SIZE,
            SIZE,
            black_box(dense.as_slice()),
            black_box(&x),
            &mut y,
        )
    })
    .with_flops(2.0 * (SIZE * SIZE) as f64);
    println!("{}", gemv.summary());

    for target in [0.7, 0.8, 0.9] {
        let result = prune_to_sparsity(&dense, target, 0.002);
        let mut masked = dense.clone();
        result.mask.apply(&mut masked);
        let csr = Csr::from_dense(&masked).expect("masked layer fits CSR");
        let spmv = bench(&format!("spmv_csr_{:.0}", target * 100.0), || {
            csr.spmv(black_box(&x), &mut y)
        })
        .with_flops(2.0 * csr.nnz() as f64);
        println!(
            "{}  ({:.1}% sparse, {:.2}x over dense gemv)",
            spmv.summary(),
            csr.sparsity() * 100.0,
            spmv.speedup_over(&gemv)
        );
    }

    // Batched form: SpMM against the same-shape dense GEMM at 90 % sparsity.
    const BATCH: usize = 64;
    let result = prune_to_sparsity(&dense, 0.9, 0.002);
    let mut masked = dense.clone();
    result.mask.apply(&mut masked);
    let csr = Csr::from_dense(&masked).expect("masked layer fits CSR");
    let xt = random_matrix(&mut rng, SIZE, BATCH, 1.0);
    let mut yt = Matrix::zeros(SIZE, BATCH);
    let spmm = bench("spmm_csr_90_batch64", || csr.spmm(black_box(&xt), &mut yt))
        .with_flops(2.0 * (csr.nnz() * BATCH) as f64);
    let gemm_dense = bench("gemm_dense_batch64", || {
        let mut out = masked.matmul(black_box(&xt));
        black_box(out.as_mut_slice());
    })
    .with_flops(2.0 * (SIZE * SIZE * BATCH) as f64);
    println!("\n{}", gemm_dense.summary());
    println!(
        "{}  ({:.2}x over dense gemm)",
        spmm.summary(),
        spmm.speedup_over(&gemm_dense)
    );
}
