//! GEMM micro-bench: naive oracle vs blocked vs blocked+threads.
//!
//! Run: `cargo bench -p darkside-bench --bench gemm`

use darkside_bench::{bench_with, BenchOptions};
use darkside_nn::check::random_matrix;
use darkside_nn::{gemm_naive, gemm_with_threads, Matrix, Rng};
use std::hint::black_box;

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("gemm bench: square sizes, f32, {threads} hw threads\n");
    let mut rng = Rng::new(0xD0_0D);
    for &size in &[64usize, 128, 256, 512] {
        let a = random_matrix(&mut rng, size, size, 1.0);
        let b = random_matrix(&mut rng, size, size, 1.0);
        let mut c = Matrix::zeros(size, size);
        let flops = 2.0 * (size as f64).powi(3);
        let opts = if size >= 512 {
            BenchOptions::slow()
        } else {
            BenchOptions::default()
        };

        let naive = bench_with(&format!("gemm_naive_{size}"), opts, || {
            gemm_naive(
                size,
                size,
                size,
                black_box(a.as_slice()),
                black_box(b.as_slice()),
                c.as_mut_slice(),
            )
        })
        .with_flops(flops);
        let blocked = bench_with(&format!("gemm_blocked_1t_{size}"), opts, || {
            gemm_with_threads(
                size,
                size,
                size,
                black_box(a.as_slice()),
                black_box(b.as_slice()),
                c.as_mut_slice(),
                1,
            )
        })
        .with_flops(flops);
        let parallel = bench_with(&format!("gemm_blocked_mt_{size}"), opts, || {
            gemm_with_threads(
                size,
                size,
                size,
                black_box(a.as_slice()),
                black_box(b.as_slice()),
                c.as_mut_slice(),
                threads,
            )
        })
        .with_flops(flops);

        println!("{}", naive.summary());
        println!("{}", blocked.summary());
        println!("{}", parallel.summary());
        println!(
            "  -> blocked 1t {:.2}x, blocked {threads}t {:.2}x over naive\n",
            blocked.speedup_over(&naive),
            parallel.speedup_over(&naive)
        );
    }
}
