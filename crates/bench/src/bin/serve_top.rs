//! `serve_top` — a `top(1)`-style live view of a serving fleet, driven
//! entirely through the metrics exposition endpoint (ISSUE 9).
//!
//! Builds a smoke engine with windowed telemetry, the dark-side detector,
//! and the exporter enabled, drives a closed loop of load, and between
//! steps scrapes `GET /metrics` over plain TCP, parses the Prometheus
//! text, and renders fleet / per-shard / per-session tables. Everything
//! printed comes from the scrape — the binary never reads engine state
//! directly, so it doubles as an end-to-end check that the exposition
//! carries the whole serving story on its own:
//!
//! * every scrape parses cleanly (name, labels, value — no malformed
//!   lines);
//! * the fleet `darkside_serve_frame_ns` series and the windowed
//!   (`_window`-suffixed) series are present once frames have been served;
//! * live sessions appear as per-session gauges mid-serve and are gone
//!   after drain;
//! * the final scrape's completed counter equals the utterances offered.
//!
//! Flags: `--smoke` (CI scale), `--sessions N` (closed-loop concurrency),
//! `--utts N` (utterance budget).

use darkside_bench::report::check;
use darkside_core::nn::Rng;
use darkside_core::trace::WindowConfig;
use darkside_core::{Pipeline, PipelineConfig, ServableSpec};
use darkside_serve::{DetectorConfig, ServeConfig, ShardedScheduler};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed Prometheus sample: `name{labels} value`.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text-exposition body. The grammar handled is exactly
/// what the engine renders (label values never contain `,` or `"`), and
/// anything outside it is a hard error — a scrape the parser trips over is
/// a bug in the exposition, which is half of what this binary checks.
fn parse_prometheus(body: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value: {line:?}"))?;
        let value: f64 = value.parse().map_err(|_| format!("bad value: {line:?}"))?;
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unclosed labels: {line:?}"))?;
                let mut labels = Vec::new();
                for part in rest.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = part
                        .split_once('=')
                        .ok_or_else(|| format!("bad label: {line:?}"))?;
                    labels.push((k.to_string(), v.trim_matches('"').to_string()));
                }
                (name.to_string(), labels)
            }
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// Minimal HTTP/1.0 GET, body only (headers stripped at the blank line).
fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").map_err(|e| format!("request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    if !response.starts_with("HTTP/1.0 200") {
        return Err(format!("non-200 scrape: {response:?}"));
    }
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| "no body delimiter".to_string())
}

/// Find an unlabelled (fleet-section) sample by exact name.
fn fleet<'a>(samples: &'a [Sample], name: &str) -> Option<&'a Sample> {
    samples
        .iter()
        .find(|s| s.name == name && s.label("shard").is_none())
}

/// Find a per-shard sample (labelled with this shard, no session label).
fn shard_sample<'a>(samples: &'a [Sample], name: &str, shard: &str) -> Option<&'a Sample> {
    samples
        .iter()
        .find(|s| s.name == name && s.label("shard") == Some(shard) && s.label("session").is_none())
}

/// Render one scrape as fleet / per-shard / per-session tables. Returns
/// the number of live per-session rows (the caller's liveness check).
fn render(samples: &[Sample]) -> usize {
    let completed = fleet(samples, "darkside_serve_session_completed_total").map(|s| s.value);
    let flagged = fleet(samples, "darkside_serve_detector_flagged_total").map(|s| s.value);
    let frame_p99 = samples
        .iter()
        .find(|s| {
            s.name == "darkside_serve_frame_ns"
                && s.label("shard").is_none()
                && s.label("quantile") == Some("0.99")
        })
        .map(|s| s.value);
    let window_fps = samples
        .iter()
        .find(|s| s.name == "darkside_serve_session_frames_window_per_sec")
        .map(|s| s.value);
    println!(
        "fleet: completed {} | flagged {} | frame p99 {} us | window {} frames/s",
        completed.map_or("-".into(), |v| format!("{v:.0}")),
        flagged.map_or("0".into(), |v| format!("{v:.0}")),
        frame_p99.map_or("-".into(), |v| format!("{:.1}", v / 1e3)),
        window_fps.map_or("-".into(), |v| format!("{v:.0}")),
    );

    // Shards are discovered from the scrape itself: any shard-labelled,
    // session-free series names a shard.
    let shards: Vec<String> = {
        let mut seen = BTreeMap::new();
        for s in samples {
            if let (Some(shard), None) = (s.label("shard"), s.label("session")) {
                seen.insert(shard.to_string(), ());
            }
        }
        seen.into_keys().collect()
    };
    println!(
        "| {:>5} | {:>6} | {:>8} | {:>11} | {:>7} |",
        "shard", "done", "frames", "frame-p99us", "flagged"
    );
    println!("|-------|--------|----------|-------------|---------|");
    for shard in &shards {
        let col = |name: &str| {
            shard_sample(samples, name, shard)
                .map_or("-".to_string(), |s| format!("{:.0}", s.value))
        };
        let p99 = samples
            .iter()
            .find(|s| {
                s.name == "darkside_serve_frame_ns"
                    && s.label("shard") == Some(shard)
                    && s.label("quantile") == Some("0.99")
            })
            .map_or("-".to_string(), |s| format!("{:.1}", s.value / 1e3));
        println!(
            "| {:>5} | {:>6} | {:>8} | {:>11} | {:>7} |",
            shard,
            col("darkside_serve_session_completed_total"),
            col("darkside_serve_session_frames_total"),
            p99,
            col("darkside_serve_detector_flagged_total"),
        );
    }

    let sessions: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "darkside_serve_session_frames" && s.label("session").is_some())
        .collect();
    if !sessions.is_empty() {
        println!(
            "| {:>8} | {:>5} | {:>6} | {:>8} | {:>7} |",
            "session", "shard", "frames", "degraded", "flagged"
        );
        println!("|----------|-------|--------|----------|---------|");
        for s in &sessions {
            println!(
                "| {:>8} | {:>5} | {:>6.0} | {:>8} | {:>7} |",
                s.label("session").unwrap_or("?"),
                s.label("shard").unwrap_or("?"),
                s.value,
                s.label("degraded").unwrap_or("?"),
                s.label("flagged").unwrap_or("?"),
            );
        }
    }
    sessions.len()
}

fn usize_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("error: {name} requires a count");
                std::process::exit(1);
            }),
    }
}

fn reject_unknown_args() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {}
            "--sessions" | "--utts" => {
                args.next();
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?}; usage: serve_top \
                     [--smoke] [--sessions <n>] [--utts <n>]"
                );
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    reject_unknown_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let concurrency = usize_flag("--sessions", 8);
    let num_utts = usize_flag("--utts", if smoke { 8 } else { 32 });

    // The 90 %-pruned bundle is the interesting one to watch: its probed
    // dense baseline arms the detector's workload check, so the per-session
    // table can actually show flags when pruning inflates the search.
    println!("serve_top: building the pipeline_smoke system...");
    let pipeline = Pipeline::build(PipelineConfig::smoke()).expect("pipeline build");
    let bundle = pipeline
        .servable(ServableSpec::pruned(0.9))
        .expect("prune to 90%");
    let mut rng = Rng::new(0x0709_0709);
    let utts = pipeline.corpus.sample_set(num_utts, &mut rng);

    let cfg = ServeConfig::default()
        .with_shards(2)
        .with_max_sessions(concurrency.max(1))
        .with_max_queue_frames(1 << 20)
        .with_max_batch_frames(64)
        .with_degrade_fraction(1.0)
        .with_telemetry(WindowConfig::of_seconds(2.0, 8))
        .with_detector(DetectorConfig::default())
        .with_exporter_port(0);
    let mut engine = ShardedScheduler::build(bundle, cfg).expect("engine");
    let addr = engine.exporter_addr().expect("exporter configured");
    println!("exposition endpoint: http://{addr}/metrics (and /events)");

    let scrape = |what: &str| -> Vec<Sample> {
        let body = http_get(addr, "/metrics").unwrap_or_else(|e| panic!("{what} scrape: {e}"));
        parse_prometheus(&body).unwrap_or_else(|e| panic!("{what} scrape does not parse: {e}"))
    };

    let mut next = 0;
    let mut served = 0;
    let mut tick = 0u64;
    let mut saw_live_sessions = false;
    let mut saw_windowed = false;
    while served < utts.len() {
        while next < utts.len() && engine.active_sessions() < concurrency {
            engine
                .offer(utts[next].frames.clone())
                .expect("closed-loop offer");
            next += 1;
        }
        engine.step().expect("step");
        served += engine.take_completed().len();
        // Scrape every few steps: each render is one "top" refresh. The
        // engine throttles publishes to 50 ms, so back-to-back scrapes may
        // repeat a frame — that staleness bound is part of the contract.
        if tick.is_multiple_of(4) {
            println!("--- refresh {} (step {tick}) ---", tick / 4);
            let samples = scrape("live");
            saw_live_sessions |= render(&samples) > 0;
            saw_windowed |= samples.iter().any(|s| s.name.contains("_window"));
        }
        tick += 1;
    }
    engine.drain().expect("drain");
    println!("--- final (drained) ---");
    let samples = scrape("final");
    let live_rows = render(&samples);

    let completed = fleet(&samples, "darkside_serve_session_completed_total")
        .map(|s| s.value)
        .unwrap_or(0.0);
    let mut ok = check(
        "live sessions appeared as per-session gauges",
        saw_live_sessions,
        "at least one mid-serve scrape carried session rows".to_string(),
    );
    ok &= check(
        "windowed series present",
        saw_windowed,
        "a mid-serve scrape carried _window-suffixed series".to_string(),
    );
    ok &= check(
        "fleet frame histogram present",
        fleet(&samples, "darkside_serve_frame_ns_count").is_some_and(|s| s.value > 0.0),
        "darkside_serve_frame_ns_count > 0 after drain".to_string(),
    );
    ok &= check(
        "drained scrape matches the load offered",
        completed as usize == utts.len() && live_rows == 0,
        format!(
            "completed {completed:.0}/{} with {live_rows} stale session rows",
            utts.len()
        ),
    );
    std::process::exit(if ok { 0 } else { 1 });
}
