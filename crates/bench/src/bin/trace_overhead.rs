//! CI trace-overhead gate (ISSUE 4 acceptance): decode under the default
//! `NullRecorder` must cost within 5 % of the pre-PR search loop.
//!
//! Run: `cargo run --release -p darkside-bench --bin trace_overhead`.
//!
//! Builds the `pipeline_smoke` system, scores its held-out corpus sample
//! once, then times the instrumented `darkside_decoder::decode` (trace
//! hooks compiled in, no recorder installed) against an in-bin verbatim
//! copy of the PR 2 beam-search loop over the identical cost matrices.
//! Samples are interleaved and medians compared, so drift hits both sides
//! equally. Exits nonzero when the median ratio exceeds
//! [`MAX_OVERHEAD_RATIO`]. The two loops' outputs are also cross-checked
//! (words + cost) before any timing, so the gate can never pass on a loop
//! that diverged.

use darkside_core::decoder::{acoustic_costs, decode, BeamConfig};
use darkside_core::nn::{FrameScorer, Matrix, Rng};
use darkside_core::wfst::{label_class, Fst, EPSILON};
use darkside_core::{Pipeline, PipelineConfig};
use std::hint::black_box;
use std::time::Instant;

/// Instrumented-over-reference median wall-time budget (the ISSUE 4 ≤ 5 %
/// acceptance bound).
const MAX_OVERHEAD_RATIO: f64 = 1.05;
/// Interleaved timing samples per side.
const SAMPLES: usize = 15;
/// Decode passes over the whole test set per timing sample.
const PASSES_PER_SAMPLE: usize = 3;

// --- the PR 2 decode loop, verbatim (as pinned by
// --- crates/decoder/tests/beam_regression.rs) --------------------------

#[derive(Clone, Copy)]
struct Token {
    cost: f32,
    backpointer: u32,
}

const NO_BACKPOINTER: u32 = u32::MAX;

struct WordLink {
    prev: u32,
    olabel: u32,
}

fn reference_decode(graph: &Fst, costs: &Matrix, config: &BeamConfig) -> Option<(Vec<u32>, f32)> {
    use std::collections::HashMap;
    let start = graph.start().unwrap();
    let mut arena: Vec<WordLink> = Vec::new();
    let mut tokens: HashMap<u32, Token> = HashMap::new();
    tokens.insert(
        start,
        Token {
            cost: 0.0,
            backpointer: NO_BACKPOINTER,
        },
    );
    for t in 0..costs.rows() {
        let frame = costs.row(t);
        let mut next: HashMap<u32, (f32, u32, u32)> = HashMap::new();
        for (&state, token) in &tokens {
            for arc in graph.arcs(state) {
                let cost = token.cost + arc.weight.0 + frame[label_class(arc.ilabel)];
                let entry =
                    next.entry(arc.next)
                        .or_insert((f32::INFINITY, NO_BACKPOINTER, EPSILON));
                if cost < entry.0 {
                    *entry = (cost, token.backpointer, arc.olabel);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        let best = next
            .values()
            .map(|&(c, _, _)| c)
            .fold(f32::INFINITY, f32::min);
        let cutoff = best + config.beam;
        tokens.clear();
        for (state, (cost, parent, olabel)) in next {
            if cost > cutoff {
                continue;
            }
            let backpointer = if olabel == EPSILON {
                parent
            } else {
                arena.push(WordLink {
                    prev: parent,
                    olabel,
                });
                (arena.len() - 1) as u32
            };
            tokens.insert(state, Token { cost, backpointer });
        }
    }
    let finisher = tokens
        .iter()
        .filter(|(&s, _)| graph.is_final(s))
        .map(|(&s, tok)| (tok.cost + graph.final_weight(s).0, tok.backpointer))
        .min_by(|a, b| a.0.total_cmp(&b.0));
    let (cost, backpointer) = match finisher {
        Some((cost, bp)) => (cost, bp),
        None => {
            let (_, tok) = tokens
                .iter()
                .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
                .unwrap();
            (tok.cost, tok.backpointer)
        }
    };
    let mut words = Vec::new();
    let mut bp = backpointer;
    while bp != NO_BACKPOINTER {
        let link = &arena[bp as usize];
        words.push(link.olabel - 1);
        bp = link.prev;
    }
    words.reverse();
    Some((words, cost))
}

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let config = PipelineConfig::smoke();
    let beam = config.beam;
    println!("trace_overhead: building the pipeline_smoke system...");
    let pipeline = Pipeline::build(config).expect("smoke pipeline build");

    // A fixed sample of the smoke corpus, scored once up front so timing
    // covers the search loops only.
    let mut rng = Rng::new(0x0BE4);
    let utterances = pipeline.corpus.sample_set(12, &mut rng);
    let costs: Vec<Matrix> = utterances
        .iter()
        .map(|u| acoustic_costs(&pipeline.model.score_frames(&u.frames), &beam))
        .collect();
    let graph = pipeline
        .graph
        .as_eager()
        .expect("trace_overhead benches the default (eager) graph");
    let frames: usize = costs.iter().map(Matrix::rows).sum();

    // Correctness cross-check before any timing.
    for (i, c) in costs.iter().enumerate() {
        let got = decode(graph, c, &beam).expect("instrumented decode");
        let (words, cost) = reference_decode(graph, c, &beam).expect("reference decode");
        assert_eq!(got.words, words, "utterance {i}: words diverged");
        assert_eq!(got.cost, cost, "utterance {i}: cost diverged");
    }
    println!("instrumented vs PR 2 reference decode: identical on {frames} frames");

    // Interleaved timing: [instrumented, reference] per round, medians.
    let mut instrumented_ns = Vec::with_capacity(SAMPLES);
    let mut reference_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..PASSES_PER_SAMPLE {
            for c in &costs {
                black_box(decode(graph, black_box(c), &beam).unwrap());
            }
        }
        instrumented_ns.push(t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        for _ in 0..PASSES_PER_SAMPLE {
            for c in &costs {
                black_box(reference_decode(graph, black_box(c), &beam).unwrap());
            }
        }
        reference_ns.push(t0.elapsed().as_nanos() as u64);
    }
    let instr = median_ns(instrumented_ns);
    let refr = median_ns(reference_ns);
    let ratio = instr as f64 / refr as f64;
    let per_frame = instr as f64 / (PASSES_PER_SAMPLE * frames) as f64;
    println!(
        "median decode pass: instrumented {:.3} ms vs reference {:.3} ms \
         ({per_frame:.0} ns/frame instrumented)",
        instr as f64 / 1e6,
        refr as f64 / 1e6
    );
    let pass = ratio <= MAX_OVERHEAD_RATIO;
    println!(
        "{} trace overhead: {ratio:.4}x (budget <= {MAX_OVERHEAD_RATIO}x)",
        if pass { "PASS" } else { "FAIL" }
    );
    std::process::exit(if pass { 0 } else { 1 });
}
