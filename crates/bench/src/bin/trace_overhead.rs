//! CI trace-overhead gates (ISSUE 4 + ISSUE 9 acceptance).
//!
//! Run: `cargo run --release -p darkside-bench --bin trace_overhead`.
//!
//! Three checks, all exiting nonzero on failure:
//!
//! 1. **Decode overhead** (ISSUE 4): decode under the default
//!    `NullRecorder` must cost within 5 % of the pre-PR search loop.
//!    Builds the `pipeline_smoke` system, scores its held-out corpus
//!    sample once, then times the instrumented `darkside_decoder::decode`
//!    (trace hooks compiled in, no recorder installed) against an in-bin
//!    verbatim copy of the PR 2 beam-search loop over the identical cost
//!    matrices. Samples are interleaved and medians compared, so drift
//!    hits both sides equally. The two loops' outputs are also
//!    cross-checked (words + cost) before any timing, so the gate can
//!    never pass on a loop that diverged.
//! 2. **Windowed-telemetry serving overhead** (ISSUE 9): a serving engine
//!    with live telemetry windows *and* the dark-side detector armed must
//!    drain the same load within 5 % of the telemetry-off engine —
//!    observation must never tax the serving path it observes.
//! 3. **Prometheus exposition golden file** (ISSUE 9): a fixed synthetic
//!    [`TelemetrySnapshot`] must render byte-for-byte to the committed
//!    `golden/telemetry.prom` — scrape-format drift fails CI instead of
//!    silently breaking fleet dashboards. Regenerate deliberately with
//!    `--write-golden <path>` after an intentional schema change.

use darkside_core::acoustic::Utterance;
use darkside_core::decoder::{acoustic_costs, decode, BeamConfig};
use darkside_core::nn::{FrameScorer, Matrix, Rng};
use darkside_core::trace::{
    HistogramSummary, MetricsSnapshot, SpanAgg, TelemetrySnapshot, WindowConfig, WindowRate,
    WindowedView,
};
use darkside_core::wfst::{label_class, Fst, EPSILON};
use darkside_core::{ModelBundle, Pipeline, PipelineConfig, ServableSpec};
use darkside_serve::{DetectorConfig, ServeConfig, ShardedScheduler};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// Instrumented-over-reference median wall-time budget (the ISSUE 4 ≤ 5 %
/// decode bound, shared by the ISSUE 9 serving-step bound).
const MAX_OVERHEAD_RATIO: f64 = 1.05;
/// Interleaved timing samples per side.
const SAMPLES: usize = 15;
/// Decode passes over the whole test set per timing sample.
const PASSES_PER_SAMPLE: usize = 3;

// --- the PR 2 decode loop, verbatim (as pinned by
// --- crates/decoder/tests/beam_regression.rs) --------------------------

#[derive(Clone, Copy)]
struct Token {
    cost: f32,
    backpointer: u32,
}

const NO_BACKPOINTER: u32 = u32::MAX;

struct WordLink {
    prev: u32,
    olabel: u32,
}

fn reference_decode(graph: &Fst, costs: &Matrix, config: &BeamConfig) -> Option<(Vec<u32>, f32)> {
    use std::collections::HashMap;
    let start = graph.start().unwrap();
    let mut arena: Vec<WordLink> = Vec::new();
    let mut tokens: HashMap<u32, Token> = HashMap::new();
    tokens.insert(
        start,
        Token {
            cost: 0.0,
            backpointer: NO_BACKPOINTER,
        },
    );
    for t in 0..costs.rows() {
        let frame = costs.row(t);
        let mut next: HashMap<u32, (f32, u32, u32)> = HashMap::new();
        for (&state, token) in &tokens {
            for arc in graph.arcs(state) {
                let cost = token.cost + arc.weight.0 + frame[label_class(arc.ilabel)];
                let entry =
                    next.entry(arc.next)
                        .or_insert((f32::INFINITY, NO_BACKPOINTER, EPSILON));
                if cost < entry.0 {
                    *entry = (cost, token.backpointer, arc.olabel);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        let best = next
            .values()
            .map(|&(c, _, _)| c)
            .fold(f32::INFINITY, f32::min);
        let cutoff = best + config.beam;
        tokens.clear();
        for (state, (cost, parent, olabel)) in next {
            if cost > cutoff {
                continue;
            }
            let backpointer = if olabel == EPSILON {
                parent
            } else {
                arena.push(WordLink {
                    prev: parent,
                    olabel,
                });
                (arena.len() - 1) as u32
            };
            tokens.insert(state, Token { cost, backpointer });
        }
    }
    let finisher = tokens
        .iter()
        .filter(|(&s, _)| graph.is_final(s))
        .map(|(&s, tok)| (tok.cost + graph.final_weight(s).0, tok.backpointer))
        .min_by(|a, b| a.0.total_cmp(&b.0));
    let (cost, backpointer) = match finisher {
        Some((cost, bp)) => (cost, bp),
        None => {
            let (_, tok) = tokens
                .iter()
                .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
                .unwrap();
            (tok.cost, tok.backpointer)
        }
    };
    let mut words = Vec::new();
    let mut bp = backpointer;
    while bp != NO_BACKPOINTER {
        let link = &arena[bp as usize];
        words.push(link.olabel - 1);
        bp = link.prev;
    }
    words.reverse();
    Some((words, cost))
}

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

// --- ISSUE 9: windowed-telemetry serving-step overhead ------------------

/// Serve every utterance through a fresh single-shard engine and return
/// the stepping wall time (build and offers excluded — the gate is about
/// the per-step observation cost, not engine setup).
fn serve_pass(bundle: &ModelBundle, telemetry: bool, utts: &[Utterance]) -> u64 {
    let mut cfg = ServeConfig::default()
        .with_shards(1)
        .with_workers(1)
        .with_max_sessions(utts.len().max(1))
        .with_max_queue_frames(1 << 20)
        .with_max_batch_frames(256)
        .with_degrade_fraction(1.0);
    if telemetry {
        // The full ISSUE 9 observation path: windowed rates on every shard
        // sink plus the per-frame margin/workload health checks (armed
        // with the bundle's real dense baseline, so the untriggered-
        // detector fast path is what gets timed).
        cfg = cfg
            .with_telemetry(WindowConfig::of_seconds(2.0, 8))
            .with_detector(DetectorConfig::default());
    }
    let mut engine = ShardedScheduler::build(bundle.clone(), cfg).expect("engine");
    for u in utts {
        engine.offer(u.frames.clone()).expect("offer");
    }
    let t0 = Instant::now();
    while engine.active_sessions() > 0 {
        engine.step().expect("step");
        engine.take_completed();
    }
    t0.elapsed().as_nanos() as u64
}

// --- ISSUE 9: Prometheus exposition golden file -------------------------

/// A fixed synthetic snapshot covering every exposition feature: counters,
/// gauges, quantile-labelled histogram summaries, span aggregates, and the
/// windowed view. Nothing here reads a clock — the rendering is
/// byte-deterministic by construction.
fn golden_snapshot() -> TelemetrySnapshot {
    let frame_ns = HistogramSummary {
        count: 1863,
        min: 950.0,
        max: 250_000.0,
        mean: 15_250.5,
        p50: 12_000.0,
        p95: 30_000.0,
        p99: 60_000.0,
    };
    let margin = HistogramSummary {
        count: 1800,
        min: 0.015625,
        max: 4.75,
        mean: 0.6875,
        p50: 1.0,
        p95: 2.375,
        p99: 4.0,
    };
    let mut cumulative = MetricsSnapshot::default();
    cumulative
        .counters
        .insert("serve.session.completed".into(), 42);
    cumulative
        .counters
        .insert("serve.detector.flagged".into(), 3);
    cumulative.counters.insert("wfst.memo.hits".into(), 8192);
    cumulative.gauges.insert("serve.queue.depth".into(), 17.5);
    cumulative
        .gauges
        .insert("wfst.memo.resident_states".into(), 4096.0);
    cumulative
        .histograms
        .insert("serve.frame.ns".into(), frame_ns);
    cumulative
        .histograms
        .insert("decode.frame.margin".into(), margin);
    cumulative.spans.insert(
        "serve.session".into(),
        SpanAgg {
            count: 42,
            total_ns: 630_000_000,
        },
    );
    TelemetrySnapshot {
        at_ns: 1_234_567_890,
        cumulative,
        windowed: Some(WindowedView {
            span_ns: 2_000_000_000,
            counters: BTreeMap::from([(
                "serve.session.frames".to_string(),
                WindowRate {
                    total: 512,
                    per_sec: 256.0,
                },
            )]),
            histograms: BTreeMap::from([("serve.frame.ns".to_string(), frame_ns)]),
        }),
    }
}

/// The committed scrape-format contract (regenerate with
/// `--write-golden <path>` after an intentional change).
const GOLDEN_PROM: &str = include_str!("../../golden/telemetry.prom");

fn main() {
    // `--write-golden <path>`: regenerate the exposition contract and
    // exit — no timing, no pipeline build.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--write-golden") {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: --write-golden requires a path");
            std::process::exit(1);
        });
        std::fs::write(path, golden_snapshot().to_prometheus())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
        return;
    }
    if !args.is_empty() {
        eprintln!(
            "error: unknown arguments {args:?}; usage: trace_overhead [--write-golden <path>]"
        );
        std::process::exit(1);
    }

    let config = PipelineConfig::smoke();
    let beam = config.beam;
    println!("trace_overhead: building the pipeline_smoke system...");
    let pipeline = Pipeline::build(config).expect("smoke pipeline build");

    // A fixed sample of the smoke corpus, scored once up front so timing
    // covers the search loops only.
    let mut rng = Rng::new(0x0BE4);
    let utterances = pipeline.corpus.sample_set(12, &mut rng);
    let costs: Vec<Matrix> = utterances
        .iter()
        .map(|u| acoustic_costs(&pipeline.model.score_frames(&u.frames), &beam))
        .collect();
    let graph = pipeline
        .graph
        .as_eager()
        .expect("trace_overhead benches the default (eager) graph");
    let frames: usize = costs.iter().map(Matrix::rows).sum();

    // Correctness cross-check before any timing.
    for (i, c) in costs.iter().enumerate() {
        let got = decode(graph, c, &beam).expect("instrumented decode");
        let (words, cost) = reference_decode(graph, c, &beam).expect("reference decode");
        assert_eq!(got.words, words, "utterance {i}: words diverged");
        assert_eq!(got.cost, cost, "utterance {i}: cost diverged");
    }
    println!("instrumented vs PR 2 reference decode: identical on {frames} frames");

    // Interleaved timing: [instrumented, reference] per round, medians.
    let mut instrumented_ns = Vec::with_capacity(SAMPLES);
    let mut reference_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..PASSES_PER_SAMPLE {
            for c in &costs {
                black_box(decode(graph, black_box(c), &beam).unwrap());
            }
        }
        instrumented_ns.push(t0.elapsed().as_nanos() as u64);

        let t0 = Instant::now();
        for _ in 0..PASSES_PER_SAMPLE {
            for c in &costs {
                black_box(reference_decode(graph, black_box(c), &beam).unwrap());
            }
        }
        reference_ns.push(t0.elapsed().as_nanos() as u64);
    }
    let instr = median_ns(instrumented_ns);
    let refr = median_ns(reference_ns);
    let ratio = instr as f64 / refr as f64;
    let per_frame = instr as f64 / (PASSES_PER_SAMPLE * frames) as f64;
    println!(
        "median decode pass: instrumented {:.3} ms vs reference {:.3} ms \
         ({per_frame:.0} ns/frame instrumented)",
        instr as f64 / 1e6,
        refr as f64 / 1e6
    );
    let pass = ratio <= MAX_OVERHEAD_RATIO;
    println!(
        "{} trace overhead: {ratio:.4}x (budget <= {MAX_OVERHEAD_RATIO}x)",
        if pass { "PASS" } else { "FAIL" }
    );
    let mut ok = pass;

    // Gate 2: the windowed-telemetry serving step. Interleaved whole-drain
    // passes (off, on) over the same load; the *fastest* drain of each
    // side is compared rather than the median — a whole drain is long
    // enough for one background load spike to move its median, but both
    // sides' minima are spike-free, which is what an overhead ratio
    // should compare.
    let bundle = pipeline
        .servable(ServableSpec::dense())
        .expect("dense servable");
    let serve_utts = pipeline.corpus.sample_set(12, &mut rng);
    const SERVE_SAMPLES: usize = 15;
    // One discarded warmup pair: the first drains fault in the scorer's
    // working set and the allocator's arenas for both configurations.
    serve_pass(&bundle, false, &serve_utts);
    serve_pass(&bundle, true, &serve_utts);
    let mut off_ns = Vec::with_capacity(SERVE_SAMPLES);
    let mut on_ns = Vec::with_capacity(SERVE_SAMPLES);
    for _ in 0..SERVE_SAMPLES {
        off_ns.push(serve_pass(&bundle, false, &serve_utts));
        on_ns.push(serve_pass(&bundle, true, &serve_utts));
    }
    let off = off_ns.iter().copied().min().unwrap_or(1).max(1);
    let on = on_ns.iter().copied().min().unwrap_or(1);
    let serve_ratio = on as f64 / off as f64;
    let serve_pass_ok = serve_ratio <= MAX_OVERHEAD_RATIO;
    println!(
        "{} windowed telemetry serving overhead: {serve_ratio:.4}x \
         (on {:.3} ms vs off {:.3} ms per drain, budget <= {MAX_OVERHEAD_RATIO}x)",
        if serve_pass_ok { "PASS" } else { "FAIL" },
        on as f64 / 1e6,
        off as f64 / 1e6
    );
    ok &= serve_pass_ok;

    // Gate 3: the exposition format contract.
    let rendered = golden_snapshot().to_prometheus();
    let golden_ok = rendered == GOLDEN_PROM;
    println!(
        "{} prometheus exposition matches golden/telemetry.prom ({} bytes)",
        if golden_ok { "PASS" } else { "FAIL" },
        rendered.len()
    );
    if !golden_ok {
        for (i, (got, want)) in rendered.lines().zip(GOLDEN_PROM.lines()).enumerate() {
            if got != want {
                println!(
                    "  first divergence at line {}:\n  got:  {got}\n  want: {want}",
                    i + 1
                );
                break;
            }
        }
        if rendered.lines().count() != GOLDEN_PROM.lines().count() {
            println!(
                "  line count {} vs golden {}",
                rendered.lines().count(),
                GOLDEN_PROM.lines().count()
            );
        }
        println!("  (intentional change? regenerate: trace_overhead --write-golden crates/bench/golden/telemetry.prom)");
    }
    ok &= golden_ok;

    std::process::exit(if ok { 0 } else { 1 });
}
